"""Single-experiment runners producing flat record dicts.

Each function returns one table row (a plain dict of scalars) so the
benchmarks can both assert on it and print it via
:mod:`repro.experiments.report`.
"""

from __future__ import annotations

from repro.analysis.error import compare_centrality
from repro.analysis.ranking import kendall_tau, spearman_rho, top_k_overlap
from repro.baselines.alpha_cfbc import alpha_current_flow_betweenness
from repro.baselines.brandes import shortest_path_betweenness
from repro.baselines.flow_betweenness import flow_betweenness
from repro.baselines.pagerank import pagerank_power_iteration
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.exact import rwbc_exact
from repro.core.montecarlo import estimate_rwbc_montecarlo
from repro.core.parameters import WalkParameters
from repro.core.walk_manager import TransportPolicy
from repro.graphs.graph import Graph


def accuracy_row(
    graph: Graph,
    parameters: WalkParameters,
    seed: int = 0,
    label: str = "",
) -> dict:
    """Centralized Monte-Carlo accuracy against the exact solver."""
    exact = rwbc_exact(graph)
    result = estimate_rwbc_montecarlo(graph, parameters, seed=seed)
    errors = compare_centrality(result.betweenness, exact)
    return {
        "workload": label,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "l": parameters.length,
        "K": parameters.walks_per_source,
        "survival": result.survival_fraction,
        "tau": kendall_tau(result.betweenness, exact),
        **errors.as_dict(),
    }


def distributed_run_row(
    graph: Graph,
    parameters: WalkParameters,
    seed: int = 0,
    label: str = "",
    policy: TransportPolicy = TransportPolicy.QUEUE,
    walk_budget: int = 2,
) -> dict:
    """Full CONGEST protocol run: accuracy plus the complexity counters."""
    exact = rwbc_exact(graph)
    result = estimate_rwbc_distributed(
        graph,
        parameters,
        seed=seed,
        policy=policy,
        walk_budget=walk_budget,
    )
    errors = compare_centrality(result.betweenness, exact)
    summary = result.metrics.summary()
    return {
        "workload": label,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "l": parameters.length,
        "K": parameters.walks_per_source,
        "policy": policy.value,
        "rounds": result.total_rounds,
        "rounds_setup": result.phase_rounds["setup"],
        "rounds_counting": result.phase_rounds["counting"],
        "rounds_exchange": result.phase_rounds["exchange"],
        "max_msgs_edge": summary["max_messages_per_edge_round"],
        "max_bits_edge": summary["max_bits_per_edge_round"],
        "max_msg_bits": summary["max_message_bits"],
        "total_messages": summary["total_messages"],
        "mean_rel": errors.mean_relative,
        "max_abs": errors.max_absolute,
        "tau": kendall_tau(result.betweenness, exact),
    }


def related_measures_row(graph: Graph, label: str = "", top_k: int = 3) -> dict:
    """E11: how the measure landscape correlates with exact RWBC."""
    rwbc = rwbc_exact(graph)
    spbc = shortest_path_betweenness(graph)
    fbc = flow_betweenness(graph)
    pagerank = pagerank_power_iteration(graph)
    alpha_half = alpha_current_flow_betweenness(graph, alpha=0.5)
    alpha_high = alpha_current_flow_betweenness(graph, alpha=0.99)
    return {
        "workload": label,
        "n": graph.num_nodes,
        "tau_spbc": kendall_tau(rwbc, spbc),
        "tau_flow": kendall_tau(rwbc, fbc),
        "tau_pagerank": kendall_tau(rwbc, pagerank),
        "tau_alpha0.5": kendall_tau(rwbc, alpha_half),
        "tau_alpha0.99": kendall_tau(rwbc, alpha_high),
        "rho_spbc": spearman_rho(rwbc, spbc),
        "topk_spbc": top_k_overlap(rwbc, spbc, top_k),
    }
