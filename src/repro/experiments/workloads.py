"""Named, seeded graph workloads for the experiment suite.

Families were chosen to span the regimes the paper's analysis depends on
(see DESIGN.md section 2): expanders (fast absorption - the friendly
case for Theorem 1), high-diameter lattices and rings (slow absorption -
the adversarial case), heavy-tailed BA graphs (congestion hot spots for
the transport policies), and the Fig. 1 community topology.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.graphs.generators import (
    barabasi_albert_graph,
    barbell_graph,
    caveman_pair_graph,
    caveman_ring_graph,
    complete_graph,
    connectivity_threshold_p,
    cycle_graph,
    erdos_renyi_graph,
    fig1_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    powerlaw_cluster_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    watts_strogatz_graph,
    wheel_graph,
)
from repro.graphs.graph import Graph, GraphError


@dataclass(frozen=True)
class Workload:
    """A named reproducible graph instance."""

    name: str
    family: str
    n: int
    graph: Graph
    seed: int

    @property
    def m(self) -> int:
        return self.graph.num_edges


_BUILDERS: dict[str, Callable[[int, int], Graph]] = {
    "er": lambda n, seed: erdos_renyi_graph(
        n,
        max(connectivity_threshold_p(n, margin=2.0), 8.0 / max(1, n)),
        seed=seed,
        ensure_connected=True,
    ),
    "ba": lambda n, seed: barabasi_albert_graph(n, 3, seed=seed),
    "ws": lambda n, seed: watts_strogatz_graph(n, 4, 0.1, seed=seed),
    "regular": lambda n, seed: random_regular_graph(
        n if (n * 4) % 2 == 0 else n + 1, 4, seed=seed
    ),
    "cycle": lambda n, seed: cycle_graph(n),
    "path": lambda n, seed: path_graph(n),
    "grid": lambda n, seed: grid_graph(
        max(2, int(round(n**0.5))), max(2, int(round(n**0.5)))
    ),
    "tree": lambda n, seed: random_tree(n, seed=seed),
    "star": lambda n, seed: star_graph(n),
    "wheel": lambda n, seed: wheel_graph(max(4, n)),
    "lollipop": lambda n, seed: lollipop_graph(max(3, n // 2), n - max(3, n // 2)),
    "hypercube": lambda n, seed: hypercube_graph(
        max(2, int(round(math.log2(max(4, n)))))
    ),
    "plc": lambda n, seed: powerlaw_cluster_graph(n, 3, 0.4, seed=seed)
    if n > 4
    else complete_graph(n),
    "cavering": lambda n, seed: caveman_ring_graph(
        max(3, n // 4), max(3, n // max(3, n // 4))
    ),
    "barbell": lambda n, seed: barbell_graph(max(3, n // 2), n - 2 * max(3, n // 2)),
    "caveman": lambda n, seed: caveman_pair_graph(max(3, n // 2), bridges=1, seed=seed),
    "fig1": lambda n, seed: fig1_graph(group_size=max(2, (n - 5) // 2)),
}

FAMILIES = tuple(sorted(_BUILDERS))

# The default battery used by the accuracy benchmarks.
WORKLOADS: tuple[tuple[str, int], ...] = (
    ("er", 30),
    ("ba", 30),
    ("ws", 30),
    ("cycle", 24),
    ("grid", 25),
    ("tree", 24),
    ("barbell", 20),
    ("fig1", 14),
)


def make_workload(family: str, n: int, seed: int = 0) -> Workload:
    """Instantiate one named workload.

    Note that some families adjust ``n`` to satisfy structural
    constraints (grids square it, regular graphs need ``n*d`` even); the
    returned :class:`Workload` reports the actual size.
    """
    if family not in _BUILDERS:
        raise GraphError(
            f"unknown family {family!r}; choose from {FAMILIES}"
        )
    if n < 2:
        raise GraphError("workloads need n >= 2")
    graph = _BUILDERS[family](n, seed)
    return Workload(
        name=f"{family}-{graph.num_nodes}",
        family=family,
        n=graph.num_nodes,
        graph=graph,
        seed=seed,
    )


def default_battery(seed: int = 0) -> list[Workload]:
    """The standard list of workloads the benchmarks iterate."""
    return [make_workload(family, n, seed=seed) for family, n in WORKLOADS]
