"""Declarative scenario matrix for the sweep harness.

A :class:`Scenario` is one named cell of the repo's coverage matrix:
graph source (synthetic family or bundled dataset) x size x protocol
variant (distributed walkers / weighted oracle / edge betweenness) x
executor (sync fast path, forced per-message loop, async synchronizer,
multi-process sharded fast path) x fault profile.  Suites (:data:`SUITES`) are named scenario lists; the
``repro sweep`` CLI runs one suite, prints the rows, and appends a
keyed entry to the suite's committed ``BENCH_<suite>.json`` trajectory
(see :mod:`repro.obs.trajectory`).

Every scenario row carries the deterministic complexity counters the
paper's claims are phrased in (rounds / messages / bits, plus ARQ
retransmissions under faults) and the measured wall clock.  The
deterministic counters are seeded-reproducible across machines, which
is what lets CI diff a fresh run against the committed trajectory
exactly; wall clock is machine-specific and only ever compared as a
ratio band.

Fault profiles are *plain nested dicts* (:data:`FAULT_PROFILES`) so
they echo verbatim into sweep rows and trajectory entries -
:func:`make_fault_plan` turns one into the runtime
:class:`~repro.congest.faults.FaultPlan`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Sequence

import numpy as np

from repro.experiments.sweep import sweep
from repro.graphs.graph import Graph, GraphError

__all__ = [
    "FAULT_PROFILES",
    "SUITES",
    "Scenario",
    "make_fault_plan",
    "run_suite",
    "scenario_row",
    "suite_scenarios",
    "values_checksum",
]

#: Named fault profiles, as plain dicts so they serialize into sweep
#: rows and trajectory entries unchanged.  ``crash`` windows are in
#: rounds; profiles must keep the launch round (``2 * setup_slack * n``)
#: outside every window, so the smoke profiles only crash early.
FAULT_PROFILES: dict[str, dict] = {
    "none": {},
    "lossy": {"drop": 0.1},
    "chaos": {
        "drop": 0.08,
        "dup": 0.04,
        "delay": 0.04,
        "max_delay": 3,
        "crash": {"node": 3, "start": 8, "span": 6},
    },
}


def make_fault_plan(profile: Mapping | None, seed: int = 0xD509):
    """Instantiate a :class:`~repro.congest.faults.FaultPlan` from a
    profile dict (``None``/empty profile -> ``None``, i.e. fault-free)."""
    if not profile:
        return None
    from repro.congest.faults import CrashWindow, FaultPlan

    known = {"drop", "dup", "delay", "max_delay", "crash", "seed"}
    unknown = set(profile) - known
    if unknown:
        raise GraphError(f"unknown fault profile keys {sorted(unknown)}")
    crashes = ()
    crash = profile.get("crash")
    if crash:
        crashes = (
            CrashWindow(
                node=crash["node"],
                start=crash["start"],
                end=crash["start"] + crash["span"],
            ),
        )
    return FaultPlan(
        seed=profile.get("seed", seed),
        drop_rate=profile.get("drop", 0.0),
        duplicate_rate=profile.get("dup", 0.0),
        delay_rate=profile.get("delay", 0.0),
        max_delay=profile.get("max_delay", 3),
        crashes=crashes,
    )


@dataclass(frozen=True)
class Scenario:
    """One named, fully reproducible cell of the coverage matrix."""

    name: str
    family: str | None = None
    dataset: str | None = None
    n: int = 30
    seed: int = 0
    length: int | None = None
    walks: int | None = None
    #: "distributed" runs the CONGEST protocol; "weighted" and "edges"
    #: run the matrix-layer oracles (the weighted / edge-betweenness
    #: variants), which have no round structure but a tracked wall clock.
    variant: str = "distributed"
    #: "sync" (scheduler auto-selects the fast path), "per-message"
    #: (vectorized=False), "async" (alpha synchronizer), or "sharded"
    #: (fast path with the counting kernel split across ``shards``
    #: worker processes; byte-identical counters to "sync").
    executor: str = "sync"
    #: Worker-process count; only meaningful (and required) when
    #: ``executor="sharded"``.
    shards: int | None = None
    faults: str = "none"
    max_delay: float = 6.0

    def __post_init__(self) -> None:
        if (self.family is None) == (self.dataset is None):
            raise GraphError(
                f"scenario {self.name!r} needs exactly one of family/dataset"
            )
        if self.variant not in ("distributed", "weighted", "edges"):
            raise GraphError(
                f"scenario {self.name!r}: unknown variant {self.variant!r}"
            )
        if self.executor not in ("sync", "per-message", "async", "sharded"):
            raise GraphError(
                f"scenario {self.name!r}: unknown executor {self.executor!r}"
            )
        if (self.executor == "sharded") != (self.shards is not None):
            raise GraphError(
                f"scenario {self.name!r}: shards is required with "
                "executor='sharded' and invalid otherwise "
                f"(executor={self.executor!r}, shards={self.shards!r})"
            )
        if self.faults not in FAULT_PROFILES:
            raise GraphError(
                f"scenario {self.name!r}: unknown fault profile "
                f"{self.faults!r}; known: {sorted(FAULT_PROFILES)}"
            )

    def grid_point(self) -> dict:
        """The scenario as a sweep grid point (plain kwargs dict).

        The fault profile is inlined as its nested dict so sweep rows
        and trajectory entries are self-describing without a profile
        registry at read time.
        """
        return {
            "scenario": self.name,
            "family": self.family,
            "dataset": self.dataset,
            "n": self.n,
            "seed": self.seed,
            "length": self.length,
            "walks": self.walks,
            "variant": self.variant,
            "executor": self.executor,
            "shards": self.shards,
            "fault_profile": self.faults,
            "faults": dict(FAULT_PROFILES[self.faults]),
            "max_delay": self.max_delay,
        }


def _resolve_graph(family: str | None, dataset: str | None, n: int, seed: int):
    if family:
        from repro.experiments.workloads import make_workload

        return make_workload(family, n, seed=seed).graph
    from repro.graphs.datasets import load_dataset

    return load_dataset(dataset)


def values_checksum(values: Mapping, digits: int = 9) -> str:
    """Stable short hash of a centrality mapping (node or edge keyed).

    Values are rounded to ``digits`` decimals before hashing so the
    checksum survives JSON round-trips; it is recorded for drift
    triage, not gated on (last-bit float differences across BLAS builds
    may flip it even when nothing regressed).
    """
    parts = sorted(
        f"{key}:{round(float(value), digits):.{digits}f}"
        for key, value in values.items()
    )
    digest = hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


def _seeded_weights(graph: Graph, seed: int) -> dict:
    rng = np.random.default_rng(seed)
    return {
        edge: float(rng.uniform(0.5, 3.0)) for edge in sorted(graph.edges())
    }


def scenario_row(
    scenario: str,
    family: str | None = None,
    dataset: str | None = None,
    n: int = 30,
    seed: int = 0,
    length: int | None = None,
    walks: int | None = None,
    variant: str = "distributed",
    executor: str = "sync",
    shards: int | None = None,
    fault_profile: str = "none",
    faults: Mapping | None = None,
    max_delay: float = 6.0,
) -> dict:
    """Execute one scenario and return its flat metrics row.

    This is the sweep row function: it takes exactly the kwargs of
    :meth:`Scenario.grid_point`.  Deterministic counters (``rounds``,
    ``messages``, ``bits``, ``retransmissions``) are exact across
    machines for a fixed scenario; ``wall_s`` is not.
    """
    graph = _resolve_graph(family, dataset, n, seed)
    row: dict = {
        "scenario": scenario,
        "graph": family or dataset,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "variant": variant,
        "executor": executor,
        "fault_profile": fault_profile,
    }
    if shards is not None:
        row["shards"] = shards
    if variant != "distributed":
        start = time.perf_counter()
        if variant == "weighted":
            from repro.core.weighted import weighted_rwbc_exact

            values = weighted_rwbc_exact(graph, _seeded_weights(graph, seed))
        else:
            from repro.core.edge_betweenness import (
                edge_current_flow_betweenness,
            )

            values = edge_current_flow_betweenness(graph)
        row["wall_s"] = round(time.perf_counter() - start, 6)
        row["checksum"] = values_checksum(values)
        return row

    from repro.core.estimator import estimate_rwbc_distributed
    from repro.core.parameters import WalkParameters, default_parameters

    if length and walks:
        parameters = WalkParameters(length=length, walks_per_source=walks)
    else:
        parameters = default_parameters(graph.num_nodes)
    plan = make_fault_plan(faults if faults is not None
                           else FAULT_PROFILES[fault_profile])
    start = time.perf_counter()
    result = estimate_rwbc_distributed(
        graph,
        parameters,
        seed=seed,
        faults=plan,
        executor=(
            executor if executor in ("async", "sharded") else "sync"
        ),
        num_shards=shards,
        vectorized=False if executor == "per-message" else None,
        max_delay=max_delay,
    )
    wall = time.perf_counter() - start
    summary = result.metrics.summary()
    recovery = result.recovery or {}
    row.update(
        {
            "length": parameters.length,
            "walks": parameters.walks_per_source,
            "fast_path": not result.fallback_reasons,
            "rounds": int(result.total_rounds),
            "messages": int(summary["total_messages"]),
            "bits": int(summary["total_bits"]),
            "retransmissions": int(recovery.get("retransmissions", 0)),
            "wall_s": round(wall, 6),
            "checksum": values_checksum(result.betweenness),
        }
    )
    return row


def _full_suite() -> tuple[Scenario, ...]:
    """The broad matrix: every family regime x executor x fault profile
    that finishes in minutes, plus the bundled real-world datasets."""
    scenarios: list[Scenario] = []
    for fam in ("er", "ba", "ws", "grid", "tree"):
        for n in (60, 120):
            scenarios.append(
                Scenario(f"{fam}{n}-sync", family=fam, n=n, seed=n)
            )
    scenarios += [
        Scenario("er60-permsg", family="er", n=60, seed=60,
                 executor="per-message"),
        Scenario("er120-sharded2", family="er", n=120, seed=120,
                 executor="sharded", shards=2),
        Scenario("er120-sharded4", family="er", n=120, seed=120,
                 executor="sharded", shards=4),
        Scenario("er60-sharded-lossy", family="er", n=60, seed=60,
                 length=180, walks=24, executor="sharded", shards=2,
                 faults="lossy"),
        # The scale tier: only the sharded executor makes this
        # tractable, and only in the scheduled full sweep.
        Scenario("tree10k-sharded4", family="tree", n=10000, seed=1,
                 length=10, walks=1, executor="sharded", shards=4),
        Scenario("er60-lossy", family="er", n=60, seed=60,
                 length=180, walks=24, faults="lossy"),
        Scenario("er60-chaos", family="er", n=60, seed=60,
                 length=180, walks=24, faults="chaos"),
        Scenario("cycle12-async", family="cycle", n=12, seed=0,
                 length=36, walks=8, executor="async"),
        Scenario("cycle12-async-lossy", family="cycle", n=12, seed=0,
                 length=36, walks=8, executor="async", faults="lossy"),
        Scenario("karate-sync", dataset="karate", n=34),
        Scenario("lesmis-sync", dataset="lesmis", n=77),
        Scenario("er60-weighted", family="er", n=60, seed=60,
                 variant="weighted"),
        Scenario("er60-edges", family="er", n=60, seed=60,
                 variant="edges"),
    ]
    return tuple(scenarios)


#: Named suites.  ``smoke`` is the CI tier: one scenario per regime
#: (fast path, the sharded executor at 2 and 4 workers - byte-identical
#: counters to the sync fast path, also under loss - the forced
#: per-message loop, reliable mode under drops, chaos with a crash
#: window, the async synchronizer faulty and fault-free, a real
#: dataset, and the weighted / edge oracles), each sized to finish in
#: seconds.  ``full`` is the broad matrix.
SUITES: dict[str, tuple[Scenario, ...]] = {
    "smoke": (
        Scenario("er30-sync", family="er", n=30, seed=0,
                 length=90, walks=12),
        Scenario("cycle16-permsg", family="cycle", n=16, seed=0,
                 length=48, walks=8, executor="per-message"),
        Scenario("er30-sharded2", family="er", n=30, seed=0,
                 length=90, walks=12, executor="sharded", shards=2),
        Scenario("er30-sharded4", family="er", n=30, seed=0,
                 length=90, walks=12, executor="sharded", shards=4),
        Scenario("cycle10-lossy", family="cycle", n=10, seed=0,
                 length=30, walks=6, faults="lossy"),
        Scenario("cycle10-sharded-lossy", family="cycle", n=10, seed=0,
                 length=30, walks=6, executor="sharded", shards=2,
                 faults="lossy"),
        Scenario("cycle10-chaos", family="cycle", n=10, seed=0,
                 length=30, walks=6, faults="chaos"),
        Scenario("cycle8-async", family="cycle", n=8, seed=0,
                 length=20, walks=6, executor="async"),
        Scenario("cycle8-async-lossy", family="cycle", n=8, seed=0,
                 length=20, walks=6, executor="async", faults="lossy"),
        Scenario("florentine-sync", dataset="florentine", n=15,
                 length=45, walks=8),
        Scenario("er30-weighted", family="er", n=30, seed=0,
                 variant="weighted"),
        Scenario("er30-edges", family="er", n=30, seed=0,
                 variant="edges"),
    ),
    "full": _full_suite(),
}


def suite_scenarios(
    suite: str, only: Sequence[str] | None = None
) -> tuple[Scenario, ...]:
    """Resolve a suite name (optionally filtered by name substrings)."""
    try:
        scenarios = SUITES[suite]
    except KeyError:
        raise GraphError(
            f"unknown suite {suite!r}; known: {sorted(SUITES)}"
        ) from None
    if only:
        scenarios = tuple(
            scenario
            for scenario in scenarios
            if any(needle in scenario.name for needle in only)
        )
        if not scenarios:
            raise GraphError(
                f"no scenario in suite {suite!r} matches {list(only)}"
            )
    return scenarios


def run_suite(
    scenarios: Iterable[Scenario],
    progress: Callable[[int, int, dict, dict], None] | None = None,
) -> list[dict]:
    """Run scenarios through :func:`repro.experiments.sweep.sweep`.

    Grid points are the scenarios' kwargs dicts, so every configuration
    field - including the nested fault-profile dict - is echoed into
    the returned rows.
    """
    grid = [scenario.grid_point() for scenario in scenarios]
    names = [point["scenario"] for point in grid]
    if len(set(names)) != len(names):
        raise GraphError(f"duplicate scenario names in suite: {names}")
    return sweep(scenario_row, grid, progress=progress)
