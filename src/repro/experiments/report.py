"""Plain-text table rendering for benchmark output and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Iterable

from repro.graphs.graph import GraphError


def _format_cell(value) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)


def format_table(records: list[dict], columns: list[str] | None = None) -> str:
    """Render records as an aligned monospace table."""
    if not records:
        raise GraphError("no records to format")
    if columns is None:
        columns = list(records[0])
    rows = [
        [_format_cell(record.get(column, "")) for column in columns]
        for record in records
    ]
    widths = [
        max(len(column), *(len(row[i]) for row in rows))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(
        column.ljust(width) for column, width in zip(columns, widths)
    )
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join(
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        for row in rows
    )
    return f"{header}\n{separator}\n{body}"


def render_records(
    title: str, records: list[dict], columns: list[str] | None = None
) -> str:
    """A titled table block, printed by every benchmark."""
    table = format_table(records, columns)
    bar = "=" * max(len(title), 8)
    return f"\n{bar}\n{title}\n{bar}\n{table}\n"


def series(records: Iterable[dict], x: str, y: str) -> list[tuple]:
    """Extract an (x, y) series from records (figure regeneration)."""
    points = [(record[x], record[y]) for record in records]
    if not points:
        raise GraphError("no records for series")
    return points
