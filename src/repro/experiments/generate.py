"""Regenerate experiment tables outside pytest.

``python -m repro.experiments.generate [E1 E5 ...]`` loads the benchmark
modules (the single source of truth for each experiment's workload and
parameters), runs their collectors, and prints the same tables the
benchmarks print - no pytest harness required.  With no arguments it
lists the registry.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

from repro.experiments.report import render_records
from repro.graphs.graph import GraphError

BENCH_DIR = Path(__file__).resolve().parents[3] / "benchmarks"

# experiment id -> (benchmark file, collector attribute).
REGISTRY: dict[str, tuple[str, str]] = {
    "E1": ("test_bench_fig1.py", "build_fig1_table"),
    "E2": ("test_bench_thm1_walklength.py", "collect_rows"),
    "E3": ("test_bench_thm2_error.py", "collect_rows"),
    "E4": ("test_bench_thm3_K.py", "collect_rows"),
    "E5": ("test_bench_thm4_congest.py", "collect_rows"),
    "E6": ("test_bench_thm5_rounds.py", "collect_rows"),
    "E7": ("test_bench_lemma4_construction.py", "collect"),
    "E8": ("test_bench_thm6_lowerbound.py", "collect_rows"),
    "E9": ("test_bench_trivial_crossover.py", "collect_rows"),
    "E10": ("test_bench_oracle_agreement.py", "collect_rows"),
    "E11": ("test_bench_related_measures.py", "collect_rows"),
    "E12": ("test_bench_transport_ablation.py", "collect_rows"),
    "E13": ("test_bench_alpha_distributed.py", "collect"),
    "E15": ("test_bench_accuracy_scaling.py", "collect_rows"),
    "E16": ("test_bench_synchronizer.py", "collect_rows"),
    "E17": ("test_bench_scale.py", "collect_rows"),
    "E18": ("test_bench_dispersion.py", "collect_rows"),
    "E19": ("test_bench_count_initial.py", "collect_rows"),
    "E20": ("test_bench_batched_engine.py", "collect_rows"),
    "E21": ("test_bench_reliable_engine.py", "collect_rows"),
}


def load_collector(experiment_id: str):
    """Import the benchmark module for ``experiment_id`` and return its
    collector callable."""
    try:
        filename, attribute = REGISTRY[experiment_id]
    except KeyError:
        raise GraphError(
            f"unknown experiment {experiment_id!r}; known: "
            f"{sorted(REGISTRY)}"
        ) from None
    path = BENCH_DIR / filename
    if not path.exists():
        raise GraphError(f"benchmark file missing: {path}")
    spec = importlib.util.spec_from_file_location(
        f"bench_{experiment_id}", path
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return getattr(module, attribute)


def run_experiment(experiment_id: str) -> str:
    """Run one experiment's collector and render its output as text."""
    collector = load_collector(experiment_id)
    result = collector()
    return _render(experiment_id, result)


def _render(experiment_id: str, result) -> str:
    if isinstance(result, list) and result and isinstance(result[0], dict):
        return render_records(experiment_id, result)
    if isinstance(result, tuple):
        blocks = []
        for index, part in enumerate(result):
            if isinstance(part, list) and part and isinstance(part[0], dict):
                blocks.append(
                    render_records(f"{experiment_id}[{index}]", part)
                )
            else:
                blocks.append(f"{experiment_id}[{index}]: {part!r}")
        return "\n".join(blocks)
    return f"{experiment_id}: {result!r}"


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if not argv:
        print("usage: python -m repro.experiments.generate E1 [E5 ...]")
        print(f"known experiments: {' '.join(sorted(REGISTRY))}")
        return 0
    for experiment_id in argv:
        try:
            print(run_experiment(experiment_id))
        except GraphError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
