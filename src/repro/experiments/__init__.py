"""The experiment harness shared by benchmarks/ and EXPERIMENTS.md.

``workloads`` names the graphs, ``runner`` executes one experiment,
``sweep`` runs parameter grids, ``scenarios`` declares the named
scenario matrix behind ``repro sweep`` and the committed
``BENCH_<suite>.json`` trajectories, ``report`` renders the tables the
benchmark suite prints.
"""

from repro.experiments.report import format_table, render_records
from repro.experiments.runner import (
    accuracy_row,
    distributed_run_row,
    related_measures_row,
)
from repro.experiments.scenarios import (
    SUITES,
    Scenario,
    run_suite,
    scenario_row,
    suite_scenarios,
)
from repro.experiments.sweep import sweep
from repro.experiments.workloads import WORKLOADS, Workload, make_workload

__all__ = [
    "SUITES",
    "Scenario",
    "WORKLOADS",
    "Workload",
    "accuracy_row",
    "distributed_run_row",
    "format_table",
    "make_workload",
    "related_measures_row",
    "render_records",
    "run_suite",
    "scenario_row",
    "suite_scenarios",
    "sweep",
]
