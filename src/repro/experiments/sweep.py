"""Parameter sweeps: run one row-producer over a grid."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.graphs.graph import GraphError


def sweep(
    row_function: Callable[..., dict],
    grid: Iterable[dict],
    progress: Callable[[int, int, dict, dict], None] | None = None,
    **common,
) -> list[dict]:
    """Run ``row_function(**point, **common)`` for every grid point.

    Each grid point is a dict of keyword arguments; results are returned
    in grid order with the grid point's values merged in (so the output
    rows are self-describing even if the row function does not echo
    them).  Non-scalar values - nested dicts such as fault profiles,
    lists of sizes - are echoed too, not just ints/floats/strings.

    ``progress``, when given, is called after every completed point as
    ``progress(index, total, point, row)`` (0-based index), so long
    sweeps can report per-point status without wrapping the row
    function.
    """
    points = list(grid)
    total = len(points)
    rows = []
    for index, point in enumerate(points):
        if not isinstance(point, dict):
            raise GraphError("grid points must be dicts of kwargs")
        row = row_function(**point, **common)
        for key, value in point.items():
            if key not in row:
                row[key] = value
        rows.append(row)
        if progress is not None:
            progress(index, total, point, row)
    return rows
