"""Parameter sweeps: run one row-producer over a grid."""

from __future__ import annotations

from typing import Callable, Iterable

from repro.graphs.graph import GraphError


def sweep(
    row_function: Callable[..., dict],
    grid: Iterable[dict],
    **common,
) -> list[dict]:
    """Run ``row_function(**point, **common)`` for every grid point.

    Each grid point is a dict of keyword arguments; results are returned
    in grid order with the grid point's scalar values merged in (so the
    output rows are self-describing even if the row function does not
    echo them).
    """
    rows = []
    for point in grid:
        if not isinstance(point, dict):
            raise GraphError("grid points must be dicts of kwargs")
        row = row_function(**point, **common)
        for key, value in point.items():
            if key not in row and isinstance(value, (int, float, str)):
                row[key] = value
        rows.append(row)
    return rows
