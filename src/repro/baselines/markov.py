"""Markov (random-walk closeness) centrality.

One more member of the random-walk measure family the paper situates
itself in: a node is central if random walks reach it *quickly* from
everywhere - the reciprocal of its mean hitting time.  Computed exactly
from the same absorbing-chain machinery as the core solvers (the column
sums of the expected-visits matrix are hitting times), so it doubles as
another internal consistency check.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, GraphError, NodeId
from repro.graphs.properties import is_connected
from repro.walks.absorbing import expected_visits


def mean_hitting_times(graph: Graph) -> dict[NodeId, float]:
    """``node -> mean over sources s != node of H(s -> node)``."""
    if graph.num_nodes < 2:
        raise GraphError("hitting times need >= 2 nodes")
    if not is_connected(graph):
        raise GraphError("hitting times require a connected graph")
    n = graph.num_nodes
    order = graph.canonical_order()
    result: dict[NodeId, float] = {}
    for node in order:
        visits = expected_visits(graph, node)
        # H(s -> node) = total expected visits anywhere before absorption.
        hitting = visits.sum(axis=0)
        others = [s for s in range(n) if s != graph.index_of(node)]
        result[node] = float(hitting[others].mean())
    return result


def markov_centrality(graph: Graph) -> dict[NodeId, float]:
    """``(n - 1) / sum_s H(s -> node)`` - higher is more central."""
    times = mean_hitting_times(graph)
    return {node: 1.0 / value for node, value in times.items()}
