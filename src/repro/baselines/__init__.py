"""Every comparator measure the paper discusses (sections I-II).

* :mod:`brandes` - exact shortest-path betweenness (the Fig. 1 contrast).
* :mod:`maxflow` + :mod:`flow_betweenness` - Freeman's network-flow
  betweenness on top of our own Edmonds-Karp max-flow.
* :mod:`pagerank` - power iteration, Monte-Carlo, and a distributed
  CONGEST version (Das Sarma et al. style).
* :mod:`alpha_cfbc` - Avrachenkov et al.'s alpha-current-flow betweenness.
* :mod:`networkx_oracle` - convention-matched external validation.
"""

from repro.baselines.alpha_cfbc import alpha_current_flow_betweenness
from repro.baselines.approx_spbc import approximate_shortest_path_betweenness
from repro.baselines.brandes import shortest_path_betweenness
from repro.baselines.flow_betweenness import flow_betweenness
from repro.baselines.maxflow import max_flow
from repro.baselines.networkx_oracle import (
    networkx_rwbc,
    newman_rwbc_via_networkx,
)
from repro.baselines.pagerank import (
    pagerank_montecarlo,
    pagerank_power_iteration,
)

__all__ = [
    "alpha_current_flow_betweenness",
    "approximate_shortest_path_betweenness",
    "flow_betweenness",
    "max_flow",
    "networkx_rwbc",
    "newman_rwbc_via_networkx",
    "pagerank_montecarlo",
    "pagerank_power_iteration",
    "shortest_path_betweenness",
]
