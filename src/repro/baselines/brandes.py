"""Brandes' exact shortest-path betweenness centrality.

The paper's Fig. 1 contrasts shortest-path betweenness (nodes A, B high;
node C zero between the groups) with random walk betweenness (C clearly
positive).  Reproducing that figure (experiment E1) needs the exact SPBC,
computed here with Brandes' ``O(nm)`` dependency-accumulation algorithm
for unweighted graphs [Brandes 2001].
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph, GraphError, NodeId


def shortest_path_betweenness(
    graph: Graph,
    normalized: bool = True,
    include_endpoints: bool = False,
) -> dict[NodeId, float]:
    """Exact SPBC of every node.

    Parameters
    ----------
    graph:
        Any graph (disconnected graphs are fine: unreachable pairs simply
        contribute nothing).
    normalized:
        Divide by the number of (unordered) pairs excluding the node, i.e.
        ``(n-1)(n-2)/2`` - or ``n(n-1)/2`` with endpoints - matching the
        common convention (and networkx).
    include_endpoints:
        Credit a node for pairs it terminates, mirroring the Eq. 7
        convention of the random-walk measure.
    """
    n = graph.num_nodes
    if n == 0:
        raise GraphError("betweenness undefined for the empty graph")
    betweenness: dict[NodeId, float] = {node: 0.0 for node in graph.nodes()}

    for source in graph.nodes():
        order, predecessors, sigma = _bfs_shortest_paths(graph, source)
        delta: dict[NodeId, float] = {node: 0.0 for node in order}
        # Accumulate dependencies in reverse BFS order.
        for node in reversed(order):
            for predecessor in predecessors[node]:
                delta[predecessor] += (
                    sigma[predecessor] / sigma[node]
                ) * (1.0 + delta[node])
            if node != source:
                betweenness[node] += delta[node]
                if include_endpoints:
                    # Credit both endpoints once per reachable pair.
                    betweenness[node] += 1.0
                    betweenness[source] += 1.0

    # Each unordered pair was visited from both endpoints.
    for node in betweenness:
        betweenness[node] /= 2.0

    if normalized:
        if include_endpoints:
            pairs = n * (n - 1) / 2.0
        else:
            pairs = (n - 1) * (n - 2) / 2.0
        if pairs > 0:
            for node in betweenness:
                betweenness[node] /= pairs
    return betweenness


def _bfs_shortest_paths(graph: Graph, source: NodeId):
    """Single-source BFS with path counting.

    Returns (BFS order, predecessor lists, path counts sigma).
    """
    sigma: dict[NodeId, float] = {source: 1.0}
    distance: dict[NodeId, int] = {source: 0}
    predecessors: dict[NodeId, list[NodeId]] = {source: []}
    order: list[NodeId] = []
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in distance:
                distance[neighbor] = distance[node] + 1
                sigma[neighbor] = 0.0
                predecessors[neighbor] = []
                queue.append(neighbor)
            if distance[neighbor] == distance[node] + 1:
                sigma[neighbor] += sigma[node]
                predecessors[neighbor].append(node)
    return order, predecessors, sigma
