"""networkx as an external validation oracle (the repro-band hint).

networkx's ``current_flow_betweenness_centrality`` computes Newman's
measure *without* the Eq. 7 endpoint credit, normalized by
``(n-1)(n-2)/2``.  The affine conversion to Newman's Eq. 8 convention::

    b_newman = (b_nx * (n - 2) + 2) / n

is verified to machine precision by the test suite on many families.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.convert import to_networkx
from repro.graphs.graph import Graph, GraphError, NodeId


def networkx_rwbc(graph: Graph) -> dict[NodeId, float]:
    """networkx current-flow betweenness in networkx's own convention."""
    if graph.num_nodes < 3:
        raise GraphError(
            "networkx current-flow betweenness needs >= 3 nodes"
        )
    return nx.current_flow_betweenness_centrality(
        to_networkx(graph), normalized=True
    )


def newman_rwbc_via_networkx(graph: Graph) -> dict[NodeId, float]:
    """networkx values converted to Newman's Eq. 8 convention."""
    n = graph.num_nodes
    return {
        node: (value * (n - 2) + 2.0) / n
        for node, value in networkx_rwbc(graph).items()
    }


def networkx_approximate_rwbc(
    graph: Graph, epsilon: float = 0.1, seed: int | None = None
) -> dict[NodeId, float]:
    """networkx's own sampling-based approximation, for E10 comparisons."""
    if graph.num_nodes < 3:
        raise GraphError("needs >= 3 nodes")
    return nx.approximate_current_flow_betweenness_centrality(
        to_networkx(graph), normalized=True, epsilon=epsilon, seed=seed
    )
