"""Pivot-sampled approximate shortest-path betweenness (Brandes-Pich).

The paper's prior work ([5], the companion ICDCS'16 paper) computes
*approximate* SPBC distributively; the standard centralized counterpart
is pivot sampling: run Brandes' single-source dependency accumulation
from ``k`` uniformly random pivots and scale by ``n / k``.  This is the
natural accuracy baseline to hold next to the RWBC estimator - both
trade sampling effort for error, and experiment code can compare their
error-vs-work curves on equal footing.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.brandes import _bfs_shortest_paths
from repro.graphs.graph import Graph, GraphError, NodeId


def approximate_shortest_path_betweenness(
    graph: Graph,
    pivots: int,
    seed: int | np.random.Generator | None = None,
    normalized: bool = True,
) -> dict[NodeId, float]:
    """SPBC estimated from ``pivots`` random source nodes.

    With all ``n`` pivots this equals exact Brandes (a test asserts it);
    fewer pivots give an unbiased estimate with Monte-Carlo error.

    Parameters
    ----------
    pivots:
        Number of source samples, ``1 <= pivots <= n``.
    normalized:
        Divide by ``(n-1)(n-2)/2``, matching
        :func:`repro.baselines.brandes.shortest_path_betweenness`.
    """
    n = graph.num_nodes
    if n == 0:
        raise GraphError("betweenness undefined for the empty graph")
    if not 1 <= pivots <= n:
        raise GraphError(f"pivots must be in 1..{n}")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    order = list(graph.canonical_order())
    chosen = (
        order
        if pivots == n
        else [order[i] for i in rng.choice(n, size=pivots, replace=False)]
    )

    betweenness: dict[NodeId, float] = {node: 0.0 for node in order}
    for source in chosen:
        walk_order, predecessors, sigma = _bfs_shortest_paths(graph, source)
        delta: dict[NodeId, float] = {node: 0.0 for node in walk_order}
        for node in reversed(walk_order):
            for predecessor in predecessors[node]:
                delta[predecessor] += (
                    sigma[predecessor] / sigma[node]
                ) * (1.0 + delta[node])
            if node != source:
                betweenness[node] += delta[node]

    # Scale the sampled sources up to all n, then halve (each unordered
    # pair would be counted from both endpoints in the full sum).
    scale = n / pivots / 2.0
    for node in betweenness:
        betweenness[node] *= scale

    if normalized:
        pairs = (n - 1) * (n - 2) / 2.0
        if pairs > 0:
            for node in betweenness:
                betweenness[node] /= pairs
    return betweenness
