"""Stephenson-Zelen information centrality (the paper's reference [7]).

The paper cites "Rethinking centrality" for the observation that real
information flow is not confined to shortest paths - the same motivation
as Newman's betweenness.  Information centrality is the closeness-style
counterpart: the harmonic mean of the "information" (inverse resistance)
between a node and everyone else.  It equals current-flow *closeness*
centrality, giving one more independent electrical cross-check against
networkx.

Formulation via the Laplacian: with ``B = (L + J)^{-1}`` (``J`` all
ones),

    I_uv = 1 / (B_uu + B_vv - 2 B_uv)
    C_info(u) = n / (n B_uu + trace(B) - 2 sum_v B_uv)

which simplifies against effective resistances: ``1/C_info(u) =
(1/n) sum_v R_eff(u, v) + constant`` - so the ranking equals the inverse
mean-resistance ranking.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphError, NodeId
from repro.graphs.properties import is_connected


def information_centrality(graph: Graph) -> dict[NodeId, float]:
    """Stephenson-Zelen information centrality of every node.

    Matches ``networkx.information_centrality`` (equivalently
    ``current_flow_closeness_centrality``) up to networkx's normalization
    choice; the test suite pins the exact relation.
    """
    n = graph.num_nodes
    if n < 2:
        raise GraphError("information centrality needs >= 2 nodes")
    if not is_connected(graph):
        raise GraphError("information centrality requires connectivity")
    laplacian = graph.laplacian_matrix()
    b_matrix = np.linalg.inv(laplacian + np.ones((n, n)))
    diagonal = np.diag(b_matrix)
    trace = float(diagonal.sum())
    row_sums = b_matrix.sum(axis=1)
    order = graph.canonical_order()
    result = {}
    for i, node in enumerate(order):
        denominator = n * diagonal[i] + trace - 2.0 * row_sums[i]
        result[node] = float(n / denominator)
    return result


def current_flow_closeness(graph: Graph) -> dict[NodeId, float]:
    """Current-flow closeness: ``(n - 1) / sum_v R_eff(u, v)``.

    The same ordering as :func:`information_centrality` (a test asserts
    rank equality); exposed separately because the resistance form is the
    one the electrical layer reasons about.
    """
    from repro.walks.resistance import resistance_matrix

    n = graph.num_nodes
    if n < 2:
        raise GraphError("closeness needs >= 2 nodes")
    matrix = resistance_matrix(graph)
    order = graph.canonical_order()
    return {
        node: float((n - 1) / matrix[i].sum())
        for i, node in enumerate(order)
    }
