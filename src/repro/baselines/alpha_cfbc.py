"""Alpha-current-flow betweenness (paper section II-C).

Avrachenkov et al. dampen the current-flow system: instead of
``L = D - A``, they solve with ``D - alpha * A`` (a fraction ``1 - alpha``
of the walk "leaks" at every step), which shortens effective walk lengths
to ``O(1 / (1 - alpha))`` and caps the cost of estimation.  As
``alpha -> 1`` the measure converges to the true current-flow (random
walk) betweenness; experiment E11 plots that convergence.

Two engines: the exact damped-Laplacian solve, and a truncated-walk
Monte-Carlo estimator in the spirit of the paper's pagerank-technique
remark.
"""

from __future__ import annotations

import numpy as np

from repro.core.flow_math import betweenness_from_raw_flow, node_raw_flow
from repro.graphs.graph import Graph, GraphError, NodeId
from repro.graphs.properties import is_connected


def alpha_current_flow_betweenness(
    graph: Graph,
    alpha: float = 0.9,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> dict[NodeId, float]:
    """Exact alpha-CFBC via the damped grounded Laplacian.

    With ``alpha = 1`` this reduces (up to the grounding, which is exact)
    to Newman's RWBC; smaller ``alpha`` localizes the measure.
    """
    if not 0.0 < alpha <= 1.0:
        raise GraphError("alpha must be in (0, 1]")
    if graph.num_nodes < 2:
        raise GraphError("need >= 2 nodes")
    if not is_connected(graph):
        raise GraphError("graph must be connected")

    n = graph.num_nodes
    order = graph.canonical_order()
    adjacency = graph.adjacency_matrix()
    degrees = adjacency.sum(axis=1)
    damped = np.diag(degrees) - alpha * adjacency

    if alpha == 1.0:
        # Singular Laplacian: ground one node, exactly as in core.exact.
        keep = np.arange(n) != 0
        potentials = np.zeros((n, n))
        potentials[np.ix_(keep, keep)] = np.linalg.inv(
            damped[np.ix_(keep, keep)]
        )
    else:
        # Damping makes the system strictly diagonally dominant: no
        # grounding needed (every walk leaks, so "absorption" is global).
        potentials = np.linalg.inv(damped)

    result: dict[NodeId, float] = {}
    for i, node in enumerate(order):
        neighbor_rows = (
            potentials[graph.index_of(neighbor)]
            for neighbor in graph.neighbors(node)
        )
        raw = node_raw_flow(potentials[i], neighbor_rows, i)
        result[node] = betweenness_from_raw_flow(
            raw,
            n,
            scale=1.0,
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
    return result


def alpha_cfbc_montecarlo(
    graph: Graph,
    alpha: float = 0.9,
    walks_per_source: int = 200,
    seed: int | np.random.Generator | None = None,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> dict[NodeId, float]:
    """Monte-Carlo alpha-CFBC: geometric-length walks, pagerank style.

    Each walk survives each step with probability ``alpha``; expected
    visit counts estimate the damped potentials.  Walk lengths are
    ``O(1 / (1 - alpha))`` in expectation - the section II-C speedup.
    """
    if not 0.0 < alpha < 1.0:
        raise GraphError("monte-carlo alpha must be in (0, 1)")
    if graph.num_nodes < 2:
        raise GraphError("need >= 2 nodes")
    if not is_connected(graph):
        raise GraphError("graph must be connected")
    if walks_per_source < 1:
        raise GraphError("walks_per_source must be >= 1")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    n = graph.num_nodes
    order = graph.canonical_order()
    index = {node: i for i, node in enumerate(order)}
    neighbor_arrays = [
        np.array(sorted(index[v] for v in graph.neighbors(node)))
        for node in order
    ]
    counts = np.zeros((n, n), dtype=np.int64)
    sources = np.repeat(np.arange(n), walks_per_source)
    current = sources.copy()
    np.add.at(counts, (current, sources), 1)
    while current.size:
        alive = rng.random(current.size) < alpha
        current = current[alive]
        sources = sources[alive]
        if current.size == 0:
            break
        nxt = np.empty_like(current)
        for position, node in enumerate(current):
            neighbors = neighbor_arrays[int(node)]
            nxt[position] = neighbors[rng.integers(len(neighbors))]
        current = nxt
        np.add.at(counts, (current, sources), 1)

    degrees = graph.degree_vector()
    potentials = counts / degrees[:, np.newaxis]
    result: dict[NodeId, float] = {}
    for i, node in enumerate(order):
        neighbor_rows = (
            potentials[index[neighbor]] for neighbor in graph.neighbors(node)
        )
        raw = node_raw_flow(potentials[i], neighbor_rows, i)
        result[node] = betweenness_from_raw_flow(
            raw,
            n,
            scale=float(walks_per_source),
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
    return result
