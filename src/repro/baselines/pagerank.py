"""PageRank three ways (paper section II-B).

The paper contrasts RWBC's infinite walks with PageRank's geometrically
short walks (expected length ``1/epsilon``) and cites: the classic power
iteration, the Monte-Carlo estimator of Avrachenkov et al. (Algorithm 2
in [12]: count where restart-terminated walks *end*), and the distributed
``O(log n / epsilon)`` algorithm of Das Sarma et al. [13].  All three are
implemented; the distributed one runs on our CONGEST simulator.
"""

from __future__ import annotations

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.congest.scheduler import run_program
from repro.graphs.graph import Graph, GraphError, NodeId

KIND_PR_WALK = "prwalk"


def pagerank_power_iteration(
    graph: Graph,
    reset_probability: float = 0.15,
    tolerance: float = 1e-12,
    max_iterations: int = 10_000,
) -> dict[NodeId, float]:
    """Exact PageRank via power iteration.

    Uses the undirected random-surfer chain: with probability
    ``reset_probability`` jump to a uniform node, else move to a uniform
    neighbor.
    """
    _validate(graph, reset_probability)
    n = graph.num_nodes
    adjacency = graph.adjacency_matrix()
    degrees = adjacency.sum(axis=0)
    transition = adjacency / degrees[np.newaxis, :]
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iterations):
        updated = (
            reset_probability / n
            + (1.0 - reset_probability) * transition @ rank
        )
        if np.abs(updated - rank).sum() < tolerance:
            rank = updated
            break
        rank = updated
    order = graph.canonical_order()
    return {node: float(rank[i]) for i, node in enumerate(order)}


def pagerank_montecarlo(
    graph: Graph,
    reset_probability: float = 0.15,
    walks_per_node: int = 100,
    seed: int | np.random.Generator | None = None,
) -> dict[NodeId, float]:
    """Monte-Carlo PageRank: where do restart-terminated walks end?

    Each node launches ``walks_per_node`` walks; each walk stops with
    probability ``reset_probability`` per step.  A node's PageRank is
    estimated as the fraction of all walks ending at it (Avrachenkov et
    al., Algorithm 2 - the estimator the paper sketches in II-B).
    """
    _validate(graph, reset_probability)
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    n = graph.num_nodes
    order = graph.canonical_order()
    index = {node: i for i, node in enumerate(order)}
    neighbor_arrays = {
        i: np.array(sorted(index[v] for v in graph.neighbors(node)))
        for i, node in enumerate(order)
    }
    endings = np.zeros(n, dtype=np.int64)
    current = np.repeat(np.arange(n), walks_per_node)
    while current.size:
        stops = rng.random(current.size) < reset_probability
        ended = current[stops]
        np.add.at(endings, ended, 1)
        current = current[~stops]
        if current.size == 0:
            break
        nxt = np.empty_like(current)
        for position, node in enumerate(current):
            neighbors = neighbor_arrays[int(node)]
            nxt[position] = neighbors[rng.integers(len(neighbors))]
        current = nxt
    total = endings.sum()
    return {node: float(endings[i]) / total for i, node in enumerate(order)}


class DistributedPageRankProgram(NodeProgram):
    """Das Sarma et al. style distributed Monte-Carlo PageRank.

    Each node launches ``walks_per_node`` walk tokens; a token stops at
    its current node with probability ``reset_probability`` per round,
    else moves to a uniform neighbor.  Walk lengths are geometric, so the
    protocol terminates in ``O(log n / epsilon)`` rounds w.h.p.; a round
    cap of ``ceil(c log n / epsilon)`` forces stragglers to stop (the
    truncation error is the same ``O(n^{-c})`` as in [13]).

    Tokens are anonymous counts (one counted message per edge per round),
    so congestion never exceeds one message per edge per round.

    Output: ``endings`` (walks that stopped here); divide by the global
    total (``n * walks_per_node``) for the PageRank estimate.
    """

    def __init__(
        self,
        info: NodeInfo,
        rng: np.random.Generator,
        reset_probability: float,
        walks_per_node: int,
        max_walk_rounds: int,
    ) -> None:
        super().__init__(info, rng)
        self.reset_probability = reset_probability
        self.max_walk_rounds = max_walk_rounds
        self.holding = walks_per_node
        self.endings = 0

    def on_start(self, ctx: RoundContext) -> None:
        self._step(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind == KIND_PR_WALK:
                (count,) = message.fields
                self.holding += count
        if ctx.round_number >= self.max_walk_rounds:
            self.endings += self.holding
            self.holding = 0
            self.halt()
            return
        self._step(ctx)

    def _step(self, ctx: RoundContext) -> None:
        if self.holding == 0:
            self.halt()
            return
        stopped = int(
            self.rng.binomial(self.holding, self.reset_probability)
        )
        self.endings += stopped
        moving = self.holding - stopped
        self.holding = 0
        if moving:
            d = self.degree
            allocation = self.rng.multinomial(moving, np.full(d, 1.0 / d))
            for neighbor, count in zip(self.neighbors, allocation):
                if count:
                    ctx.send(neighbor, KIND_PR_WALK, int(count))
        self.halt()  # un-halted automatically if tokens arrive


def pagerank_distributed(
    graph: Graph,
    reset_probability: float = 0.15,
    walks_per_node: int = 100,
    seed: int | None = None,
    round_cap_factor: float = 8.0,
) -> dict[NodeId, float]:
    """Run :class:`DistributedPageRankProgram` on the CONGEST simulator."""
    _validate(graph, reset_probability)
    relabeled, mapping = graph.relabeled()
    inverse = {i: node for node, i in mapping.items()}
    n = relabeled.num_nodes
    max_walk_rounds = max(
        4,
        int(np.ceil(round_cap_factor * np.log(max(2, n)) / reset_probability)),
    )

    def factory(info: NodeInfo, rng: np.random.Generator):
        return DistributedPageRankProgram(
            info, rng, reset_probability, walks_per_node, max_walk_rounds
        )

    result = run_program(relabeled, factory, seed=seed)
    endings = {i: result.program(i).endings for i in range(n)}
    total = sum(endings.values())
    return {inverse[i]: endings[i] / total for i in range(n)}


def _validate(graph: Graph, reset_probability: float) -> None:
    if graph.num_nodes < 1:
        raise GraphError("pagerank needs a non-empty graph")
    if any(graph.degree(v) == 0 for v in graph.nodes()):
        raise GraphError("pagerank (undirected surfer) needs no isolated nodes")
    if not 0.0 < reset_probability < 1.0:
        raise GraphError("reset_probability must be in (0, 1)")
