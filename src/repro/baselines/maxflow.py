"""Edmonds-Karp maximum flow (substrate for network-flow betweenness).

The paper's section II-A comparator needs per-pair max flows.  For
unit-capacity undirected graphs (our setting), Edmonds-Karp - BFS
augmenting paths on a residual digraph - runs in ``O(m^2)`` per pair,
matching the complexity the paper quotes from Ahuja et al.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.graphs.graph import Graph, GraphError, NodeId


@dataclass(frozen=True)
class MaxFlowResult:
    """Value and per-edge flow of one s-t max flow.

    ``flow[(u, v)]`` is the signed flow from ``u`` to ``v``; exactly one
    of ``(u, v)``/``(v, u)`` is stored, with positive orientation as
    given.
    """

    value: float
    flow: dict[tuple[NodeId, NodeId], float]

    def through_node(self, node: NodeId, source: NodeId, sink: NodeId) -> float:
        """Total flow passing through ``node`` (inflow; endpoints get the
        full value, Freeman's convention)."""
        if node == source or node == sink:
            return self.value
        inflow = 0.0
        for (u, v), f in self.flow.items():
            if v == node and f > 0:
                inflow += f
            elif u == node and f < 0:
                inflow += -f
        return inflow


def max_flow(
    graph: Graph,
    source: NodeId,
    sink: NodeId,
    capacity: float = 1.0,
) -> MaxFlowResult:
    """Max flow between ``source`` and ``sink`` with uniform edge capacity.

    Undirected edges are modeled as a pair of opposite arcs sharing
    capacity through the standard residual construction.
    """
    if source == sink:
        raise GraphError("source and sink must differ")
    for endpoint in (source, sink):
        if not graph.has_node(endpoint):
            raise GraphError(f"node {endpoint!r} not in graph")
    if capacity <= 0:
        raise GraphError("capacity must be positive")

    # Residual capacities: both orientations start at `capacity`.
    residual: dict[NodeId, dict[NodeId, float]] = {
        node: {} for node in graph.nodes()
    }
    for u, v in graph.edges():
        residual[u][v] = capacity
        residual[v][u] = capacity

    value = 0.0
    while True:
        path = _bfs_augmenting_path(residual, source, sink)
        if path is None:
            break
        bottleneck = min(
            residual[u][v] for u, v in zip(path, path[1:])
        )
        for u, v in zip(path, path[1:]):
            residual[u][v] -= bottleneck
            residual[v][u] = residual[v].get(u, 0.0) + bottleneck
        value += bottleneck

    # Net u->v flow: pushing f u->v leaves residual[u][v] = c - f and
    # residual[v][u] = c + f, so the difference of consumed capacities is
    # 2f; halving recovers the signed net flow.
    flow = {
        (u, v): (
            (capacity - residual[u][v]) - (capacity - residual[v][u])
        )
        / 2.0
        for u, v in graph.edges()
    }
    return MaxFlowResult(value=value, flow=flow)


def _bfs_augmenting_path(residual, source, sink):
    """Shortest augmenting path in the residual graph, or None."""
    parent: dict[NodeId, NodeId] = {source: source}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor, cap in residual[node].items():
            if cap > 1e-12 and neighbor not in parent:
                parent[neighbor] = node
                if neighbor == sink:
                    path = [sink]
                    while path[-1] != source:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(neighbor)
    return None
