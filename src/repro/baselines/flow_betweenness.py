"""Freeman's network-flow betweenness centrality (paper section II-A).

The flow betweenness of a node is the flow through it when a maximum flow
is routed between each pair, averaged over pairs.  Because max flows are
not unique, the absolute per-node numbers depend on the augmenting-path
order; the *measure's* comparative behaviour (which the paper discusses)
is robust, and that is what experiment E11 uses.
"""

from __future__ import annotations

from repro.baselines.maxflow import max_flow
from repro.graphs.graph import Graph, GraphError, NodeId
from repro.graphs.properties import is_connected


def flow_betweenness(
    graph: Graph,
    normalized: bool = True,
    include_endpoints: bool = False,
) -> dict[NodeId, float]:
    """Network-flow betweenness of every node.

    ``O(n^2)`` max-flow computations of ``O(m^2)`` each - the ``O(n m^2)``
    the paper quotes (our pair count is ``n(n-1)/2``; constants differ).

    Parameters
    ----------
    graph:
        Connected graph with >= 2 nodes (flow between disconnected pairs
        is undefined in Freeman's formulation).
    normalized:
        Divide each node's total by the total flow over its pairs
        (Freeman's normalization: the share of all flow passing through).
    include_endpoints:
        Count the full flow value for pairs the node terminates.
    """
    if graph.num_nodes < 2:
        raise GraphError("flow betweenness needs >= 2 nodes")
    if not is_connected(graph):
        raise GraphError("flow betweenness requires a connected graph")

    nodes = list(graph.canonical_order())
    through: dict[NodeId, float] = {node: 0.0 for node in nodes}
    total_flow: dict[NodeId, float] = {node: 0.0 for node in nodes}

    for i, source in enumerate(nodes):
        for sink in nodes[i + 1 :]:
            result = max_flow(graph, source, sink)
            for node in nodes:
                if node == source or node == sink:
                    if include_endpoints:
                        through[node] += result.value
                        total_flow[node] += result.value
                    continue
                through[node] += result.through_node(node, source, sink)
                total_flow[node] += result.value

    if not normalized:
        return through
    return {
        node: (through[node] / total_flow[node] if total_flow[node] else 0.0)
        for node in nodes
    }
