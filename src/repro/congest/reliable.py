"""Per-edge reliable delivery: sequence numbers, acks, retransmission.

The CONGEST model assumes reliable synchronous channels; a
:class:`~repro.congest.faults.FaultPlan` breaks that assumption.  This
module restores *exactly-once* delivery on top of lossy links with a
classic sliding-window ARQ, sized to fit the model's bandwidth budget:

* every reliable message carries a per-directed-edge **sequence number**
  as its last field (one shared seq space per edge, across all kinds) -
  ``O(log n)`` extra bits;
* receivers **deduplicate** by seq and answer with cumulative +
  selective **acks** (``cum`` plus a :data:`ACK_WINDOW`-bit bitmap), one
  unreliable ack message per edge per round at most;
* senders **retransmit** anything unacked for :data:`RETRANSMIT_AFTER`
  rounds, under fixed per-edge slot caps so retransmissions count
  against - and never exceed - the per-edge message budget.

The protocol charges every retransmission and ack against the same
``O(log n)``-bit, constant-messages-per-edge budget as fresh traffic
(see ``docs/FAULTS.md``): reliability costs a constant factor, not an
asymptotic one.

Determinism: the ARQ consumes **no randomness**.  Its state evolves as
a pure function of the delivered-message history, so the per-message
loop and the vectorized fast path - which feed it the same history -
keep byte-identical channel states.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message

#: Kind tag of ack messages (unreliable; a newer ack supersedes).
KIND_ACK = "ack"

#: Width of the selective-ack bitmap (seqs ``cum+1 .. cum+ACK_WINDOW``).
#: 16 keeps the bitmap field under 18 bits, inside the 48-bit floor of
#: the per-message budget; out-of-window receipts still get acked
#: cumulatively once the holes before them fill.
ACK_WINDOW = 16

#: Rounds a sent message waits unacked before becoming due again.
#: One network round-trip is 2 rounds; 4 gives the ack a round of slack
#: plus headroom for ack slots lost to the fault plan itself.
RETRANSMIT_AFTER = 4


class OutLink:
    """Sender half of one directed edge's reliable channel."""

    __slots__ = ("next_seq", "unacked", "_floor")

    def __init__(self) -> None:
        self.next_seq = 0
        # seq -> [kind, fields-without-seq, last_sent_round,
        #         first_sent_round] (first_sent only feeds telemetry's
        #         recovery-latency histogram; protocol decisions read
        #         last_sent alone)
        self.unacked: dict[int, list] = {}
        # Conservative lower bound on the unacked entries' last_sent
        # rounds; lets ``due`` skip the scan while everything in flight
        # is too fresh to retransmit (the common case every round).
        self._floor = 0

    def assign(
        self, kind: str, fields: tuple[int, ...], round_number: int
    ) -> int:
        """Allocate the next seq for a message being sent this round."""
        seq = self.next_seq
        self.next_seq += 1
        if not self.unacked:
            self._floor = round_number
        self.unacked[seq] = [kind, fields, round_number, round_number]
        return seq

    def assign_block(
        self, kind: str, fields_rows: list[tuple[int, ...]],
        round_number: int,
    ) -> int:
        """Allocate consecutive seqs for a block of messages all sent
        this round on this edge (head-of-queue order); returns the
        first seq.  Equivalent to ``assign`` once per row."""
        seq = self.next_seq
        unacked = self.unacked
        if not unacked:
            self._floor = round_number
        for fields in fields_rows:
            unacked[seq] = [kind, fields, round_number, round_number]
            seq += 1
        start = self.next_seq
        self.next_seq = seq
        return start

    def touch(self, seq: int, round_number: int) -> None:
        """Record a retransmission of ``seq`` this round."""
        self.unacked[seq][2] = round_number

    def apply_ack(
        self, cum: int, bitmap: int, latencies: list | None = None
    ) -> int:
        """Discard everything the ack covers; returns how many seqs
        were newly confirmed.  With ``latencies``, appends each
        confirmed seq's ``last_sent - first_sent`` (extra rounds spent
        retransmitting before the acked copy went out; 0 = first try)."""
        confirmed = 0
        for seq in [s for s in self.unacked if s <= cum]:
            entry = self.unacked.pop(seq)
            if latencies is not None:
                latencies.append(entry[2] - entry[3])
            confirmed += 1
        offset = 0
        while bitmap:
            if bitmap & 1:
                seq = cum + 1 + offset
                entry = self.unacked.pop(seq, None)
                if entry is not None:
                    if latencies is not None:
                        latencies.append(entry[2] - entry[3])
                    confirmed += 1
            bitmap >>= 1
            offset += 1
        return confirmed

    def apply_ack_seqs(self, cum: int, bitmap: int) -> list[int]:
        """Like :meth:`apply_ack`, but returns the newly confirmed seqs
        (ascending) instead of a count.  The asynchronous executor maps
        each confirmed seq back to the simulated round whose safety
        gate it holds open."""
        confirmed = [seq for seq in self.unacked if seq <= cum]
        for seq in confirmed:
            del self.unacked[seq]
        offset = 0
        while bitmap:
            if bitmap & 1:
                seq = cum + 1 + offset
                if self.unacked.pop(seq, None) is not None:
                    confirmed.append(seq)
            bitmap >>= 1
            offset += 1
        return confirmed

    def due(self, round_number: int) -> list[int]:
        """Seqs whose last transmission has gone unacked too long."""
        if not self.unacked:
            return []
        horizon = round_number - RETRANSMIT_AFTER
        if self._floor > horizon:
            return []
        due: list[int] = []
        floor = None
        for seq, entry in self.unacked.items():
            last_sent = entry[2]
            if last_sent <= horizon:
                due.append(seq)
            if floor is None or last_sent < floor:
                floor = last_sent
        self._floor = floor
        due.sort()
        return due


class InLink:
    """Receiver half of one directed edge's reliable channel.

    Delivered-but-unordered seqs live in ``mask``, an unbounded int
    bitmask relative to ``cum`` (bit ``i`` = seq ``cum + 1 + i``
    delivered).  The mask form makes acceptance O(1) bit ops and lets
    the fast path mirror many links into flat arrays
    (:class:`InLinkFlatState`) for array-level acceptance.
    """

    __slots__ = ("cum", "mask", "ack_due")

    def __init__(self) -> None:
        self.cum = -1  # highest seq with all predecessors delivered
        self.mask = 0  # delivered seqs above cum, relative to cum + 1
        self.ack_due = False

    def accept(self, seq: int) -> bool:
        """Register a delivery; True iff this seq is new (not a dup)."""
        self.ack_due = True
        offset = seq - self.cum - 1
        if offset < 0 or (self.mask >> offset) & 1:
            return False
        mask = self.mask | (1 << offset)
        # Slide the window past the contiguous prefix: the lowest zero
        # bit of the mask is one past its run of trailing ones.
        advance = ((mask + 1) & ~mask).bit_length() - 1
        if advance:
            self.cum += advance
            mask >>= advance
        self.mask = mask
        return True

    @property
    def seen(self) -> set[int]:
        """Delivered seqs above ``cum`` (set view of the mask)."""
        mask = self.mask
        return {
            self.cum + 1 + offset
            for offset in range(mask.bit_length())
            if (mask >> offset) & 1
        }

    def ack_fields(self) -> tuple[int, int]:
        """Current ``(cum, bitmap)`` selective-ack payload."""
        return self.cum, self.mask & ((1 << ACK_WINDOW) - 1)


class ChannelStats:
    """Recovery-layer accounting, aggregated per node."""

    __slots__ = ("retransmissions", "acks_sent", "duplicates_rejected")

    def __init__(self) -> None:
        self.retransmissions = 0
        self.acks_sent = 0
        self.duplicates_rejected = 0


class ReliableChannel:
    """One node's reliable channel endpoints to all its neighbors.

    Both execution loops mutate the *same* channel objects: the
    per-message loop from inside each node's round handler, the fast
    path from the network-wide walk engine.  All methods are
    deterministic given the delivered-message history.

    Per-edge slot discipline (``flush``): per neighbor per round, at
    most ``token_budget`` walk-token retransmissions, ``control_slots``
    control messages (due retransmits first, then fresh queued sends),
    and one ack.  With a bandwidth policy of ``walk_budget + 4``
    messages per edge, the combined fresh + recovery traffic can never
    violate the CONGEST cap.
    """

    def __init__(
        self,
        node_id: int,
        neighbors: Iterable[int],
        token_budget: int,
        token_kinds: frozenset[str],
        latest_kinds: frozenset[str],
        control_slots: int = 2,
        instruments=None,
    ) -> None:
        self.node_id = node_id
        self.neighbors = tuple(sorted(neighbors))
        self.token_budget = token_budget
        self.token_kinds = token_kinds
        self.latest_kinds = latest_kinds
        self.control_slots = control_slots
        self.out: dict[int, OutLink] = {v: OutLink() for v in self.neighbors}
        self.inn: dict[int, InLink] = {v: InLink() for v in self.neighbors}
        # Per-neighbor fresh control queue: list of [kind, fields].
        self._queues: dict[int, list[list]] = {
            v: [] for v in self.neighbors
        }
        # Neighbors that might need flush work (something unacked,
        # queued, or an ack owed).  Every path that creates such work
        # adds the neighbor here; ``flush`` drops a neighbor once its
        # edge is fully settled, so quiet edges cost nothing per round.
        self._active: set[int] = set()
        self.stats = ChannelStats()
        # Optional repro.obs.InstrumentSet: ARQ window occupancy,
        # per-round retransmit/ack counters, and recovery latencies.
        # Strictly observational - the channel never reads it back.
        self._instruments = instruments

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def register_sent(
        self,
        neighbor: int,
        kind: str,
        fields: tuple[int, ...],
        round_number: int,
    ) -> int:
        """Sequence a message the caller ships itself *this round*
        (fresh walk tokens, which the walk layer emits directly) and
        remember it for retransmission.  Returns the seq to append."""
        self._active.add(neighbor)
        return self.out[neighbor].assign(kind, fields, round_number)

    def register_block(
        self,
        neighbor: int,
        kind: str,
        fields_rows: list[tuple[int, ...]],
        round_number: int,
    ) -> int:
        """Block form of :meth:`register_sent`: sequence a head-of-queue
        run of messages on one edge; returns the first seq."""
        self._active.add(neighbor)
        return self.out[neighbor].assign_block(
            kind, fields_rows, round_number
        )

    def mark_active(self, neighbor: int) -> None:
        """Note that the edge to ``neighbor`` has flush work (used by
        the fast path, which mutates the links directly)."""
        self._active.add(neighbor)

    def queue(self, neighbor: int, kind: str, fields: tuple[int, ...]) -> None:
        """Queue a reliable control message; ``flush`` sends it when a
        slot frees up."""
        self._active.add(neighbor)
        self._queues[neighbor].append([kind, fields])

    def queue_latest(
        self, neighbor: int, kind: str, fields: tuple[int, ...]
    ) -> None:
        """Queue a monotone control message, superseding any *queued*
        (not yet sequenced) message of the same kind - for kinds where
        only the latest value matters (flood waves, death-counter
        reports).  Copies already in flight keep retransmitting; the
        receiver's handler is monotone, so a stale arrival is a no-op.
        """
        self._active.add(neighbor)
        for entry in self._queues[neighbor]:
            if entry[0] == kind:
                entry[1] = fields
                return
        self._queues[neighbor].append([kind, fields])

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def receive(self, message: Message) -> tuple[int, ...] | None:
        """Process one arriving message through the reliability layer.

        Returns the payload fields (seq stripped) when the message is a
        *fresh* reliable delivery; ``None`` for acks and duplicates
        (both fully handled internally).
        """
        sender = message.sender
        if sender not in self.out:
            raise ProtocolError(
                f"node {self.node_id} got reliable traffic from non-"
                f"neighbor {sender}"
            )
        if message.kind == KIND_ACK:
            cum, bitmap = message.fields
            if self._instruments is not None:
                latencies: list[int] = []
                self.out[sender].apply_ack(cum, bitmap, latencies)
                for latency in latencies:
                    self._instruments.observe(
                        "recovery_latency_rounds", latency
                    )
            else:
                self.out[sender].apply_ack(cum, bitmap)
            return None
        seq = message.fields[-1]
        self._active.add(sender)  # the accept owes an ack either way
        if self.inn[sender].accept(seq):
            return message.fields[:-1]
        self.stats.duplicates_rejected += 1
        return None

    # ------------------------------------------------------------------
    # Per-round flush
    # ------------------------------------------------------------------
    def flush(
        self,
        round_number: int,
        push: Callable[[Message], None],
    ) -> dict[int, int]:
        """Send this round's recovery traffic.

        Per neighbor, in order: due walk-token retransmissions (up to
        ``token_budget``), control messages (due retransmits, then
        fresh queued, up to ``control_slots`` combined), then one ack
        if owed.  Returns the per-neighbor token-retransmission counts;
        the walk layer subtracts them from its fresh-emission budget so
        the edge's token slots are never oversubscribed.
        """
        token_retransmits: dict[int, int] = {}
        retransmits_this_round = 0
        acks_this_round = 0
        active = self._active
        # Only edges with live work are visited; iteration stays in
        # neighbor order, so the push order matches the full scan's.
        if not active:
            order: tuple[int, ...] | list[int] = ()
        elif len(active) == len(self.neighbors):
            order = self.neighbors
        else:
            order = sorted(active)
        for neighbor in order:
            link = self.out[neighbor]
            due = link.due(round_number)
            tokens_sent = 0
            control_sent = 0
            for seq in due:
                kind, fields, _, _ = link.unacked[seq]
                is_token = kind in self.token_kinds
                if is_token:
                    if tokens_sent >= self.token_budget:
                        continue
                elif control_sent >= self.control_slots:
                    continue
                push(
                    Message(
                        self.node_id, neighbor, kind, fields + (seq,)
                    )
                )
                link.touch(seq, round_number)
                self.stats.retransmissions += 1
                retransmits_this_round += 1
                if is_token:
                    tokens_sent += 1
                else:
                    control_sent += 1
            queue = self._queues[neighbor]
            while queue and control_sent < self.control_slots:
                kind, fields = queue.pop(0)
                seq = link.assign(kind, fields, round_number)
                push(
                    Message(
                        self.node_id, neighbor, kind, fields + (seq,)
                    )
                )
                control_sent += 1
            inlink = self.inn[neighbor]
            if inlink.ack_due:
                cum, bitmap = inlink.ack_fields()
                push(
                    Message(self.node_id, neighbor, KIND_ACK, (cum, bitmap))
                )
                inlink.ack_due = False
                self.stats.acks_sent += 1
                acks_this_round += 1
            if tokens_sent:
                token_retransmits[neighbor] = tokens_sent
            if not link.unacked and not queue and not inlink.ack_due:
                active.discard(neighbor)
        if self._instruments is not None:
            if retransmits_this_round:
                self._instruments.bump_round(
                    "retransmissions", round_number, retransmits_this_round
                )
            if acks_this_round:
                self._instruments.bump_round(
                    "acks", round_number, acks_this_round
                )
            self._instruments.observe("arq_window", self.unacked_count)
        return token_retransmits

    # ------------------------------------------------------------------
    # Drain / introspection
    # ------------------------------------------------------------------
    @property
    def unacked_count(self) -> int:
        return sum(len(link.unacked) for link in self.out.values())

    @property
    def queued_count(self) -> int:
        return sum(len(queue) for queue in self._queues.values())

    @property
    def drained(self) -> bool:
        """True when nothing is queued, in flight, or owed an ack."""
        if self.queued_count or self.unacked_count:
            return False
        return not any(link.ack_due for link in self.inn.values())


class InLinkFlatState:
    """Flat numpy mirror of many :class:`InLink` cursors, by edge id.

    The fast path's network-wide engine owns one of these, sized to the
    network's directed-edge table.  Each round it *pulls* the cursors of
    the edges appearing in the claimed walk traffic, decides acceptance
    for every row with array compares against ``cum``/``mask``, and
    *pushes* the advanced cursors back into the InLink objects - which
    stay the single source of truth, because the control path keeps
    accepting retransmitted tokens through
    :meth:`ReliableChannel.receive` on the very same links.

    Masks wider than 63 bits (a hole older than 63 seqs, e.g. behind a
    long crash window) do not fit the uint64 mirror; such edges are
    flagged ``wide`` and the caller routes their rows through the plain
    per-row :meth:`InLink.accept` fallback.
    """

    __slots__ = ("cum", "mask", "wide")

    def __init__(self, size: int) -> None:
        self.cum = np.full(size, -1, dtype=np.int64)
        self.mask = np.zeros(size, dtype=np.uint64)
        self.wide = np.zeros(size, dtype=bool)

    def pull(self, edge_ids: list[int], links: list[InLink]) -> None:
        """Refresh the mirror from the InLink objects for these edges."""
        cum, mask, wide = self.cum, self.mask, self.wide
        for edge_id, link in zip(edge_ids, links):
            cum[edge_id] = link.cum
            link_mask = link.mask
            if link_mask >> 63:
                wide[edge_id] = True
                mask[edge_id] = 0
            else:
                wide[edge_id] = False
                mask[edge_id] = link_mask

    def push(self, edge_ids: list[int], links: list[InLink]) -> None:
        """Write advanced cursors back into the InLink objects (also
        marking their acks due, as every accept does)."""
        cum, mask = self.cum, self.mask
        for edge_id, link in zip(edge_ids, links):
            link.cum = int(cum[edge_id])
            link.mask = int(mask[edge_id])
            link.ack_due = True
