"""Structured event tracing for debugging distributed runs.

Traces are opt-in and bounded: simulating thousands of rounds with
per-message events would otherwise dominate memory.  Events are plain
tuples so tests can assert on them directly.

Both scheduler loops emit the same ``deliver`` events: the per-message
loop as it routes each message, the vectorized fast path by expanding
its aggregate rows at delivery time (kind-major order, so only the
within-round ordering differs; ``tests/test_congest_replay.py`` pins
the sorted streams equal).  Attaching a tracer therefore does not
force per-message dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple


class TraceEvent(NamedTuple):
    round_number: int
    node_id: int
    event: str
    detail: tuple


@dataclass
class Tracer:
    """Bounded in-memory event recorder.

    Parameters
    ----------
    max_events:
        Hard cap; once reached, further events are counted but dropped.
    kinds:
        Optional whitelist of event names to record (None = all).
    """

    max_events: int = 100_000
    kinds: frozenset[str] | None = None

    def __post_init__(self) -> None:
        self.events: list[TraceEvent] = []
        self.dropped = 0

    def record(
        self, round_number: int, node_id: int, event: str, *detail
    ) -> None:
        if self.kinds is not None and event not in self.kinds:
            return
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(TraceEvent(round_number, node_id, event, detail))

    def of_kind(self, event: str) -> list[TraceEvent]:
        """All recorded events with the given name."""
        return [e for e in self.events if e.event == event]

    def for_node(self, node_id: int) -> list[TraceEvent]:
        """All recorded events at one node."""
        return [e for e in self.events if e.node_id == node_id]

    def __len__(self) -> int:
        return len(self.events)


class NullTracer:
    """No-op tracer used when tracing is disabled."""

    events: list[TraceEvent] = []
    dropped = 0

    def record(self, round_number: int, node_id: int, event: str, *detail):
        return

    def of_kind(self, event: str) -> list[TraceEvent]:
        return []

    def for_node(self, node_id: int) -> list[TraceEvent]:
        return []

    def __len__(self) -> int:
        return 0
