"""Round/message/bit accounting for simulated runs.

These counters are the experimental observables of the reproduction: the
paper's Theorems 4 and 5 are statements about exactly these quantities
(bits per edge per round, total rounds).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.congest.message import Message


@dataclass
class RunMetrics:
    """Aggregated statistics for one simulation run.

    All "edge" quantities are per *directed* edge (the model's bandwidth is
    per direction).
    """

    rounds: int = 0
    total_messages: int = 0
    total_bits: int = 0
    max_messages_per_edge_round: int = 0
    max_bits_per_edge_round: int = 0
    max_message_bits: int = 0
    messages_per_round: list[int] = field(default_factory=list)
    bits_per_round: list[int] = field(default_factory=list)
    phase_rounds: dict[str, int] = field(default_factory=dict)
    # Injected-fault accounting (dropped / duplicated / delayed /
    # crash_dropped / crash_node_rounds); empty when the run had no
    # FaultPlan.  Message/bit counters above always reflect *delivered*
    # traffic, so a faulty run's totals exclude what the plan destroyed.
    faults: dict[str, int] = field(default_factory=dict)
    # Optional repro.obs.InstrumentSet: when attached, each recorded
    # round also folds its per-edge bit/message loads into the
    # bits_per_edge_round / messages_per_edge_round histograms.
    # Observation only - never read back by protocol code.
    instruments: object | None = field(default=None, repr=False, compare=False)
    # Rounds already attributed to some phase by mark_phase.
    _attributed_rounds: int = field(default=0, repr=False, compare=False)

    def record_round(self, messages: list[Message]) -> None:
        """Fold one round's delivered messages into the totals."""
        self.rounds += 1
        round_bits = 0
        edge_messages: dict[tuple[int, int], int] = {}
        edge_bits: dict[tuple[int, int], int] = {}
        for message in messages:
            edge = (message.sender, message.receiver)
            edge_messages[edge] = edge_messages.get(edge, 0) + 1
            edge_bits[edge] = edge_bits.get(edge, 0) + message.bits
            round_bits += message.bits
            if message.bits > self.max_message_bits:
                self.max_message_bits = message.bits
        if edge_messages:
            self.max_messages_per_edge_round = max(
                self.max_messages_per_edge_round, max(edge_messages.values())
            )
            self.max_bits_per_edge_round = max(
                self.max_bits_per_edge_round, max(edge_bits.values())
            )
        self.total_messages += len(messages)
        self.total_bits += round_bits
        self.messages_per_round.append(len(messages))
        self.bits_per_round.append(round_bits)
        if self.instruments is not None and edge_messages:
            self.instruments.observe_values(
                "messages_per_edge_round", edge_messages.values()
            )
            self.instruments.observe_values(
                "bits_per_edge_round", edge_bits.values()
            )

    def record_round_aggregate(self, traffic) -> None:
        """Fold one fast-path round into the totals.

        ``traffic`` is a :class:`~repro.congest.transport.RoundTraffic`
        with the round's merged (bulk + control) numbers; the resulting
        counters are identical to what :meth:`record_round` computes from
        the materialized messages of the equivalent slow-path round.
        """
        self.rounds += 1
        self.total_messages += traffic.total_messages
        self.total_bits += traffic.total_bits
        self.max_messages_per_edge_round = max(
            self.max_messages_per_edge_round, traffic.max_edge_messages
        )
        self.max_bits_per_edge_round = max(
            self.max_bits_per_edge_round, traffic.max_edge_bits
        )
        self.max_message_bits = max(
            self.max_message_bits, traffic.max_message_bits
        )
        self.messages_per_round.append(traffic.total_messages)
        self.bits_per_round.append(traffic.total_bits)
        if self.instruments is not None:
            if traffic.edge_messages is not None:
                self.instruments.observe_array(
                    "messages_per_edge_round", traffic.edge_messages
                )
            if traffic.edge_bits is not None:
                self.instruments.observe_array(
                    "bits_per_edge_round", traffic.edge_bits
                )

    def mark_phase(self, name: str) -> None:
        """Attribute all rounds since the previous mark to phase ``name``.

        Re-entrant: marking the same name again *adds* the new rounds to
        that phase, and interleaved marks (A, B, A, ...) attribute each
        stretch to the phase named at its end.  (The old implementation
        assumed strictly sequential one-shot marks - re-marking a name
        silently corrupted every other phase's count.)
        """
        delta = self.rounds - self._attributed_rounds
        self.phase_rounds[name] = self.phase_rounds.get(name, 0) + delta
        self._attributed_rounds = self.rounds

    def bits_crossing_cut(
        self, messages_log: list[list[Message]], cut_nodes: set[int]
    ) -> int:
        """Total bits on edges with exactly one endpoint in ``cut_nodes``.

        Requires the full message log (``Simulator(record_messages=True)``).
        This is the quantity the lower-bound simulation argument
        (Theorem 7) charges to the two-party protocol.
        """
        total = 0
        for round_messages in messages_log:
            for message in round_messages:
                if (message.sender in cut_nodes) != (
                    message.receiver in cut_nodes
                ):
                    total += message.bits
        return total

    def summary(self) -> dict[str, float]:
        """Flat dict of headline numbers for reports."""
        numbers = {
            "rounds": self.rounds,
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "max_messages_per_edge_round": self.max_messages_per_edge_round,
            "max_bits_per_edge_round": self.max_bits_per_edge_round,
            "max_message_bits": self.max_message_bits,
        }
        for name, value in self.faults.items():
            numbers[f"faults_{name}"] = value
        return numbers
