"""Multi-process sharded execution of the counting walk engine.

The counting phase is the run's hot loop, and its per-round work - the
:func:`~repro.core.walk_engine.counting_round_kernel` over the canonical
group arrays - factors cleanly by node: every kernel effect (thinning,
visit tallies, expiry, next-hop draws) reads and writes state owned by
the group's node.  :class:`ShardedWalkEngine` exploits that by
partitioning the node id space into ``num_shards`` contiguous ranges
(the prefix-distribution idiom of rank-partitioned betweenness codes)
and running each range's kernel slice in its own forked worker process,
with the shared count tensor in POSIX shared memory so visit tallies
land in place without serialization.

Per round the parent still runs everything order-sensitive or
network-global - claimed-traffic dedup, canonical aggregation, the
pending-table merge, termination reporting, budgeted emission - and
fans only the kernel out:

1. split the canonical arrays at the shard bounds (they are sorted by
   node, so each shard's groups form one contiguous slice),
2. ship each non-empty slice down that worker's pipe,
3. collect ``(entries, death_nodes, death_counts)`` replies in shard
   order and merge.

**Determinism.**  Byte-identity with the single-process fast path holds
structurally, not statistically:

* Every node's generator lives in exactly one worker (forked at
  finalize, after the launch draws), and the kernel consumes it in the
  same canonical per-node segment order as the single-process call, so
  all random streams are identical.
* Concatenating the shard replies in shard order reproduces the exact
  global entry row order (shards own ascending node ranges, and the
  kernel emits cells group-major).
* Sequence numbers are worker-local counters (each starts at the
  parent's post-launch value).  Two workers reuse the same values, but
  a sequence number is only ever *compared* within one directed edge's
  FIFO, and each edge is owned by its source node's single shard, where
  the counter is strictly increasing - so the emission lexsort orders
  every queue exactly as the single-process engine does.
* Death deltas are returned as unaggregated pairs and folded with
  ``np.add.at``; addition commutes, so the convergecast totals match.

Reliable (lossy) runs work unchanged: ARQ dedup, acking, and
retransmission all happen in the parent before/after the kernel.

**Lifecycle.**  Workers are daemonic and are reaped by :meth:`close`,
which the scheduler calls on every exit path.  A worker that dies or
raises surfaces as :class:`~repro.congest.errors.ShardExecutionError`
with the shard index and remote traceback - never a hang.  The shared
segment is unlinked at close but stays mapped in the parent, so count
views held by node programs remain valid for the result's lifetime.
"""

from __future__ import annotations

import multiprocessing
import traceback
from multiprocessing import shared_memory
from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ConfigError, ShardExecutionError
from repro.core.walk_engine import CountingWalkEngine, counting_round_kernel

if TYPE_CHECKING:  # pragma: no cover
    from multiprocessing.connection import Connection


def _shard_worker(
    conn: "Connection",
    counts: np.ndarray,
    rngs: dict[int, np.random.Generator],
    alpha: float | None,
    absorbing_target: int,
    degrees: np.ndarray,
    offsets: np.ndarray,
    max_degree: int,
    seq_start: int,
) -> None:
    """Worker main loop: run kernel slices until told to stop.

    Forked from the parent at engine finalize, so ``counts`` is the
    parent's shared-memory mapping (writes are visible immediately) and
    ``rngs`` holds this shard's generators in their exact post-launch
    state.  Any failure is reported up the pipe as a formatted
    traceback; the parent turns it into a
    :class:`~repro.congest.errors.ShardExecutionError`.
    """
    seq = seq_start
    try:
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            _, nodes, sources, remainings, halves, group_counts = message
            entries, death_nodes, death_counts, seq = counting_round_kernel(
                nodes,
                sources,
                remainings,
                halves,
                group_counts,
                rngs,
                alpha,
                absorbing_target,
                counts,
                degrees,
                offsets,
                max_degree,
                seq,
            )
            conn.send(("ok", entries, death_nodes, death_counts))
    except (EOFError, KeyboardInterrupt):
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


class ShardedWalkEngine(CountingWalkEngine):
    """A :class:`CountingWalkEngine` whose kernel runs across processes.

    Drop-in replacement selected by ``Simulator(num_shards=...)``
    through the protocol's engine hook; everything outside
    :meth:`_run_kernel` - registration, finalize, claimed-traffic
    handling, termination, emission - is inherited verbatim.
    """

    def __init__(self, n: int, num_shards: int) -> None:
        if num_shards < 1:
            raise ConfigError("num_shards must be >= 1")
        if num_shards > n:
            raise ConfigError(
                f"num_shards={num_shards} exceeds the {n} nodes available"
            )
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ConfigError(
                "the sharded executor needs the 'fork' start method "
                "(workers must inherit post-launch generator state); "
                "it is unavailable on this platform"
            )
        super().__init__(n)
        self.num_shards = num_shards
        # Re-home the count tensor in a POSIX shared-memory segment so
        # worker tallies land in the parent's view without copies.
        # tmpfs pages are zero on first touch, matching np.zeros.
        self._shm = shared_memory.SharedMemory(
            create=True, size=max(1, n * 2 * n) * 8
        )
        self.counts = np.ndarray(
            (n, 2, n), dtype=np.int64, buffer=self._shm.buf
        )
        # Contiguous node ranges; the canonical arrays are node-sorted,
        # so each shard's slice is one searchsorted window.
        self._bounds = np.linspace(0, n, num_shards + 1).astype(np.int64)
        self._conns: list["Connection"] = []
        self._procs: list[multiprocessing.Process] = []
        self._round_number = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        super()._finalize()
        # Fork now: the launch queues are adopted and every generator
        # sits in its exact post-launch state, which the workers must
        # inherit (and the parent must stop consuming).
        ctx = multiprocessing.get_context("fork")
        for shard in range(self.num_shards):
            lo = int(self._bounds[shard])
            hi = int(self._bounds[shard + 1])
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(
                    child_conn,
                    self.counts,
                    {node: self._rngs[node] for node in range(lo, hi)},
                    self._alpha,
                    self._absorbing_target,
                    self._degrees,
                    self._offsets,
                    self._max_degree,
                    self._seq,
                ),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def close(self) -> None:
        """Reap workers and unlink the shared segment (idempotent).

        Called by the scheduler on every exit path.  The segment stays
        *mapped* in this process - node programs hold live views into
        the count tensor - and is freed with the last mapping.
        """
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Kernel fan-out
    # ------------------------------------------------------------------
    def end_round(self, round_number, claimed, outbox, bulk_outbox) -> None:
        self._round_number = round_number
        super().end_round(round_number, claimed, outbox, bulk_outbox)

    def _run_kernel(
        self,
        nodes: np.ndarray,
        sources: np.ndarray,
        remainings: np.ndarray,
        halves: np.ndarray,
        counts: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        cut = np.searchsorted(nodes, self._bounds)
        active: list[int] = []
        for shard in range(self.num_shards):
            lo, hi = int(cut[shard]), int(cut[shard + 1])
            if lo == hi:
                continue
            try:
                self._conns[shard].send(
                    (
                        "step",
                        nodes[lo:hi],
                        sources[lo:hi],
                        remainings[lo:hi],
                        halves[lo:hi],
                        counts[lo:hi],
                    )
                )
            except (BrokenPipeError, OSError) as exc:
                raise self._worker_error(shard, repr(exc)) from exc
            active.append(shard)
        entry_parts: list[np.ndarray] = []
        death_node_parts: list[np.ndarray] = []
        death_count_parts: list[np.ndarray] = []
        instruments = self._instruments
        for shard in active:
            try:
                reply = self._conns[shard].recv()
            except (EOFError, OSError) as exc:
                raise self._worker_error(shard, repr(exc)) from exc
            if reply[0] != "ok":
                raise self._worker_error(shard, reply[1])
            _, entries, death_nodes, death_counts = reply
            entry_parts.append(entries)
            death_node_parts.append(death_nodes)
            death_count_parts.append(death_counts)
            if instruments is not None:
                # Per-shard load counters, same sparse round-counter
                # schema as the engine's own telemetry.
                instruments.bump_round(
                    f"shard{shard}_groups",
                    self._round_number,
                    int(cut[shard + 1] - cut[shard]),
                )
                instruments.bump_round(
                    f"shard{shard}_entries",
                    self._round_number,
                    len(entries),
                )
        if not entry_parts:
            empty = np.zeros(0, dtype=np.int64)
            return np.empty((0, 6), dtype=np.int64), empty, empty, self._seq
        # Shards own ascending node ranges and the kernel emits cells
        # group-major, so shard-order concatenation IS the global
        # canonical entry order of the single-process kernel.
        return (
            np.concatenate(entry_parts),
            np.concatenate(death_node_parts),
            np.concatenate(death_count_parts),
            self._seq,
        )

    def _worker_error(self, shard: int, detail: str) -> ShardExecutionError:
        proc = self._procs[shard]
        exitcode = proc.exitcode if not proc.is_alive() else None
        return ShardExecutionError(
            f"shard {shard}/{self.num_shards} worker failed during round "
            f"{self._round_number}: {detail.strip().splitlines()[-1]}",
            context={
                "shard": shard,
                "num_shards": self.num_shards,
                "round": self._round_number,
                "exitcode": exitcode,
                "detail": detail,
            },
        )
