"""Bandwidth-enforcing transport between nodes.

The transport collects the messages queued during one round and delivers
them at the start of the next, enforcing the CONGEST limits:

* every single message must fit in ``bits_per_message`` bits, and
* at most ``messages_per_edge`` messages may use one directed edge per
  round.

Violations raise :class:`~repro.congest.errors.CongestViolation`
immediately at send time, attributing the bug to the offending program
rather than silently dropping traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from typing import TYPE_CHECKING

from repro.congest.errors import CongestViolation, ConfigError
from repro.congest.message import TAG_BITS, Message, int_bits_array

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.faults import FaultRuntime


@dataclass(frozen=True)
class BandwidthPolicy:
    """The model constants of one simulation.

    Attributes
    ----------
    n:
        Network size; the ``log n`` in the model's ``O(log n)`` budget.
    log_factor:
        ``c`` in the per-message budget ``c * ceil(log2 n)`` bits.
    messages_per_edge:
        Maximum messages per directed edge per round (the model's "constant
        number of messages").
    """

    n: int
    log_factor: int = 8
    messages_per_edge: int = 4

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("BandwidthPolicy requires n >= 1")
        if self.log_factor < 1:
            raise ConfigError("BandwidthPolicy requires log_factor >= 1")
        if self.messages_per_edge < 1:
            raise ConfigError("BandwidthPolicy requires messages_per_edge >= 1")

    @property
    def bits_per_message(self) -> int:
        """The ``O(log n)`` per-message budget.

        The floor of 48 bits keeps small-n simulations workable: leader
        ranks span ``[0, n^3)`` (3 log n bits) and ride with an id and a
        distance, which exceeds ``8 log2 n`` for n < ~10.  The floor is a
        constant, so the asymptotic budget is unchanged.
        """
        return max(48, self.log_factor * math.ceil(math.log2(max(2, self.n))))


class RoundOutbox:
    """Accumulates one round's outgoing messages under the bandwidth policy."""

    def __init__(self, policy: BandwidthPolicy) -> None:
        self._policy = policy
        self._messages: list[Message] = []
        self._edge_counts: dict[tuple[int, int], int] = {}

    def push(self, message: Message) -> None:
        """Accept a message or raise :class:`CongestViolation`."""
        limit = self._policy.bits_per_message
        if message.bits > limit:
            raise CongestViolation(
                f"message {message!r} is {message.bits} bits, exceeding the "
                f"per-message budget of {limit} bits"
            )
        edge = (message.sender, message.receiver)
        used = self._edge_counts.get(edge, 0)
        if used >= self._policy.messages_per_edge:
            raise CongestViolation(
                f"edge {edge} already carries {used} messages this round "
                f"(limit {self._policy.messages_per_edge})"
            )
        self._edge_counts[edge] = used + 1
        self._messages.append(message)

    def edge_load(self, sender: int, receiver: int) -> int:
        """Messages queued on one directed edge this round (for programs
        that self-limit their sends, e.g. the walk counting phase)."""
        return self._edge_counts.get((sender, receiver), 0)

    def drain(self) -> list[Message]:
        """Remove and return all queued messages."""
        messages = self._messages
        self._messages = []
        self._edge_counts = {}
        return messages

    def __len__(self) -> int:
        return len(self._messages)


# ---------------------------------------------------------------------------
# Aggregate (fast-path) transport
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BulkKindInbox:
    """One node's aggregated arrivals of one message kind this round."""

    senders: np.ndarray
    fields: np.ndarray  # (groups, field_count) integer matrix
    multiplicity: np.ndarray  # identical copies per row


#: Per-node fast-path inbox: kind -> aggregated arrivals.
BulkInbox = dict[str, BulkKindInbox]


@dataclass(frozen=True)
class RoundTraffic:
    """One round's merged accounting (bulk + control), for RunMetrics.

    ``edge_messages`` / ``edge_bits`` are the per-directed-edge loads
    behind the maxima (one entry per edge that carried traffic, order
    unspecified).  They ride along for telemetry - RunMetrics folds them
    into histograms when instruments are attached - and are excluded
    from equality so traffic comparisons stay by-the-numbers.
    """

    total_messages: int = 0
    total_bits: int = 0
    max_edge_messages: int = 0
    max_edge_bits: int = 0
    max_message_bits: int = 0
    edge_messages: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )
    edge_bits: np.ndarray | None = field(
        default=None, compare=False, repr=False
    )


@dataclass
class _KindBatch:
    """Accumulated same-kind records of one round (pre-concatenation)."""

    senders: list[np.ndarray] = field(default_factory=list)
    receivers: list[np.ndarray] = field(default_factory=list)
    fields: list[np.ndarray] = field(default_factory=list)
    multiplicity: list[np.ndarray] = field(default_factory=list)
    row_bits: list[np.ndarray] = field(default_factory=list)


class BulkRound:
    """One round's drained aggregate traffic, in flight to next round.

    Holds concatenated per-kind arrays plus the merged
    :class:`RoundTraffic` numbers the scheduler folds into
    :class:`~repro.congest.metrics.RunMetrics` at delivery time - the
    same totals and per-edge maxima that materializing every message
    would have produced.
    """

    def __init__(
        self,
        kinds: dict[str, BulkKindInbox],
        receivers_by_kind: dict[str, np.ndarray],
        row_bits_by_kind: dict[str, np.ndarray],
        traffic: RoundTraffic,
    ) -> None:
        self._kinds = kinds
        self._receivers = receivers_by_kind
        self._row_bits = row_bits_by_kind
        self.traffic = traffic

    def __bool__(self) -> bool:
        return bool(self._kinds)

    @property
    def total_messages(self) -> int:
        return sum(
            int(batch.multiplicity.sum()) for batch in self._kinds.values()
        )

    def take(
        self, kind: str
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None:
        """Remove one kind's traffic wholesale and return it as
        ``(senders, receivers, fields, multiplicity)`` arrays.

        Used by fast-path drivers that claim a message kind: the claimed
        traffic skips the per-receiver split of :meth:`group_by_receiver`
        and is processed network-wide instead.  Accounting is unaffected
        (``traffic`` was fixed at drain time)."""
        batch = self._kinds.pop(kind, None)
        if batch is None:
            return None
        receivers = self._receivers.pop(kind)
        self._row_bits.pop(kind)
        return batch.senders, receivers, batch.fields, batch.multiplicity

    def apply_faults(
        self,
        runtime: "FaultRuntime",
        round_number: int,
        n: int,
        control_messages: list[Message],
    ) -> tuple[list[Message], "BulkRound"]:
        """Run this round's aggregate traffic through the fault plan.

        ``control_messages`` must already be fault-filtered (the
        scheduler does that first; per-edge fault indices continue from
        control into bulk, fixing the canonical order).  Filters every
        kind's rows, folds in traffic *delayed into* this round, and
        recomputes the delivered :class:`RoundTraffic` - so RunMetrics
        counts what actually arrived, exactly as the per-message loop's
        post-filter accounting does.  Returns the final control list
        (matured delayed messages appended) and the replacement round.

        No budget enforcement here: senders respected the CONGEST cap
        at drain time; duplication and delay are *adversary* actions,
        and their pile-ups at delivery are the adversary's, not the
        program's.
        """
        kinds: dict[str, BulkKindInbox] = {}
        receivers_by_kind: dict[str, np.ndarray] = {}
        row_bits_by_kind: dict[str, np.ndarray] = {}
        for kind, batch in self._kinds.items():
            receivers = self._receivers[kind]
            new_mult = runtime.filter_bulk(
                round_number,
                kind,
                batch.senders,
                receivers,
                batch.fields,
                batch.multiplicity,
            )
            keep = new_mult > 0
            if keep.any():
                kinds[kind] = BulkKindInbox(
                    senders=batch.senders[keep],
                    fields=batch.fields[keep],
                    multiplicity=new_mult[keep],
                )
                receivers_by_kind[kind] = receivers[keep]
                row_bits_by_kind[kind] = self._row_bits[kind][keep]
        matured_messages, matured_bulk = runtime.take_delayed(round_number)
        for kind, rows in matured_bulk.items():
            senders = np.array([r[0] for r in rows], dtype=np.int64)
            receivers = np.array([r[1] for r in rows], dtype=np.int64)
            fields = np.array([r[2] for r in rows], dtype=np.int64)
            if fields.ndim == 1:  # all-empty payloads
                fields = fields.reshape(len(rows), 0)
            multiplicity = np.array([r[3] for r in rows], dtype=np.int64)
            row_bits = TAG_BITS + int_bits_array(fields).sum(axis=1)
            if kind in kinds:
                old = kinds[kind]
                kinds[kind] = BulkKindInbox(
                    senders=np.concatenate((old.senders, senders)),
                    fields=np.concatenate((old.fields, fields)),
                    multiplicity=np.concatenate(
                        (old.multiplicity, multiplicity)
                    ),
                )
                receivers_by_kind[kind] = np.concatenate(
                    (receivers_by_kind[kind], receivers)
                )
                row_bits_by_kind[kind] = np.concatenate(
                    (row_bits_by_kind[kind], row_bits)
                )
            else:
                kinds[kind] = BulkKindInbox(
                    senders=senders,
                    fields=fields,
                    multiplicity=multiplicity,
                )
                receivers_by_kind[kind] = receivers
                row_bits_by_kind[kind] = row_bits
        control = control_messages + matured_messages
        traffic = _delivered_traffic(
            kinds, receivers_by_kind, row_bits_by_kind, control, n
        )
        return control, BulkRound(
            kinds, receivers_by_kind, row_bits_by_kind, traffic
        )

    def trace_into(self, tracer, round_number: int) -> None:
        """Emit one ``deliver`` trace event per materialized message of
        this round's bulk traffic - the same ``(round, receiver,
        "deliver", kind, sender)`` tuples the per-message loop records,
        with multiplicity expanded.  Called by the fast path before any
        driver claims traffic, so claimed kinds are traced too.  Event
        *order* differs from the slow loop (kind-major here, delivery
        order there); equivalence tests compare sorted streams."""
        for kind, batch in self._kinds.items():
            receivers = self._receivers[kind]
            senders = batch.senders
            multiplicity = batch.multiplicity
            for i in range(len(receivers)):
                receiver = int(receivers[i])
                sender = int(senders[i])
                for _ in range(int(multiplicity[i])):
                    tracer.record(
                        round_number, receiver, "deliver", kind, sender
                    )

    def group_by_receiver(self) -> dict[int, BulkInbox]:
        """Split the round's traffic into per-node bulk inboxes."""
        inboxes: dict[int, BulkInbox] = {}
        for kind, batch in self._kinds.items():
            receivers = self._receivers[kind]
            order = np.argsort(receivers, kind="stable")
            sorted_receivers = receivers[order]
            boundaries = np.nonzero(
                sorted_receivers[1:] != sorted_receivers[:-1]
            )[0]
            starts = np.concatenate(([0], boundaries + 1))
            ends = np.concatenate((boundaries + 1, [len(sorted_receivers)]))
            for start, end in zip(starts, ends):
                node = int(sorted_receivers[start])
                rows = order[start:end]
                inboxes.setdefault(node, {})[kind] = BulkKindInbox(
                    senders=batch.senders[rows],
                    fields=batch.fields[rows],
                    multiplicity=batch.multiplicity[rows],
                )
        return inboxes


def _delivered_traffic(
    kinds: dict[str, BulkKindInbox],
    receivers_by_kind: dict[str, np.ndarray],
    row_bits_by_kind: dict[str, np.ndarray],
    control_messages: list[Message],
    n: int,
) -> RoundTraffic:
    """Accounting of one (post-fault) delivered round, no enforcement."""
    edge_codes_parts: list[np.ndarray] = []
    edge_messages_parts: list[np.ndarray] = []
    edge_bits_parts: list[np.ndarray] = []
    total_messages = 0
    total_bits = 0
    max_message_bits = 0
    for kind, batch in kinds.items():
        receivers = receivers_by_kind[kind]
        row_bits = row_bits_by_kind[kind]
        edge_codes_parts.append(batch.senders * n + receivers)
        edge_messages_parts.append(batch.multiplicity)
        edge_bits_parts.append(batch.multiplicity * row_bits)
        total_messages += int(batch.multiplicity.sum())
        total_bits += int((batch.multiplicity * row_bits).sum())
        max_message_bits = max(max_message_bits, int(row_bits.max()))
    if control_messages:
        codes = np.array(
            [m.sender * n + m.receiver for m in control_messages],
            dtype=np.int64,
        )
        bits = np.array([m.bits for m in control_messages], dtype=np.int64)
        edge_codes_parts.append(codes)
        edge_messages_parts.append(np.ones(len(codes), dtype=np.int64))
        edge_bits_parts.append(bits)
        total_messages += len(control_messages)
        total_bits += int(bits.sum())
        max_message_bits = max(max_message_bits, int(bits.max()))
    if not edge_codes_parts:
        return RoundTraffic()
    codes = np.concatenate(edge_codes_parts)
    _, inverse = np.unique(codes, return_inverse=True)
    edge_messages = np.bincount(
        inverse, weights=np.concatenate(edge_messages_parts)
    )
    edge_bits = np.bincount(inverse, weights=np.concatenate(edge_bits_parts))
    return RoundTraffic(
        total_messages=total_messages,
        total_bits=total_bits,
        max_edge_messages=int(edge_messages.max()),
        max_edge_bits=int(edge_bits.max()),
        max_message_bits=max_message_bits,
        edge_messages=edge_messages.astype(np.int64),
        edge_bits=edge_bits.astype(np.int64),
    )


_EMPTY_ROUND = BulkRound({}, {}, {}, RoundTraffic())


class BulkOutbox:
    """Fast-path counterpart of :class:`RoundOutbox`.

    Programs push whole arrays of counted messages; limits are checked
    vectorized - the per-message bit budget at push time, the per-edge
    message budget at :meth:`drain` (jointly with the round's control
    messages, since both share each edge's capacity).  The charged
    quantities are exactly those of the materialized messages: same
    per-field integer bit costs, same per-edge counts.
    """

    def __init__(self, policy: BandwidthPolicy) -> None:
        self._policy = policy
        self._batches: dict[str, _KindBatch] = {}

    def push(
        self,
        sender: int,
        kind: str,
        receivers: np.ndarray,
        fields: np.ndarray,
        multiplicity: np.ndarray | None = None,
    ) -> None:
        """Queue one node's same-kind aggregate sends for this round."""
        if len(receivers) == 0:
            return
        self.push_rows(
            kind,
            np.full(len(receivers), sender, dtype=np.int64),
            receivers,
            fields,
            multiplicity,
        )

    def push_rows(
        self,
        kind: str,
        senders: np.ndarray,
        receivers: np.ndarray,
        fields: np.ndarray,
        multiplicity: np.ndarray | None = None,
    ) -> None:
        """Queue aggregate sends from *many* senders at once (row ``i``
        travels ``senders[i] -> receivers[i]``).  This is how a fast-path
        driver ships one whole round of network traffic in a single
        call."""
        if len(receivers) == 0:
            return
        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        fields = np.asarray(fields, dtype=np.int64)
        if fields.ndim != 2 or fields.shape[0] != len(receivers):
            raise ConfigError(
                "bulk fields must be (len(receivers), f), got "
                f"{fields.shape} for {len(receivers)} receivers"
            )
        if multiplicity is None:
            multiplicity = np.ones(len(receivers), dtype=np.int64)
        else:
            multiplicity = np.asarray(multiplicity, dtype=np.int64)
        row_bits = TAG_BITS + int_bits_array(fields).sum(axis=1)
        limit = self._policy.bits_per_message
        if (row_bits > limit).any():
            worst = int(np.argmax(row_bits))
            raise CongestViolation(
                f"bulk {kind!r} message from node {int(senders[worst])} is "
                f"{int(row_bits[worst])} bits, exceeding the per-message "
                f"budget of {limit} bits"
            )
        batch = self._batches.setdefault(kind, _KindBatch())
        batch.senders.append(senders)
        batch.receivers.append(receivers)
        batch.fields.append(fields)
        batch.multiplicity.append(multiplicity)
        batch.row_bits.append(row_bits)

    def drain(self, n: int, control_messages: list[Message]) -> BulkRound:
        """Close the round: merge accounting with the round's control
        messages, enforce the shared per-edge budget, and hand back the
        in-flight :class:`BulkRound`."""
        batches, self._batches = self._batches, {}
        if not batches and not control_messages:
            return _EMPTY_ROUND
        kinds: dict[str, BulkKindInbox] = {}
        receivers_by_kind: dict[str, np.ndarray] = {}
        row_bits_by_kind: dict[str, np.ndarray] = {}
        edge_codes_parts: list[np.ndarray] = []
        edge_messages_parts: list[np.ndarray] = []
        edge_bits_parts: list[np.ndarray] = []
        total_messages = 0
        total_bits = 0
        max_message_bits = 0
        for kind, batch in batches.items():
            senders = np.concatenate(batch.senders)
            receivers = np.concatenate(batch.receivers)
            fields = np.concatenate(batch.fields)
            multiplicity = np.concatenate(batch.multiplicity)
            row_bits = np.concatenate(batch.row_bits)
            kinds[kind] = BulkKindInbox(
                senders=senders, fields=fields, multiplicity=multiplicity
            )
            receivers_by_kind[kind] = receivers
            row_bits_by_kind[kind] = row_bits
            edge_codes_parts.append(senders * n + receivers)
            edge_messages_parts.append(multiplicity)
            edge_bits_parts.append(multiplicity * row_bits)
            total_messages += int(multiplicity.sum())
            total_bits += int((multiplicity * row_bits).sum())
            max_message_bits = max(max_message_bits, int(row_bits.max()))
        if control_messages:
            codes = np.array(
                [m.sender * n + m.receiver for m in control_messages],
                dtype=np.int64,
            )
            bits = np.array(
                [m.bits for m in control_messages], dtype=np.int64
            )
            edge_codes_parts.append(codes)
            edge_messages_parts.append(np.ones(len(codes), dtype=np.int64))
            edge_bits_parts.append(bits)
            total_messages += len(control_messages)
            total_bits += int(bits.sum())
            max_message_bits = max(max_message_bits, int(bits.max()))
        codes = np.concatenate(edge_codes_parts)
        _, inverse = np.unique(codes, return_inverse=True)
        edge_messages = np.bincount(
            inverse, weights=np.concatenate(edge_messages_parts)
        )
        edge_bits = np.bincount(
            inverse, weights=np.concatenate(edge_bits_parts)
        )
        max_edge_messages = int(edge_messages.max())
        if max_edge_messages > self._policy.messages_per_edge:
            over = int(codes[np.argmax(edge_messages[inverse])])
            raise CongestViolation(
                f"edge ({over // n} -> {over % n}) carries "
                f"{max_edge_messages} messages this round "
                f"(limit {self._policy.messages_per_edge})"
            )
        traffic = RoundTraffic(
            total_messages=total_messages,
            total_bits=total_bits,
            max_edge_messages=max_edge_messages,
            max_edge_bits=int(edge_bits.max()),
            max_message_bits=max_message_bits,
            edge_messages=edge_messages.astype(np.int64),
            edge_bits=edge_bits.astype(np.int64),
        )
        return BulkRound(kinds, receivers_by_kind, row_bits_by_kind, traffic)
