"""Bandwidth-enforcing transport between nodes.

The transport collects the messages queued during one round and delivers
them at the start of the next, enforcing the CONGEST limits:

* every single message must fit in ``bits_per_message`` bits, and
* at most ``messages_per_edge`` messages may use one directed edge per
  round.

Violations raise :class:`~repro.congest.errors.CongestViolation`
immediately at send time, attributing the bug to the offending program
rather than silently dropping traffic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.congest.errors import CongestViolation, ConfigError
from repro.congest.message import Message


@dataclass(frozen=True)
class BandwidthPolicy:
    """The model constants of one simulation.

    Attributes
    ----------
    n:
        Network size; the ``log n`` in the model's ``O(log n)`` budget.
    log_factor:
        ``c`` in the per-message budget ``c * ceil(log2 n)`` bits.
    messages_per_edge:
        Maximum messages per directed edge per round (the model's "constant
        number of messages").
    """

    n: int
    log_factor: int = 8
    messages_per_edge: int = 4

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ConfigError("BandwidthPolicy requires n >= 1")
        if self.log_factor < 1:
            raise ConfigError("BandwidthPolicy requires log_factor >= 1")
        if self.messages_per_edge < 1:
            raise ConfigError("BandwidthPolicy requires messages_per_edge >= 1")

    @property
    def bits_per_message(self) -> int:
        """The ``O(log n)`` per-message budget.

        The floor of 48 bits keeps small-n simulations workable: leader
        ranks span ``[0, n^3)`` (3 log n bits) and ride with an id and a
        distance, which exceeds ``8 log2 n`` for n < ~10.  The floor is a
        constant, so the asymptotic budget is unchanged.
        """
        return max(48, self.log_factor * math.ceil(math.log2(max(2, self.n))))


class RoundOutbox:
    """Accumulates one round's outgoing messages under the bandwidth policy."""

    def __init__(self, policy: BandwidthPolicy) -> None:
        self._policy = policy
        self._messages: list[Message] = []
        self._edge_counts: dict[tuple[int, int], int] = {}

    def push(self, message: Message) -> None:
        """Accept a message or raise :class:`CongestViolation`."""
        limit = self._policy.bits_per_message
        if message.bits > limit:
            raise CongestViolation(
                f"message {message!r} is {message.bits} bits, exceeding the "
                f"per-message budget of {limit} bits"
            )
        edge = (message.sender, message.receiver)
        used = self._edge_counts.get(edge, 0)
        if used >= self._policy.messages_per_edge:
            raise CongestViolation(
                f"edge {edge} already carries {used} messages this round "
                f"(limit {self._policy.messages_per_edge})"
            )
        self._edge_counts[edge] = used + 1
        self._messages.append(message)

    def edge_load(self, sender: int, receiver: int) -> int:
        """Messages queued on one directed edge this round (for programs
        that self-limit their sends, e.g. the walk counting phase)."""
        return self._edge_counts.get((sender, receiver), 0)

    def drain(self) -> list[Message]:
        """Remove and return all queued messages."""
        messages = self._messages
        self._messages = []
        self._edge_counts = {}
        return messages

    def __len__(self) -> int:
        return len(self._messages)
