"""Exception hierarchy for the CONGEST simulator.

Every simulator failure derives from :class:`SimulatorError`, which
carries an optional structured ``context`` dict alongside the human
message.  Context keys are plain JSON-able values (edge tuples, round
numbers, virtual times, retransmit counts) so that test harnesses and
CLI wrappers can assert on *what* failed without parsing message
strings; both the synchronous scheduler and the asynchronous executor
populate them the same way.  :class:`RoundLimitExceeded` additionally
carries the partial ``metrics`` of the failed run, so a stalled faulty
simulation stays diagnosable.
"""

from __future__ import annotations


class SimulatorError(RuntimeError):
    """Base class for all simulator failures.

    Parameters
    ----------
    message:
        Human-readable description (the exception ``str``).
    context:
        Optional structured details; stored as :attr:`context` (always a
        dict, empty when not provided).
    """

    def __init__(self, message: str = "", *, context: dict | None = None):
        super().__init__(message)
        self.context: dict = dict(context) if context else {}


class ConfigError(SimulatorError):
    """Invalid simulator configuration."""


class CongestViolation(SimulatorError):
    """A node program exceeded the CONGEST bandwidth constraints.

    Raised when a single message is wider than the per-message bit budget,
    or when a node sends more messages over one edge in one round than the
    configured per-edge capacity.  This is a *program* bug by definition:
    CONGEST algorithms must be written to respect the model.
    """


class RoundLimitExceeded(SimulatorError):
    """The simulation did not terminate within ``max_rounds``.

    :attr:`metrics` carries the partial run metrics when the raising
    executor has them (``RunMetrics`` for the synchronous loops,
    ``AsyncMetrics`` for the asynchronous executor); ``None`` otherwise.
    """

    def __init__(
        self,
        message: str = "",
        *,
        context: dict | None = None,
        metrics=None,
    ):
        super().__init__(message, context=context)
        self.metrics = metrics


class ProtocolError(SimulatorError):
    """A node program reached an inconsistent internal state."""


class ShardExecutionError(SimulatorError):
    """A sharded-executor worker process failed.

    Raised in the parent when a shard worker dies (its pipe hits EOF)
    or reports an exception; ``context`` carries the shard index and,
    when the worker could still speak, the remote traceback text.  The
    scheduler's cleanup path reaps the remaining workers, so the error
    surfaces structured and immediately instead of as a hang.
    """


class FaultInjectionError(ConfigError):
    """An invalid fault-injection configuration (``FaultPlan``).

    Subclasses :class:`ConfigError`: a bad fault plan *is* a bad
    simulator configuration (e.g. ``drop_rate`` outside ``[0, 1)``),
    and callers catching ``ConfigError`` keep working unchanged.
    """


class UnrecoverableLossError(RoundLimitExceeded):
    """The run exhausted its progress budget while fault injection was
    active.

    Under an adversarial enough :class:`~repro.congest.faults.FaultPlan`
    (e.g. a crash-stop node that never recovers, or loss beyond what
    the recovery layer was budgeted for) the protocol cannot complete;
    the simulator fails *loudly* with this error rather than returning
    a silently wrong answer.  Subclasses :class:`RoundLimitExceeded`
    because that is what the non-terminating run observably is.  The
    synchronous loops raise it at ``max_rounds``; the asynchronous
    executor also raises it when one message exhausts its retransmit
    budget, with ``context`` naming the edge, virtual time, and
    retransmit count.
    """
