"""Exception hierarchy for the CONGEST simulator."""

from __future__ import annotations


class SimulatorError(RuntimeError):
    """Base class for all simulator failures."""


class ConfigError(SimulatorError):
    """Invalid simulator configuration."""


class CongestViolation(SimulatorError):
    """A node program exceeded the CONGEST bandwidth constraints.

    Raised when a single message is wider than the per-message bit budget,
    or when a node sends more messages over one edge in one round than the
    configured per-edge capacity.  This is a *program* bug by definition:
    CONGEST algorithms must be written to respect the model.
    """


class RoundLimitExceeded(SimulatorError):
    """The simulation did not terminate within ``max_rounds``."""


class ProtocolError(SimulatorError):
    """A node program reached an inconsistent internal state."""


class FaultInjectionError(ConfigError):
    """An invalid fault-injection configuration (``FaultPlan``).

    Subclasses :class:`ConfigError`: a bad fault plan *is* a bad
    simulator configuration (e.g. ``drop_rate`` outside ``[0, 1)``),
    and callers catching ``ConfigError`` keep working unchanged.
    """


class UnrecoverableLossError(RoundLimitExceeded):
    """The run hit ``max_rounds`` while fault injection was active.

    Under an adversarial enough :class:`~repro.congest.faults.FaultPlan`
    (e.g. a crash-stop node that never recovers, or loss beyond what
    the recovery layer was budgeted for) the protocol cannot complete;
    the simulator fails *loudly* with this error rather than returning
    a silently wrong answer.  Subclasses :class:`RoundLimitExceeded`
    because that is what the non-terminating run observably is.
    """
