"""Exception hierarchy for the CONGEST simulator."""

from __future__ import annotations


class SimulatorError(RuntimeError):
    """Base class for all simulator failures."""


class ConfigError(SimulatorError):
    """Invalid simulator configuration."""


class CongestViolation(SimulatorError):
    """A node program exceeded the CONGEST bandwidth constraints.

    Raised when a single message is wider than the per-message bit budget,
    or when a node sends more messages over one edge in one round than the
    configured per-edge capacity.  This is a *program* bug by definition:
    CONGEST algorithms must be written to respect the model.
    """


class RoundLimitExceeded(SimulatorError):
    """The simulation did not terminate within ``max_rounds``."""


class ProtocolError(SimulatorError):
    """A node program reached an inconsistent internal state."""
