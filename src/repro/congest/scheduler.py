"""The synchronous round scheduler: the heart of the CONGEST simulator.

Execution model (section III-A of the paper):

* time advances in discrete rounds;
* a message sent in round ``r`` is delivered at the start of round
  ``r + 1``;
* per round, each directed edge carries at most a constant number of
  messages of ``O(log n)`` bits each (enforced by the transport).

The simulation ends when every node program has halted and no messages
are in flight, or fails with :class:`RoundLimitExceeded`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np

from repro.congest.errors import (
    ConfigError,
    FaultInjectionError,
    RoundLimitExceeded,
    UnrecoverableLossError,
)
from repro.congest.faults import FaultPlan, FaultRuntime
from repro.congest.message import Message
from repro.congest.metrics import RunMetrics
from repro.congest.node import (
    BulkRoundContext,
    NodeInfo,
    NodeProgram,
    RoundContext,
    SharedFastPathState,
    VectorizedProgram,
)
from repro.congest.trace import NullTracer, Tracer
from repro.congest.transport import BandwidthPolicy, BulkOutbox, RoundOutbox
from repro.graphs.graph import Graph
from repro.graphs.properties import is_connected
from repro.obs.spans import NULL_PROFILER

ProgramFactory = Callable[[NodeInfo, np.random.Generator], NodeProgram]


@dataclass
class SimulationResult:
    """Everything observable after a run."""

    programs: Mapping[int, NodeProgram]
    metrics: RunMetrics
    tracer: Tracer | NullTracer
    message_log: list[list[Message]] = field(default_factory=list)
    # True when the run used the vectorized fast path (aggregate per-edge
    # exchange instead of per-message dispatch).
    fast_path: bool = False
    # Why the fast path was not used (empty on fast-path runs): the
    # human-readable reasons from eligibility selection, so callers can
    # tell an intentional slow-path run from a silent degradation.
    fallback_reasons: tuple[str, ...] = ()

    def program(self, node_id: int) -> NodeProgram:
        return self.programs[node_id]


class Simulator:
    """Drives one distributed algorithm over one graph.

    Parameters
    ----------
    graph:
        The communication topology.  Node labels must be integers (real
        CONGEST identifiers are ``O(log n)``-bit strings; ints model that
        directly).  Use :meth:`Graph.relabeled` for other label types.
    program_factory:
        Callable building a :class:`NodeProgram` from ``(NodeInfo, rng)``.
    policy:
        Bandwidth constants; defaults to ``BandwidthPolicy(n=graph.n)``.
    seed:
        Master seed; each node gets an independent child generator, so
        runs are reproducible and node randomness is private (public
        randomness would change the lower-bound setting).
    max_rounds:
        Safety limit; exceeding it raises :class:`RoundLimitExceeded`.
    record_messages:
        Keep the full per-round message log (needed for cut-bit counting
        in the lower-bound experiments; memory-heavy otherwise).
    tracer:
        Optional :class:`Tracer` for debugging.  Both execution loops
        emit the same ``deliver`` events (the fast path expands its
        aggregate rows into per-message events at delivery time), so a
        tracer no longer forces per-message dispatch; event *order*
        within a round may differ between loops.
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  When set, the run
        records phase/kernel wall-clock spans, a per-round wall series,
        and instrument histograms (per-edge bits/messages, plus ARQ and
        fault counters when those layers are active).  Telemetry is
        observation-only: it never affects protocol decisions, round
        counts, randomness, or fast-path eligibility, so telemetry-on
        and telemetry-off runs are byte-identical (pinned by
        ``tests/test_obs_neutrality.py``).
    require_connected:
        Reject disconnected topologies up front (random walk betweenness
        is undefined across components).
    drop_rate:
        Probability that any individual message is silently lost in
        transit - shorthand for ``faults=FaultPlan.from_drop_rate(...)``
        with a seed derived from the simulator seed.  The CONGEST model
        assumes reliable synchronous channels; protocols not written
        for loss fail *detectably* under this knob (e.g. lost walk
        tokens stall the termination detector, surfacing as
        :class:`UnrecoverableLossError` at the round limit) rather than
        silently wrong.
    faults:
        A full :class:`~repro.congest.faults.FaultPlan` - seeded
        per-edge drop/duplicate/delay schedules and per-node crash
        windows.  Applied identically by both execution loops at
        delivery time; injected-fault counts land in
        ``metrics.faults``.  Mutually exclusive with ``drop_rate``.
    vectorized:
        Fast-path selection.  ``None`` (default) auto-selects: the
        vectorized loop runs when every program is a
        :class:`VectorizedProgram` and nothing demands per-message
        fidelity (``record_messages`` forces the per-message loop;
        tracers, telemetry, and fault injection do *not* - the fast
        path emits the same trace events and applies the same seeded
        fault schedule on its aggregate arrays).
        ``False`` always runs the per-message loop; ``True`` requires
        the fast path and raises :class:`ConfigError` when it is
        unavailable.  Both loops produce identical results for the same
        seed and fault plan (tested equivalence, see
        ``tests/test_walks_batched.py`` and
        ``tests/test_failure_injection.py``).
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: ProgramFactory,
        policy: BandwidthPolicy | None = None,
        seed: int | None = None,
        max_rounds: int = 1_000_000,
        record_messages: bool = False,
        tracer: Tracer | None = None,
        require_connected: bool = True,
        drop_rate: float = 0.0,
        faults: FaultPlan | None = None,
        vectorized: bool | None = None,
        telemetry=None,
        num_shards: int | None = None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ConfigError("cannot simulate the empty graph")
        for node in graph.nodes():
            if not isinstance(node, int) or isinstance(node, bool):
                raise ConfigError(
                    f"node labels must be ints, got {node!r}; "
                    "use Graph.relabeled() first"
                )
        if require_connected and not is_connected(graph):
            raise ConfigError("graph must be connected")
        if max_rounds < 1:
            raise ConfigError("max_rounds must be >= 1")
        if num_shards is not None:
            if num_shards < 1:
                raise ConfigError("num_shards must be >= 1")
            if vectorized is False:
                raise ConfigError(
                    "num_shards requires the vectorized fast path "
                    "(vectorized=False was requested)"
                )
            if record_messages:
                raise ConfigError(
                    "num_shards requires the vectorized fast path, which "
                    "record_messages disables"
                )
        if drop_rate and faults is not None:
            raise ConfigError(
                "pass either drop_rate (shorthand) or faults (full plan), "
                "not both"
            )
        if faults is None:
            # Validates the rate (FaultInjectionError is a ConfigError).
            # The plan seed derives from the simulator seed so that, as
            # with the old bare-float knob, reseeding the run reseeds
            # the losses.
            plan_seed = 0xD509 if seed is None else (seed ^ 0xD509)
            faults = FaultPlan.from_drop_rate(drop_rate, seed=plan_seed)
        for window in faults.crashes:
            if not graph.has_node(window.node):
                raise FaultInjectionError(
                    f"crash window names node {window.node}, which is not "
                    "in the graph"
                )
        self.faults = faults
        self.drop_rate = drop_rate
        self.graph = graph
        self.policy = policy or BandwidthPolicy(n=graph.num_nodes)
        self.max_rounds = max_rounds
        self.record_messages = record_messages
        # Explicit None check: an empty Tracer is falsy (it has __len__).
        self.tracer = tracer if tracer is not None else NullTracer()
        self._seed = seed
        self._factory = program_factory
        self.vectorized = vectorized
        self.num_shards = num_shards
        self.telemetry = telemetry
        self._profiler = (
            telemetry.profiler if telemetry is not None else NULL_PROFILER
        )
        self._instruments = (
            telemetry.instruments if telemetry is not None else None
        )

    def _build_programs(self) -> dict[int, NodeProgram]:
        master = np.random.default_rng(self._seed)
        # One child generator per node, in canonical order, so results do
        # not depend on Python dict iteration order.
        order = self.graph.canonical_order()
        children = master.spawn(len(order))
        programs: dict[int, NodeProgram] = {}
        for node, rng in zip(order, children):
            info = NodeInfo(
                node_id=node,
                neighbors=tuple(sorted(self.graph.neighbors(node))),
                n=self.graph.num_nodes,
            )
            programs[node] = self._factory(info, rng)
        return programs

    def _bulk_reasons_against(self, programs: dict[int, NodeProgram]):
        """Why the fast path cannot run (empty list = eligible)."""
        reasons = []
        if not all(
            isinstance(p, VectorizedProgram) for p in programs.values()
        ):
            reasons.append("not every program is a VectorizedProgram")
        if self.record_messages:
            reasons.append("record_messages needs materialized messages")
        # Neither tracers, telemetry, nor fault injection appear here:
        # the fast path expands its aggregate rows into the same
        # ``deliver`` trace events, records the same spans/instruments,
        # and applies the same seeded FaultPlan (see FaultRuntime), so
        # observed and faulty runs keep the speedup.
        return reasons

    def run(self) -> SimulationResult:
        """Execute rounds until global termination.

        Returns
        -------
        SimulationResult
            Final programs (read their attributes for outputs), metrics,
            and optionally the full message log.

        Raises
        ------
        RoundLimitExceeded
            If termination is not reached within ``max_rounds``.
        """
        programs = self._build_programs()
        if self.vectorized is False:
            fallback_reasons = ("vectorized=False requested",)
        else:
            reasons = self._bulk_reasons_against(programs)
            if not reasons:
                return self._run_bulk(programs)
            if self.vectorized is True or self.num_shards is not None:
                requirement = (
                    "vectorized=True"
                    if self.vectorized is True
                    else "num_shards"
                )
                raise ConfigError(
                    f"{requirement} but the fast path is unavailable: "
                    + "; ".join(reasons)
                )
            fallback_reasons = tuple(reasons)
        metrics = RunMetrics(instruments=self._instruments)
        profiler = self._profiler
        message_log: list[list[Message]] = []
        outbox = RoundOutbox(self.policy)
        order = self.graph.canonical_order()
        fault_rt = None if self.faults.is_trivial else FaultRuntime(self.faults)

        # Round 0: on_start, no deliveries.
        for node in order:
            ctx = RoundContext(
                node, programs[node].neighbors, outbox, round_number=0
            )
            programs[node].on_start(ctx)

        in_flight = outbox.drain()
        round_number = 0
        while True:
            all_halted = all(p.halted for p in programs.values())
            pending_delayed = (
                fault_rt is not None and fault_rt.has_pending_delayed
            )
            if all_halted and not in_flight and not pending_delayed:
                break
            round_number += 1
            profiler.round_tick(round_number)
            if round_number > self.max_rounds:
                error_cls = (
                    UnrecoverableLossError
                    if fault_rt is not None
                    else RoundLimitExceeded
                )
                raise error_cls(
                    f"no termination after {self.max_rounds} rounds "
                    f"({sum(p.halted for p in programs.values())}/"
                    f"{len(programs)} nodes halted, "
                    f"{len(in_flight)} messages in flight)",
                    context={
                        "round": round_number,
                        "max_rounds": self.max_rounds,
                        "halted": sum(
                            p.halted for p in programs.values()
                        ),
                        "nodes": len(programs),
                        "in_flight": len(in_flight),
                        "faults": (
                            fault_rt.counters.summary()
                            if fault_rt is not None
                            else None
                        ),
                    },
                    metrics=metrics,
                )
            # Deliver last round's messages through the fault plan.
            crashed_now: frozenset[int] = frozenset()
            if fault_rt is not None:
                with profiler.span("faults.filter"):
                    crashed_now = fault_rt.crashed(round_number)
                    fault_rt.note_crash_rounds(len(crashed_now))
                    fault_rt.begin_round(round_number)
                    in_flight = fault_rt.filter_messages(
                        round_number, in_flight
                    )
                    matured, _ = fault_rt.take_delayed(round_number)
                    in_flight = in_flight + matured
                if self._instruments is not None:
                    self._instruments.record_fault_counters(
                        round_number, fault_rt.counters.snapshot()
                    )
            with profiler.span("deliver"):
                inboxes: dict[int, list[Message]] = {
                    node: [] for node in order
                }
                for message in in_flight:
                    inboxes[message.receiver].append(message)
                    self.tracer.record(
                        round_number,
                        message.receiver,
                        "deliver",
                        message.kind,
                        message.sender,
                    )
                metrics.record_round(in_flight)
            if self.record_messages:
                message_log.append(in_flight)
            # Every node acts each round; receiving mail un-halts a node.
            with profiler.span("nodes"):
                for node in order:
                    if node in crashed_now:
                        continue  # down: executes nothing, sends nothing
                    program = programs[node]
                    inbox = inboxes[node]
                    if program.halted and not inbox:
                        continue
                    if program.halted and inbox:
                        program.unhalt()
                    ctx = RoundContext(
                        node, program.neighbors, outbox, round_number
                    )
                    program.on_round(ctx, inbox)
            in_flight = outbox.drain()

        profiler.run_finished()
        if fault_rt is not None:
            metrics.faults = fault_rt.counters.summary()
        return SimulationResult(
            programs=programs,
            metrics=metrics,
            tracer=self.tracer,
            message_log=message_log,
            fallback_reasons=fallback_reasons,
        )

    def _run_bulk(
        self, programs: dict[int, NodeProgram]
    ) -> SimulationResult:
        """The vectorized fast path.

        Identical round structure to :meth:`run`, but heavy traffic
        moves as aggregate per-edge counts (:class:`BulkOutbox`) and
        idle nodes are skipped outright (safe by the
        :class:`VectorizedProgram` ``bulk_idle`` contract).  Control
        messages still travel as ordinary :class:`Message` objects, so
        phases that need per-message semantics (leader election, the
        termination convergecast) are untouched.  Cooperating programs
        may additionally register cross-node *drivers* through
        ``ctx.shared`` (see :class:`SharedFastPathState`): a driver
        claims whole message kinds and processes them network-wide once
        per round instead of node by node.  Bandwidth limits are
        enforced on the merged control + bulk load of every edge, and
        :class:`RunMetrics` receives exactly the numbers the per-message
        loop would have recorded.
        """
        n = self.graph.num_nodes
        metrics = RunMetrics(instruments=self._instruments)
        profiler = self._profiler
        outbox = RoundOutbox(self.policy)
        bulk_outbox = BulkOutbox(self.policy)
        order = self.graph.canonical_order()
        shared = SharedFastPathState()
        fault_rt = None if self.faults.is_trivial else FaultRuntime(self.faults)
        shared.fault_runtime = fault_rt
        shared.profiler = profiler
        shared.instruments = self._instruments
        shared.num_shards = self.num_shards
        # O(1) global-termination accounting: every halt/unhalt
        # transition bumps this counter through the program's halt sink,
        # so the loop never scans all n programs per round.
        halted_total = 0

        def _note_halt(delta: int) -> None:
            nonlocal halted_total
            halted_total += delta

        for program in programs.values():
            program._halt_sink = _note_halt
        # One context per node, reused across rounds (only the round
        # number changes); constructing ~n of these per round would be
        # measurable overhead at scale.
        contexts = {
            node: BulkRoundContext(
                node,
                programs[node].neighbors,
                outbox,
                0,
                bulk_outbox,
                np.array(programs[node].neighbors, dtype=np.int64),
                shared,
            )
            for node in order
        }
        claimed_kinds: dict[str, object] = {}  # kind -> claiming driver
        known_drivers = 0

        def refresh_claims() -> None:
            nonlocal known_drivers
            for driver in shared.drivers[known_drivers:]:
                for kind in getattr(driver, "claimed_kinds", ()):
                    if kind in claimed_kinds:
                        raise ConfigError(
                            "two fast-path drivers claim message kind "
                            f"{kind!r}"
                        )
                    claimed_kinds[kind] = driver
            known_drivers = len(shared.drivers)

        # Wake calendar: ``calendar[r]`` lists nodes that asked (via
        # ``next_wake``) to be stepped in round ``r`` even without mail;
        # ``wake_round`` is the authoritative per-node target so stale
        # calendar entries (superseded by an earlier wake) are skipped.
        calendar: dict[int, list[int]] = {}
        wake_round: dict[int, int] = {}

        def schedule_wake(node: int, target: int) -> None:
            current = wake_round.get(node)
            if current is not None and current <= target:
                return
            wake_round[node] = target
            calendar.setdefault(target, []).append(node)

        # Round 0: on_start, no deliveries.
        for node in order:
            programs[node].on_start(contexts[node])
            if not programs[node].halted:
                wake = programs[node].next_wake(0)
                if wake is not None:
                    schedule_wake(node, wake)
        refresh_claims()
        in_flight = outbox.drain()
        bulk_in_flight = bulk_outbox.drain(n, in_flight)

        round_number = 0
        try:
            while True:
                all_halted = halted_total == n
                pending_delayed = (
                    fault_rt is not None and fault_rt.has_pending_delayed
                )
                if (
                    all_halted
                    and not in_flight
                    and not bulk_in_flight
                    and not pending_delayed
                ):
                    break
                round_number += 1
                profiler.round_tick(round_number)
                if round_number > self.max_rounds:
                    error_cls = (
                        UnrecoverableLossError
                        if fault_rt is not None
                        else RoundLimitExceeded
                    )
                    raise error_cls(
                        f"no termination after {self.max_rounds} rounds "
                        f"({sum(p.halted for p in programs.values())}/"
                        f"{len(programs)} nodes halted, "
                        f"{len(in_flight) + bulk_in_flight.total_messages} "
                        "messages in flight)",
                        context={
                            "round": round_number,
                            "max_rounds": self.max_rounds,
                            "halted": sum(
                                p.halted for p in programs.values()
                            ),
                            "nodes": len(programs),
                            "in_flight": len(in_flight)
                            + bulk_in_flight.total_messages,
                            "faults": (
                                fault_rt.counters.summary()
                                if fault_rt is not None
                                else None
                            ),
                        },
                        metrics=metrics,
                    )
                crashed_now: frozenset[int] = frozenset()
                if fault_rt is not None:
                    with profiler.span("faults.filter"):
                        # Same application order as the per-message loop:
                        # control messages first, then bulk rows (indices
                        # continue across the two), then matured delayed
                        # traffic; the replacement traffic numbers reflect
                        # what was actually delivered.
                        crashed_now = fault_rt.crashed(round_number)
                        fault_rt.note_crash_rounds(len(crashed_now))
                        fault_rt.begin_round(round_number)
                        in_flight = fault_rt.filter_messages(
                            round_number, in_flight
                        )
                        in_flight, bulk_in_flight = bulk_in_flight.apply_faults(
                            fault_rt, round_number, n, in_flight
                        )
                    if self._instruments is not None:
                        self._instruments.record_fault_counters(
                            round_number, fault_rt.counters.snapshot()
                        )
                metrics.record_round_aggregate(bulk_in_flight.traffic)
                if not isinstance(self.tracer, NullTracer):
                    # Expand this round's deliveries into the same per-
                    # message trace events the slow loop records (order is
                    # kind-major rather than delivery order; equivalence
                    # tests compare sorted streams).  Done before the
                    # claimed-kind divert so driver traffic is traced too.
                    for message in in_flight:
                        self.tracer.record(
                            round_number,
                            message.receiver,
                            "deliver",
                            message.kind,
                            message.sender,
                        )
                    bulk_in_flight.trace_into(self.tracer, round_number)
                # Divert driver-claimed kinds before the per-receiver split;
                # the claiming driver gets them whole at end of round.
                claimed_traffic: dict[int, dict[str, tuple]] = {}
                if claimed_kinds and bulk_in_flight:
                    for kind, driver in claimed_kinds.items():
                        data = bulk_in_flight.take(kind)
                        if data is not None:
                            claimed_traffic.setdefault(id(driver), {})[
                                kind
                            ] = data
                with profiler.span("deliver"):
                    inboxes: dict[int, list[Message]] = {}
                    for message in in_flight:
                        inboxes.setdefault(message.receiver, []).append(message)
                    bulk_inboxes = bulk_in_flight.group_by_receiver()
                with profiler.span("nodes"):
                    # Step exactly the nodes with mail plus the ones whose
                    # wake round arrived; everything else provably has
                    # nothing to do this round (the ``next_wake`` /
                    # ``bulk_idle`` contract), so per-round cost tracks the
                    # active set instead of n.
                    step_set = set(inboxes)
                    step_set.update(bulk_inboxes)
                    for node in calendar.pop(round_number, ()):
                        if wake_round.get(node) == round_number:
                            del wake_round[node]
                            step_set.add(node)
                    for node in sorted(step_set):
                        if node in crashed_now:
                            # Down: executes nothing, sends nothing, loses
                            # this round's mail.  Re-arm so the node is
                            # re-examined right after it recovers, exactly
                            # like the historical every-round scan did.
                            schedule_wake(node, round_number + 1)
                            continue
                        program = programs[node]
                        inbox = inboxes.get(node)
                        bulk = bulk_inboxes.get(node)
                        has_mail = inbox is not None or bulk is not None
                        if program.halted:
                            if not has_mail:
                                continue
                            program.unhalt()
                        elif not has_mail and program.bulk_idle:
                            continue
                        ctx = contexts[node]
                        ctx.round_number = round_number
                        program.on_bulk_round(ctx, inbox or [], bulk)
                        if not program.halted:
                            wake = program.next_wake(round_number)
                            if wake is not None:
                                schedule_wake(node, wake)
                if known_drivers != len(shared.drivers):
                    refresh_claims()
                with profiler.span("drivers"):
                    for driver in shared.drivers:
                        driver.end_round(
                            round_number,
                            claimed_traffic.get(id(driver), {}),
                            outbox,
                            bulk_outbox,
                        )
                if shared.wake_requests:
                    for node, target in shared.wake_requests:
                        # A target at or before the current round means
                        # "as soon as possible": the next round.
                        schedule_wake(node, max(target, round_number + 1))
                    shared.wake_requests.clear()
                in_flight = outbox.drain()
                bulk_in_flight = bulk_outbox.drain(n, in_flight)

        finally:
            # Release driver-held resources (the sharded engine's
            # worker processes and shared memory) on every exit path,
            # success or error.
            for driver in shared.drivers:
                close = getattr(driver, "close", None)
                if close is not None:
                    close()

        profiler.run_finished()
        if fault_rt is not None:
            metrics.faults = fault_rt.counters.summary()
        return SimulationResult(
            programs=programs,
            metrics=metrics,
            tracer=self.tracer,
            fast_path=True,
        )


def run_program(
    graph: Graph,
    program_factory: ProgramFactory,
    seed: int | None = None,
    **kwargs,
) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(graph, program_factory, seed=seed, **kwargs).run()
