"""Message envelopes and bit-size accounting.

The CONGEST model constrains *bits per edge per round*, so the simulator
needs a concrete cost model for messages.  We charge:

* ``TAG_BITS`` for the message kind (a small protocol-constant alphabet),
* ``max(1, int.bit_length(abs(x))) + 1`` bits per integer field (the +1 is
  a sign bit; zero costs 2 bits).

Only integers are allowed as payload fields.  This is deliberate: the paper
(section V, challenge 2) observes that probabilities cannot be shipped
exactly in ``O(log n)`` bits, and the algorithm is designed so that every
transmitted quantity is an integer count bounded by ``poly(n)``.  Keeping
floats out of the transport makes that property structural rather than
aspirational.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.congest.errors import ProtocolError

TAG_BITS = 8


def int_bits(value: int) -> int:
    """Bit cost of one integer field (magnitude bits plus a sign bit)."""
    return max(1, abs(value).bit_length()) + 1


def int_bits_array(values: np.ndarray) -> np.ndarray:
    """Vectorized :func:`int_bits` over an integer array.

    ``np.frexp`` returns the binary exponent of each magnitude, which for
    positive integers below 2**53 equals ``int.bit_length`` exactly (the
    float64 mantissa is wide enough); zero maps to exponent 0 and is then
    floored to 1 magnitude bit, matching the scalar formula.
    """
    magnitudes = np.abs(np.asarray(values)).astype(np.float64)
    _, exponents = np.frexp(magnitudes)
    return np.maximum(1, exponents).astype(np.int64) + 1


def payload_bits(fields: tuple[int, ...]) -> int:
    """Total bit cost of a message payload, excluding the kind tag."""
    return sum(int_bits(value) for value in fields)


@dataclass(frozen=True, slots=True)
class Message:
    """One message on one directed edge in one round.

    Attributes
    ----------
    sender, receiver:
        Node identifiers of the directed edge endpoints.
    kind:
        Short protocol tag, e.g. ``"walk"`` or ``"bfs"``.
    fields:
        Integer payload.  Use node indices and counts, never floats.
    """

    sender: int
    receiver: int
    kind: str
    fields: tuple[int, ...] = field(default_factory=tuple)
    _bits: int = field(init=False, repr=False, compare=False, default=0)

    def __post_init__(self) -> None:
        # Bit size is charged on push and again by the traffic metrics,
        # so it is computed once here rather than per read.
        total = TAG_BITS
        for value in self.fields:
            if not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(
                    f"message field {value!r} is not an int; the transport "
                    "only carries integers (see module docstring)"
                )
            total += max(1, abs(value).bit_length()) + 1
        object.__setattr__(self, "_bits", total)

    @property
    def bits(self) -> int:
        """Total size charged against the edge's bandwidth."""
        return self._bits

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"Message({self.sender}->{self.receiver}, {self.kind!r}, "
            f"{self.fields}, {self.bits}b)"
        )
