"""Tree convergecast: aggregate a sum from the leaves to the root."""

from __future__ import annotations

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext

KIND_AGG = "agg"


class ConvergecastSumProgram(NodeProgram):
    """Sums one integer per node up a precomputed tree.

    A node sends ``local_value + sum(child reports)`` to its parent once
    every child has reported; leaves fire immediately.  Takes (tree
    height) rounds and one message per tree edge.

    Output: ``total`` at the root (None elsewhere).
    """

    def __init__(
        self,
        info: NodeInfo,
        rng: np.random.Generator,
        tree_children: dict[int, tuple[int, ...]],
        tree_parent: dict[int, int | None],
        local_value: int,
    ) -> None:
        super().__init__(info, rng)
        self.children = tree_children.get(info.node_id, ())
        self.parent = tree_parent.get(info.node_id)
        self.local_value = local_value
        self._pending = set(self.children)
        self._accumulated = local_value
        self._reported = False
        self.total: int | None = None

    def on_start(self, ctx: RoundContext) -> None:
        self._maybe_report(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind != KIND_AGG:
                continue
            (value,) = message.fields
            self._accumulated += value
            self._pending.discard(message.sender)
        self._maybe_report(ctx)

    def _maybe_report(self, ctx: RoundContext) -> None:
        if self._pending or self._reported:
            if self._reported:
                self.halt()
            return
        self._reported = True
        if self.parent is None:
            self.total = self._accumulated
        else:
            ctx.send(self.parent, KIND_AGG, self._accumulated)
        self.halt()
