"""Flood-max with simultaneous BFS: the shared setup logic.

Every node holds a candidate ``(rank, id, distance, parent)``.  Initially
the candidate is itself at distance 0.  Whenever a node learns of a
lexicographically larger ``(rank, id)`` - or the same leader at a shorter
distance - it adopts it and re-floods.  After ``D`` rounds the unique
maximum has reached everyone along shortest paths, so parents form a BFS
tree rooted at the leader; running for ``n >= D`` rounds guarantees
stabilization without knowing ``D``.

This module is *logic only* (no NodeProgram base) so both the standalone
primitives and the phased RWBC protocol can embed it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congest.message import Message
from repro.congest.node import RoundContext

KIND_FLOOD = "flood"
KIND_ADOPT = "adopt"


@dataclass
class FloodMaxState:
    """Stabilized result of the flood phase at one node."""

    leader_id: int
    leader_rank: int
    distance: int
    parent: int | None
    children: tuple[int, ...]

    @property
    def is_leader(self) -> bool:
        return self.parent is None


class FloodMaxBFS:
    """Embeddable flood-max + BFS-tree logic for one node.

    Usage pattern (driven by the owning program)::

        flood = FloodMaxBFS(node_id, rank)
        flood.start(ctx)                       # round 0
        for each round while not done:
            flood.step(ctx, inbox_messages)
        # after n flooding rounds:
        flood.announce_parent(ctx)             # one extra round
        # after one more round:
        state = flood.finish(inbox_messages)

    The three-stage dance keeps each stage a constant number of messages
    per edge: flooding messages carry ``(rank, id, distance)`` and the
    parent announcement carries nothing but its kind tag.
    """

    def __init__(self, node_id: int, rank: int) -> None:
        self.node_id = node_id
        self.rank = rank
        self.best_rank = rank
        self.best_id = node_id
        self.distance = 0
        self.parent: int | None = None
        self._needs_flood = True

    def _key(self) -> tuple[int, int]:
        return (self.best_rank, self.best_id)

    def start(self, ctx: RoundContext) -> None:
        """Send the initial flood wave."""
        self._flood(ctx)

    def step(self, ctx: RoundContext, messages: list[Message]) -> None:
        """Process one round of flood messages, re-flooding on improvement."""
        improved = False
        for message in messages:
            if message.kind != KIND_FLOOD:
                continue
            rank, leader_id, distance = message.fields
            candidate = (rank, leader_id)
            through = distance + 1
            if candidate > self._key() or (
                candidate == self._key() and through < self.distance
            ):
                self.best_rank = rank
                self.best_id = leader_id
                self.distance = through
                self.parent = message.sender
                improved = True
        if improved:
            self._flood(ctx)

    def _flood(self, ctx: RoundContext) -> None:
        ctx.broadcast(KIND_FLOOD, self.best_rank, self.best_id, self.distance)

    def announce_parent(self, ctx: RoundContext) -> None:
        """After stabilization, tell the parent it has a child."""
        if self.parent is not None:
            ctx.send(self.parent, KIND_ADOPT)

    def finish(self, messages: list[Message]) -> FloodMaxState:
        """Collect child announcements and freeze the final state."""
        children = tuple(
            sorted(m.sender for m in messages if m.kind == KIND_ADOPT)
        )
        return FloodMaxState(
            leader_id=self.best_id,
            leader_rank=self.best_rank,
            distance=self.distance,
            parent=self.parent,
            children=children,
        )
