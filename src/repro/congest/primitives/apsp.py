"""Pipelined all-pairs BFS and distributed diameter (CONGEST).

The paper's Theorem 7 machinery descends from Frischknecht, Holzer and
Wattenhofer's "networks cannot compute their diameter in sublinear time"
(their reference [20]); the matching *upper* bound is the classic
pipelined all-pairs BFS: run one BFS per source simultaneously, letting
each edge forward at most one new (source, distance) pair per round.
With FIFO queues this completes in ``O(n + D)`` rounds and each message
is one ``(source, distance)`` pair of ``O(log n)`` bits.

On top of APSP:

* every node knows its eccentricity locally, so a convergecast max gives
  the diameter in ``O(D)`` more rounds (here: read off the programs);
* closeness centrality ``(n - 1) / sum of distances`` is a local division.

This primitive both demonstrates the simulator at its most
congestion-sensitive and provides the ``D`` every complexity statement in
the paper is phrased with, computed distributively.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.graphs.graph import Graph, GraphError

KIND_APSP = "apsp"


class APSPProgram(NodeProgram):
    """One node of the pipelined all-pairs BFS.

    Every node starts a BFS for itself (distance 0) and forwards each
    *improved* (source, distance) pair to all neighbors, at most one
    pair per edge per round (FIFO per edge).  Nodes halt when their
    queues drain; arrival of a better pair un-halts them.

    Outputs: ``distances`` (source -> hop count), and the derived
    ``eccentricity`` / ``closeness`` properties.
    """

    def __init__(self, info: NodeInfo, rng: np.random.Generator) -> None:
        super().__init__(info, rng)
        self.distances: dict[int, int] = {info.node_id: 0}
        # One FIFO of source ids pending announcement, per neighbor.
        self._pending: dict[int, deque[int]] = {
            neighbor: deque() for neighbor in info.neighbors
        }

    def on_start(self, ctx: RoundContext) -> None:
        self._announce(self.node_id)
        self._flush(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind != KIND_APSP:
                continue
            source, distance = message.fields
            through = distance + 1
            if source not in self.distances or through < self.distances[source]:
                self.distances[source] = through
                self._announce(source)
        self._flush(ctx)

    def _announce(self, source: int) -> None:
        for queue in self._pending.values():
            queue.append(source)

    def _flush(self, ctx: RoundContext) -> None:
        active = False
        for neighbor, queue in self._pending.items():
            if queue:
                source = queue.popleft()
                ctx.send(neighbor, KIND_APSP, source, self.distances[source])
            if queue:
                active = True
        if not active:
            self.halt()

    # -- derived outputs -------------------------------------------------
    @property
    def eccentricity(self) -> int:
        """Max distance seen; valid once the run has terminated."""
        return max(self.distances.values())

    @property
    def closeness(self) -> float:
        """``(n - 1) / sum of distances`` (0 if nothing was reached)."""
        total = sum(self.distances.values())
        return (self.info.n - 1) / total if total else 0.0


def distributed_apsp(graph: Graph, seed: int | None = None):
    """Run pipelined APSP; returns (distances dict-of-dicts, rounds).

    Raises
    ------
    GraphError
        If the graph is disconnected (BFS waves never cover it and the
        distance tables would be partial).
    """
    from repro.congest.scheduler import run_program
    from repro.graphs.properties import is_connected

    if not is_connected(graph):
        raise GraphError("distributed APSP requires a connected graph")
    relabeled, mapping = graph.relabeled()
    inverse = {index: node for node, index in mapping.items()}
    result = run_program(relabeled, APSPProgram, seed=seed)
    distances = {
        inverse[index]: {
            inverse[source]: hops
            for source, hops in result.program(index).distances.items()
        }
        for index in range(relabeled.num_nodes)
    }
    return distances, result.metrics.rounds


def distributed_diameter(graph: Graph, seed: int | None = None) -> tuple[int, int]:
    """(diameter, rounds) via pipelined APSP + local eccentricities."""
    distances, rounds = distributed_apsp(graph, seed=seed)
    diameter = max(
        max(row.values()) for row in distances.values()
    )
    return diameter, rounds
