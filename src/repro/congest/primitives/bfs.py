"""Standalone distributed BFS from a designated root."""

from __future__ import annotations

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext

KIND_BFS = "bfs"


class BFSProgram(NodeProgram):
    """Grows a BFS tree from ``root``; each node learns distance + parent.

    The root sends a wave carrying its distance; a node adopting a smaller
    distance re-broadcasts.  In a synchronous network the first wave
    arrival is along a shortest path, so each node adopts exactly once and
    the algorithm takes ``D + 1`` rounds and ``O(m)`` messages total.

    Outputs (after the run): ``distance`` (None if unreachable),
    ``parent`` (None for the root / unreached nodes).
    """

    def __init__(
        self, info: NodeInfo, rng: np.random.Generator, root: int
    ) -> None:
        super().__init__(info, rng)
        self.root = root
        self.distance: int | None = 0 if info.node_id == root else None
        self.parent: int | None = None

    def on_start(self, ctx: RoundContext) -> None:
        if self.node_id == self.root:
            ctx.broadcast(KIND_BFS, 0)
        self.halt()

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind != KIND_BFS:
                continue
            (sender_distance,) = message.fields
            candidate = sender_distance + 1
            if self.distance is None or candidate < self.distance:
                self.distance = candidate
                self.parent = message.sender
                ctx.broadcast(KIND_BFS, candidate)
        self.halt()


def make_bfs_factory(root: int):
    """Program factory for :class:`BFSProgram` with a fixed root."""

    def factory(info: NodeInfo, rng: np.random.Generator) -> BFSProgram:
        return BFSProgram(info, rng, root)

    return factory
