"""Tree broadcast: flood a value from the root down a precomputed tree."""

from __future__ import annotations

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext

KIND_BCAST = "bcast"


class TreeBroadcastProgram(NodeProgram):
    """Pushes one integer from the root to every node along tree edges.

    Parameters
    ----------
    tree_children:
        Mapping ``node -> tuple of children`` describing the tree (as
        produced by leader election).  Each program only reads its own
        entry - the mapping is shared for construction convenience only.
    root, value:
        The broadcasting node and its payload (known only to the root).

    Output: ``received`` on every program.
    """

    def __init__(
        self,
        info: NodeInfo,
        rng: np.random.Generator,
        tree_children: dict[int, tuple[int, ...]],
        root: int,
        value: int,
    ) -> None:
        super().__init__(info, rng)
        self.children = tree_children.get(info.node_id, ())
        self.root = root
        self.received: int | None = value if info.node_id == root else None

    def on_start(self, ctx: RoundContext) -> None:
        if self.node_id == self.root:
            self._forward(ctx)
        self.halt()

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind == KIND_BCAST and self.received is None:
                (self.received,) = message.fields
                self._forward(ctx)
        self.halt()

    def _forward(self, ctx: RoundContext) -> None:
        for child in self.children:
            ctx.send(child, KIND_BCAST, self.received)
