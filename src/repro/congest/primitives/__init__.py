"""Classic CONGEST building blocks used by the main protocol.

The paper's Algorithm 1 starts with "randomly choose a target node t"
without a mechanism.  These primitives supply one: every node draws a
random rank, a flood-max wave elects the max-rank node as leader (a
uniformly random node) while simultaneously growing a BFS tree from it;
the tree then supports broadcast, aggregation, and the termination
detection the counting phase needs.
"""

from repro.congest.primitives.apsp import (
    APSPProgram,
    distributed_apsp,
    distributed_diameter,
)
from repro.congest.primitives.flood import FloodMaxBFS, FloodMaxState
from repro.congest.primitives.bfs import BFSProgram
from repro.congest.primitives.leader import LeaderElectionProgram
from repro.congest.primitives.broadcast import TreeBroadcastProgram
from repro.congest.primitives.convergecast import ConvergecastSumProgram
from repro.congest.primitives.pushsum import PushSumProgram, gossip_average

__all__ = [
    "PushSumProgram",
    "gossip_average",
    "APSPProgram",
    "FloodMaxBFS",
    "FloodMaxState",
    "BFSProgram",
    "LeaderElectionProgram",
    "TreeBroadcastProgram",
    "ConvergecastSumProgram",
    "distributed_apsp",
    "distributed_diameter",
]
