"""Quantized push-sum gossip: tree-free average/sum aggregation.

The main protocol aggregates its death counter over the BFS tree; gossip
is the standard tree-free alternative (Kempe-Dobra-Gehrke push-sum):
every node repeatedly halves its (value, weight) mass and pushes one
half to a uniformly random neighbor; ``value / weight`` converges to the
global average at a rate governed by the conductance.

CONGEST wrinkle: push-sum is defined over reals, but our transport
(deliberately) carries only integers.  We therefore run *quantized*
push-sum in fixed point: values are scaled by ``2^SCALE_BITS`` and
halving uses integer division.  Quantization residue is kept, not
dropped - each node retains the odd remainders locally, so the global
invariant "total scaled mass is conserved" holds exactly, and the
estimate converges to the true average up to fixed-point resolution.
"""

from __future__ import annotations

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.graphs.graph import Graph, GraphError

KIND_PUSH = "push"
SCALE_BITS = 20
SCALE = 1 << SCALE_BITS


class PushSumProgram(NodeProgram):
    """One node of quantized push-sum averaging.

    Parameters
    ----------
    local_value:
        The integer this node contributes to the average.
    rounds:
        Fixed horizon after which nodes stop and read their estimate
        (push-sum has no local termination test; callers size the
        horizon as ``O(log(n / accuracy) / gap)``).

    Output: ``estimate`` - this node's view of the global average.
    """

    def __init__(
        self,
        info: NodeInfo,
        rng: np.random.Generator,
        local_value: int,
        rounds: int,
    ) -> None:
        super().__init__(info, rng)
        if rounds < 1:
            raise GraphError("push-sum needs rounds >= 1")
        self.rounds = rounds
        self.scaled_value = int(local_value) * SCALE
        self.scaled_weight = SCALE

    def on_start(self, ctx: RoundContext) -> None:
        self._push(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind == KIND_PUSH:
                value, weight = message.fields
                self.scaled_value += value
                self.scaled_weight += weight
        if ctx.round_number >= self.rounds:
            self.halt()
            return
        self._push(ctx)

    def _push(self, ctx: RoundContext) -> None:
        # Integer halving; the odd remainder stays local so no mass is
        # ever created or destroyed.
        send_value = self.scaled_value // 2
        send_weight = self.scaled_weight // 2
        self.scaled_value -= send_value
        self.scaled_weight -= send_weight
        neighbor = self.neighbors[int(self.rng.integers(self.degree))]
        ctx.send(neighbor, KIND_PUSH, send_value, send_weight)

    @property
    def estimate(self) -> float:
        """Current estimate of the global average."""
        if self.scaled_weight == 0:
            return 0.0
        return self.scaled_value / self.scaled_weight


def gossip_average(
    graph: Graph,
    values: dict,
    rounds: int | None = None,
    seed: int | None = None,
) -> dict:
    """Run push-sum; returns each node's average estimate.

    ``values`` maps node -> integer contribution.  ``rounds`` defaults
    to ``8 * ceil(log2 n) + 20``, ample on expanders (slow-mixing graphs
    need more; pass it explicitly).
    """
    import math

    from repro.congest.scheduler import run_program
    from repro.congest.transport import BandwidthPolicy
    from repro.graphs.properties import is_connected

    if set(values) != set(graph.nodes()):
        raise GraphError("values must cover exactly the graph's nodes")
    for node, value in values.items():
        if not isinstance(value, (int, np.integer)):
            raise GraphError(
                f"push-sum values must be integers, got {value!r} at "
                f"{node!r} (the transport carries integers only)"
            )
    if not is_connected(graph):
        raise GraphError("gossip requires a connected graph")
    relabeled, mapping = graph.relabeled()
    inverse = {index: node for node, index in mapping.items()}
    if rounds is None:
        rounds = 8 * max(1, int(np.ceil(np.log2(max(2, graph.num_nodes))))) + 20

    def factory(info: NodeInfo, rng: np.random.Generator) -> PushSumProgram:
        return PushSumProgram(
            info, rng, local_value=values[inverse[info.node_id]], rounds=rounds
        )

    # Message width: the fixed-point resolution (SCALE_BITS) plus the
    # value range rides in every message.  For bounded values and
    # constant precision this is O(log n) + O(1); size the policy so the
    # constant does not trip the small-n floor.
    n = graph.num_nodes
    max_abs = max(1, max(abs(int(v)) for v in values.values()))
    needed = (
        8  # tag
        + 2 * (max_abs.bit_length() + SCALE_BITS + n.bit_length() + 4)
    )
    log_term = max(1, math.ceil(math.log2(max(2, n))))
    policy = BandwidthPolicy(
        n=n, log_factor=max(8, math.ceil(needed / log_term))
    )
    result = run_program(relabeled, factory, seed=seed, policy=policy)
    return {
        inverse[index]: result.program(index).estimate
        for index in range(relabeled.num_nodes)
    }
