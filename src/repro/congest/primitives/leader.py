"""Standalone leader election: flood-max over random ranks.

Each node draws a uniform rank in ``[0, n^3)``, making the winner a
uniformly random node (ties broken by id are an ``O(1/n)`` probability
event).  This implements the paper's "randomly choose a target node t"
step as an actual distributed mechanism.
"""

from __future__ import annotations

import numpy as np

from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.congest.primitives.flood import FloodMaxBFS, FloodMaxState


class LeaderElectionProgram(NodeProgram):
    """Elects a leader and builds the BFS tree rooted at it.

    The flood runs for exactly ``n`` rounds (an upper bound on the
    diameter, which nodes do not know), then one announce round and one
    collection round.  Outputs: ``state`` (:class:`FloodMaxState`).
    """

    def __init__(self, info: NodeInfo, rng: np.random.Generator) -> None:
        super().__init__(info, rng)
        rank = int(rng.integers(0, max(2, info.n) ** 3))
        self._flood = FloodMaxBFS(info.node_id, rank)
        self._flood_rounds = info.n
        self.state: FloodMaxState | None = None

    def on_start(self, ctx: RoundContext) -> None:
        self._flood.start(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        if ctx.round_number <= self._flood_rounds:
            self._flood.step(ctx, inbox)
            if ctx.round_number == self._flood_rounds:
                self._flood.announce_parent(ctx)
        elif self.state is None:
            self.state = self._flood.finish(inbox)
            self.halt()
