"""Asynchronous execution of synchronous node programs (alpha synchronizer).

The CONGEST model is synchronous; real networks are not.  Awerbuch's
alpha synchronizer bridges the gap: every payload message is tagged with
its round and acknowledged; a node that has all its round-``r`` messages
acknowledged is *safe* and says so to its neighbors; a node enters round
``r + 1`` once it is safe and has heard ``safe(r)`` from every neighbor.
This delivers every round-``r`` payload before any neighbor can start
``r + 1``, so any synchronous :class:`~repro.congest.node.NodeProgram`
runs unmodified - and produces identical outputs - on an asynchronous
network.

This module implements:

* an event-driven executor with per-message random delays
  (:class:`AsyncSimulator`);
* the synchronizer wrapper that drives an unmodified
  :class:`~repro.congest.node.NodeProgram` through its rounds;
* a **fault-tolerant transport** underneath the synchronizer: with a
  :class:`~repro.congest.faults.FaultPlan`, every payload and safe
  message carries a per-directed-edge sequence number (reusing the
  sliding-window machinery of :mod:`repro.congest.reliable`), receivers
  deduplicate and answer with cumulative + selective acks, and senders
  retransmit on virtual-time timeouts with exponential backoff.  Crash
  windows translate to virtual-time outages: a down node receives
  nothing and advances no rounds, its neighbors stall on their timers,
  and everyone resynchronizes on recovery.  Message drops, duplicates,
  and delays are decided by the same stateless hash schedules the
  synchronous loops use (:meth:`FaultRuntime.async_fate`), so one plan
  seed fully determines the run.

**Determinism and equivalence.**  Arrivals within one simulated round
are buffered with their ``(sender canonical rank, per-edge send index)``
and sorted before delivery, reconstructing exactly the inbox order of
the synchronous scheduler.  A program therefore sees *identical*
inboxes - and consumes identical randomness - whether it runs
synchronously fault-free or asynchronously under a lossy plan: outputs
match bit for bit, and the same ``(seed, plan)`` pair always reproduces
the same outputs *and* metrics (pinned by ``tests/test_async_faults.py``
alongside the synchronous pins in ``tests/test_reliable_equivalence.py``).

Overhead accounting matches the textbook: per simulated round, the
synchronizer adds one ack per payload plus 2 "safe" messages per edge -
a constant factor.  The CONGEST budget is enforced on the *program's*
messages (bits and per-edge count per round); the synchronizer's framing
(round tag, send index, kind code, seq) is the separately-charged
``O(log T)``-bit wrapper every synchronizer needs and is not counted
against the program's budget.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.congest.errors import (
    CongestViolation,
    ConfigError,
    FaultInjectionError,
    ProtocolError,
    RoundLimitExceeded,
    UnrecoverableLossError,
)
from repro.congest.faults import FaultPlan, FaultRuntime
from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.congest.reliable import InLink, OutLink
from repro.congest.scheduler import ProgramFactory
from repro.congest.transport import BandwidthPolicy
from repro.graphs.graph import Graph
from repro.graphs.properties import is_connected
from repro.obs.spans import NULL_PROFILER

KIND_PAYLOAD = "sync.payload"
KIND_ACK = "sync.ack"
KIND_SAFE = "sync.safe"

#: Retransmission timeout, in units of ``max_delay`` (one-way delays are
#: at most ``max_delay``, so a round trip completes within 2; 3 gives
#: the ack a grace window before the first retransmission fires).
RTO_FACTOR = 3.0

#: Exponential backoff doubles the timeout per retry, capped at
#: ``2 ** BACKOFF_CAP`` times the base RTO.
BACKOFF_CAP = 3


@dataclass
class AsyncMetrics:
    """Observables of one asynchronous run.

    ``payload_messages``/``control_messages`` count *delivered* traffic
    (message copies that reached a live receiver), so dropped copies
    appear only in :attr:`faults`.  The per-round series attribute each
    delivery to the simulated round it belongs to, which is what the
    observe artifact slices into protocol phases.
    """

    virtual_time: float = 0.0
    rounds_completed: int = 0
    payload_messages: int = 0
    control_messages: int = 0
    total_bits: int = 0
    # Recovery layer (all zero on fault-free runs).
    retransmissions: int = 0
    timeouts: int = 0
    acks_sent: int = 0
    duplicates_rejected: int = 0
    crash_recoveries: int = 0
    #: ``FaultCounters.summary()`` of the run's plan (empty = no plan).
    #: ``crash_node_rounds`` counts the *planned* window lengths in
    #: simulated rounds (the virtual-time outage divided by the delay
    #: bound), fixed at start of run.
    faults: dict = field(default_factory=dict)
    #: Delivered messages / bits per simulated round (index 0 = round 1).
    messages_per_round: list = field(default_factory=list)
    bits_per_round: list = field(default_factory=list)

    @property
    def total_messages(self) -> int:
        return self.payload_messages + self.control_messages

    @property
    def rounds(self) -> int:
        """Alias for :attr:`rounds_completed`, matching the synchronous
        :class:`~repro.congest.metrics.RunMetrics` surface so result
        consumers (obs export, CLI) work on either executor."""
        return self.rounds_completed

    def summary(self) -> dict:
        data = {
            "rounds": self.rounds_completed,
            "virtual_time": round(self.virtual_time, 6),
            "total_messages": self.total_messages,
            "total_bits": self.total_bits,
            "payload_messages": self.payload_messages,
            "control_messages": self.control_messages,
            "retransmissions": self.retransmissions,
            "timeouts": self.timeouts,
            "acks_sent": self.acks_sent,
            "duplicates_rejected": self.duplicates_rejected,
            "crash_recoveries": self.crash_recoveries,
        }
        for key, value in sorted(self.faults.items()):
            data[f"faults_{key}"] = value
        return data

    def recovery_summary(self) -> dict:
        """The recovery counters alone, shaped like the synchronous
        estimator's ``result.recovery`` dict."""
        return {
            "retransmissions": self.retransmissions,
            "timeouts": self.timeouts,
            "acks_sent": self.acks_sent,
            "duplicates_rejected": self.duplicates_rejected,
            "crash_recoveries": self.crash_recoveries,
        }


@dataclass
class AsyncResult:
    programs: dict[int, NodeProgram]
    metrics: AsyncMetrics

    def program(self, node_id: int) -> NodeProgram:
        return self.programs[node_id]


class _SynchronizerNode:
    """Per-node alpha-synchronizer state machine."""

    __slots__ = (
        "program",
        "rank",
        "round",
        "safe_announced",
        "safe_from",
        "buffers",
        "outstanding",
        "seq_round",
        "out",
        "inn",
        "retries",
        "send_counts",
    )

    def __init__(self, program: NodeProgram, rank: int) -> None:
        self.program = program
        self.rank = rank
        self.round = 0
        self.safe_announced = False
        # safe(r) senders, keyed by r (a neighbor can run one round ahead).
        self.safe_from: dict[int, set[int]] = {}
        # Payloads buffered by the round they are DELIVERED in (sender's
        # round + 1) as (sender rank, per-edge send index, message), so
        # one sort reproduces the synchronous scheduler's inbox order.
        self.buffers: dict[int, list[tuple[int, int, Message]]] = {}
        # round -> payloads of that round still awaiting their ack; the
        # node is safe for its current round when its entry reaches 0.
        self.outstanding: dict[int, int] = {}
        # (neighbor, seq) -> round, for payload seqs only, to map an
        # ack back to the round whose safety gate it opens.
        self.seq_round: dict[tuple[int, int], int] = {}
        # Reliable-channel endpoints per neighbor (shared seq space for
        # payloads and safes on each directed edge).
        self.out: dict[int, OutLink] = {}
        self.inn: dict[int, InLink] = {}
        # (neighbor, seq) -> retransmissions so far (kept outside the
        # OutLink entry, whose 4-slot layout other code unpacks).
        self.retries: dict[tuple[int, int], int] = {}
        # Per-neighbor sends this round: the CONGEST per-edge budget
        # check and the canonical send index in one counter.
        self.send_counts: dict[int, int] = {}

    @property
    def node_id(self) -> int:
        return self.program.node_id

    @property
    def neighbors(self) -> tuple[int, ...]:
        return self.program.neighbors


class AsyncSimulator:
    """Runs any synchronous program on an asynchronous network.

    Parameters
    ----------
    graph, program_factory, policy, seed:
        As in :class:`~repro.congest.scheduler.Simulator`.
    max_delay:
        Message delays are uniform in ``[1, max_delay]`` (virtual time
        units).  Without faults, channels are additionally FIFO per
        directed edge; a fault plan makes them explicitly unordered.
    max_rounds:
        Simulated-round safety limit.  Exceeding it raises
        :class:`RoundLimitExceeded` (or :class:`UnrecoverableLossError`
        under a fault plan) carrying the partial :class:`AsyncMetrics`.
    faults:
        Optional :class:`~repro.congest.faults.FaultPlan`.  Drop,
        duplication, and delay schedules apply per transmission via the
        plan's stateless hash; a plan-level delay of ``r`` rounds adds
        ``r * max_delay`` virtual time.  Crash windows are interpreted
        on the same scale: round window ``[a, b)`` means the node is
        down for virtual time ``[a * max_delay, b * max_delay)``.
        Crash-stop windows (``end=None``) are rejected - the
        synchronizer needs every neighbor back to make progress.
    max_retransmits:
        Per-message retransmission budget before the run fails with
        :class:`UnrecoverableLossError` (context: edge, virtual time,
        retransmit count).
    telemetry:
        Optional :class:`repro.obs.Telemetry`; records a per-round wall
        series, retransmit/timeout round counters, and per-round fault
        deltas.  Observation-only.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: ProgramFactory,
        policy: BandwidthPolicy | None = None,
        seed: int | None = None,
        max_delay: float = 10.0,
        max_rounds: int = 100_000,
        faults: FaultPlan | None = None,
        max_retransmits: int = 64,
        telemetry=None,
    ) -> None:
        if graph.num_nodes == 0:
            raise ConfigError("cannot simulate the empty graph")
        if not is_connected(graph):
            raise ConfigError("graph must be connected")
        if max_delay < 1.0:
            raise ConfigError("max_delay must be >= 1")
        if max_retransmits < 1:
            raise ConfigError("max_retransmits must be >= 1")
        self.graph = graph
        self.policy = policy or BandwidthPolicy(
            n=graph.num_nodes,
            # The synchronizer multiplexes payload + ack + safe on one
            # edge within a round window; give it room.
            messages_per_edge=64,
        )
        self.max_delay = max_delay
        self.max_rounds = max_rounds
        self.max_retransmits = max_retransmits
        self.faults = faults if faults is not None else FaultPlan()
        self._lossy = not self.faults.is_trivial
        self._crash_spans: dict[int, list[tuple[float, float]]] = {}
        if self._lossy:
            nodes = set(graph.nodes())
            for window in self.faults.crashes:
                if window.end is None:
                    raise FaultInjectionError(
                        f"crash-stop window on node {window.node} never "
                        "ends: the synchronizer cannot outwait a node "
                        "that never recovers (use a finite end)"
                    )
                if window.node in nodes:
                    self._crash_spans.setdefault(window.node, []).append(
                        (window.start * max_delay, window.end * max_delay)
                    )
        self._seed = seed
        self._factory = program_factory
        self._profiler = (
            telemetry.profiler if telemetry is not None else NULL_PROFILER
        )
        self._instruments = (
            telemetry.instruments if telemetry is not None else None
        )
        # Inner kind-string <-> small-int table, per run (codes ride in
        # the payload envelope; the table never crosses simulations).
        self._kind_table: dict[str, int] = {}
        self._kind_reverse: dict[int, str] = {}

    # ------------------------------------------------------------------
    def run(self) -> AsyncResult:
        master = np.random.default_rng(self._seed)
        order = self.graph.canonical_order()
        # One spare child for delay draws: the first len(order) children
        # are prefix-stable, so node rngs match the synchronous
        # scheduler's exactly (same seed => same protocol randomness).
        children = master.spawn(len(order) + 1)
        self._delay_rng = children[-1]

        self._nodes: dict[int, _SynchronizerNode] = {}
        for rank, (node, rng) in enumerate(zip(order, children)):
            info = NodeInfo(
                node_id=node,
                neighbors=tuple(sorted(self.graph.neighbors(node))),
                n=self.graph.num_nodes,
            )
            state = _SynchronizerNode(self._factory(info, rng), rank)
            for neighbor in info.neighbors:
                state.out[neighbor] = OutLink()
                state.inn[neighbor] = InLink()
            self._nodes[node] = state
        self._order = order

        self._metrics = AsyncMetrics()
        self._events: list[tuple[float, int, tuple]] = []
        self._tick = itertools.count()
        self._last_delivery: dict[tuple[int, int], float] = {}
        self._clock = 0.0
        self._unacked_payloads = 0
        self._rto = RTO_FACTOR * self.max_delay
        self._fault_rt = FaultRuntime(self.faults) if self._lossy else None
        if self._fault_rt is not None:
            for node, spans in self._crash_spans.items():
                for start_t, end_t in spans:
                    heapq.heappush(
                        self._events,
                        (end_t, next(self._tick), ("recover", node)),
                    )
                    self._fault_rt.counters.crash_node_rounds += int(
                        round((end_t - start_t) / self.max_delay)
                    )

        metrics = self._metrics
        # Round 0: on_start for everyone, then enter the dance.
        for node in order:
            self._program_step(self._nodes[node], None, 0)
        for node in order:
            self._maybe_safe(self._nodes[node])

        while self._events:
            if self._quiescent():
                break
            self._clock, _, event = heapq.heappop(self._events)
            metrics.virtual_time = self._clock
            tag = event[0]
            if tag == "msg":
                self._deliver(event[1])
            elif tag == "timer":
                self._on_timer(event[1], event[2], event[3])
            else:  # "recover"
                metrics.crash_recoveries += 1
            # Advance any node whose round gate opened.
            progressed = True
            while progressed:
                progressed = False
                for node in order:
                    if self._maybe_advance(self._nodes[node]):
                        progressed = True
            if metrics.rounds_completed > self.max_rounds:
                self._finalize_metrics()
                error_cls = (
                    UnrecoverableLossError
                    if self._fault_rt is not None
                    else RoundLimitExceeded
                )
                raise error_cls(
                    f"async run exceeded {self.max_rounds} simulated "
                    "rounds",
                    context={
                        "max_rounds": self.max_rounds,
                        "virtual_time": self._clock,
                        "rounds_completed": metrics.rounds_completed,
                        "retransmissions": metrics.retransmissions,
                        "timeouts": metrics.timeouts,
                        "faults": metrics.faults or None,
                    },
                    metrics=metrics,
                )

        self._finalize_metrics()
        self._profiler.run_finished()
        return AsyncResult(
            programs={node: self._nodes[node].program for node in order},
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    # Termination
    # ------------------------------------------------------------------
    def _quiescent(self) -> bool:
        """True when no program can ever run again: all halted, no
        buffered inboxes, and every *payload* confirmed delivered.
        Residual heap entries - unacked safes, in-flight acks,
        duplicate copies, stale timers, future recover events - carry
        no program-visible information at that point and the run can
        stop.  (Counting unacked safes here would never converge: every
        empty round a halted node is pushed through announces fresh
        reliable safes, which would keep the run alive forever.)"""
        if self._unacked_payloads:
            return False
        states = self._nodes.values()
        if any(not s.program.halted for s in states):
            return False
        return not any(s.buffers for s in states)

    def _finalize_metrics(self) -> None:
        """Square up the per-round series with the final round count and
        snapshot the fault counters."""
        metrics = self._metrics
        if self._fault_rt is not None:
            metrics.faults = self._fault_rt.counters.summary()
        rounds = metrics.rounds_completed
        for series in (metrics.messages_per_round, metrics.bits_per_round):
            if len(series) > rounds:
                # Trailing-round control traffic (the final safes) folds
                # into the last completed round.
                overflow = sum(series[rounds:])
                del series[rounds:]
                if rounds and overflow:
                    series[-1] += overflow
            elif len(series) < rounds:
                series.extend([0] * (rounds - len(series)))

    # ------------------------------------------------------------------
    # Crash windows (virtual time)
    # ------------------------------------------------------------------
    def _is_down(self, node: int, at: float) -> bool:
        spans = self._crash_spans.get(node)
        if not spans:
            return False
        return any(start <= at < end for start, end in spans)

    def _down_until(self, node: int, at: float) -> float | None:
        spans = self._crash_spans.get(node)
        if not spans:
            return None
        for start, end in spans:
            if start <= at < end:
                return end
        return None

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _transmit(
        self,
        sender: int,
        receiver: int,
        kind: str,
        fields: tuple[int, ...],
        hash_round: int,
    ) -> None:
        """Put one message copy on the wire, through the fault plan."""
        message = Message(
            sender=sender, receiver=receiver, kind=kind, fields=fields
        )
        if self._fault_rt is None:
            self._post_delivery(message, 0.0)
            return
        dropped, duplicated, delay_rounds = self._fault_rt.async_fate(
            hash_round, sender, receiver, kind
        )
        if dropped:
            return
        self._post_delivery(message, delay_rounds * self.max_delay)
        if duplicated:
            self._post_delivery(message, 0.0)

    def _post_delivery(self, message: Message, extra: float) -> None:
        delay = 1.0 + float(self._delay_rng.random()) * (self.max_delay - 1.0)
        at = self._clock + delay + extra
        if not self._lossy:
            # Reliable regime: keep the classic FIFO-channel model.  A
            # lossy plan makes channels explicitly unordered instead
            # (dedup + round buffering + the canonical inbox sort
            # restore determinism without FIFO).
            edge = (message.sender, message.receiver)
            at = max(at, self._last_delivery.get(edge, 0.0) + 1e-9)
            self._last_delivery[edge] = at
        heapq.heappush(self._events, (at, next(self._tick), ("msg", message)))

    def _send_payload(
        self,
        state: _SynchronizerNode,
        neighbor: int,
        kind: str,
        fields: tuple[int, ...],
        round_number: int,
    ) -> None:
        """Wrap one program message into a sequenced payload envelope."""
        index = state.send_counts.get(neighbor, 0)
        if index >= self.policy.messages_per_edge:
            raise CongestViolation(
                f"edge ({state.node_id}, {neighbor}) already carries "
                f"{index} messages this round "
                f"(limit {self.policy.messages_per_edge})"
            )
        state.send_counts[neighbor] = index + 1
        wire_fields = (
            round_number,
            index,
            self._encode_kind(kind),
            *fields,
        )
        seq = state.out[neighbor].assign(
            KIND_PAYLOAD, wire_fields, round_number
        )
        state.outstanding[round_number] = (
            state.outstanding.get(round_number, 0) + 1
        )
        state.seq_round[(neighbor, seq)] = round_number
        self._unacked_payloads += 1
        self._transmit(
            state.node_id,
            neighbor,
            KIND_PAYLOAD,
            wire_fields + (seq,),
            round_number,
        )
        if self._lossy:
            self._schedule_timer(state.node_id, neighbor, seq, self._rto)

    def _announce_safe(self, state: _SynchronizerNode) -> None:
        round_number = state.round
        for neighbor in state.neighbors:
            if self._lossy:
                seq = state.out[neighbor].assign(
                    KIND_SAFE, (round_number,), round_number
                )
                self._transmit(
                    state.node_id,
                    neighbor,
                    KIND_SAFE,
                    (round_number, seq),
                    round_number,
                )
                self._schedule_timer(
                    state.node_id, neighbor, seq, self._rto
                )
            else:
                # No loss possible: safes fly unsequenced, keeping the
                # control overhead at the textbook 2 per edge per round.
                self._transmit(
                    state.node_id,
                    neighbor,
                    KIND_SAFE,
                    (round_number,),
                    round_number,
                )

    # ------------------------------------------------------------------
    # Retransmission timers (lossy mode only)
    # ------------------------------------------------------------------
    def _schedule_timer(
        self, sender: int, neighbor: int, seq: int, delay: float
    ) -> None:
        heapq.heappush(
            self._events,
            (
                self._clock + delay,
                next(self._tick),
                ("timer", sender, neighbor, seq),
            ),
        )

    def _on_timer(self, sender: int, neighbor: int, seq: int) -> None:
        state = self._nodes[sender]
        entry = state.out[neighbor].unacked.get(seq)
        if entry is None:
            return  # acked in the meantime; stale timer
        down_until = self._down_until(sender, self._clock)
        if down_until is not None:
            # The sender itself is crashed: it cannot retransmit until
            # it recovers (its memory - the unacked window - is stable).
            self._schedule_timer(
                sender, neighbor, seq, down_until - self._clock + self._rto
            )
            return
        retries = state.retries.get((neighbor, seq), 0) + 1
        if retries > self.max_retransmits:
            self._finalize_metrics()
            raise UnrecoverableLossError(
                f"message seq {seq} on edge ({sender}, {neighbor}) "
                f"unacked after {self.max_retransmits} retransmissions "
                f"(virtual time {self._clock:.1f})",
                context={
                    "edge": (sender, neighbor),
                    "seq": seq,
                    "kind": entry[0],
                    "virtual_time": self._clock,
                    "retransmits": retries - 1,
                    "faults": self._metrics.faults or None,
                },
                metrics=self._metrics,
            )
        state.retries[(neighbor, seq)] = retries
        kind, fields = entry[0], entry[1]
        metrics = self._metrics
        metrics.timeouts += 1
        metrics.retransmissions += 1
        if self._instruments is not None:
            round_label = max(1, fields[0] + 1)
            self._instruments.bump_round("retransmissions", round_label, 1)
            self._instruments.bump_round("timeouts", round_label, 1)
        # The round tag (fields[0] for payloads and safes alike) keys
        # the fault hash, so every retransmission draws a fresh fate.
        self._transmit(sender, neighbor, kind, fields + (seq,), fields[0])
        self._schedule_timer(
            sender,
            neighbor,
            seq,
            self._rto * (2 ** min(retries, BACKOFF_CAP)),
        )

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _deliver(self, message: Message) -> None:
        if self._fault_rt is not None and self._is_down(
            message.receiver, self._clock
        ):
            # Crashed receivers lose everything sent to them; reliable
            # traffic is recovered by the sender's timers after the
            # window ends.
            self._fault_rt.counters.crash_dropped += 1
            return
        metrics = self._metrics
        state = self._nodes[message.receiver]
        sender = message.sender
        kind = message.kind
        if kind == KIND_PAYLOAD:
            fields = message.fields
            round_tag = fields[0]
            metrics.payload_messages += 1
            self._count_round(round_tag + 1, message.bits)
            if state.inn[sender].accept(fields[-1]):
                if round_tag + 1 <= state.round:
                    raise ProtocolError(
                        f"node {state.node_id} accepted a round-"
                        f"{round_tag} payload from {sender} after "
                        f"entering round {state.round}: synchronizer "
                        "safety violated"
                    )
                inner = Message(
                    sender=sender,
                    receiver=message.receiver,
                    kind=self._decode_kind(fields[2]),
                    fields=tuple(fields[3:-1]),
                )
                state.buffers.setdefault(round_tag + 1, []).append(
                    (self._nodes[sender].rank, fields[1], inner)
                )
            else:
                metrics.duplicates_rejected += 1
            self._send_ack(state, sender)
        elif kind == KIND_SAFE:
            fields = message.fields
            round_tag = fields[0]
            metrics.control_messages += 1
            self._count_round(round_tag + 1, message.bits)
            if self._lossy:
                if state.inn[sender].accept(fields[1]):
                    state.safe_from.setdefault(round_tag, set()).add(sender)
                else:
                    metrics.duplicates_rejected += 1
                self._send_ack(state, sender)
            else:
                state.safe_from.setdefault(round_tag, set()).add(sender)
        else:  # KIND_ACK
            metrics.control_messages += 1
            self._count_round(max(1, metrics.rounds_completed), message.bits)
            cum, bitmap = message.fields
            confirmed = state.out[sender].apply_ack_seqs(cum, bitmap)
            if confirmed:
                for seq in confirmed:
                    state.retries.pop((sender, seq), None)
                    seq_round = state.seq_round.pop((sender, seq), None)
                    if seq_round is not None:
                        self._unacked_payloads -= 1
                        remaining = state.outstanding[seq_round] - 1
                        if remaining:
                            state.outstanding[seq_round] = remaining
                        else:
                            del state.outstanding[seq_round]
                self._maybe_safe(state)

    def _send_ack(self, state: _SynchronizerNode, neighbor: int) -> None:
        """Ack every payload/safe delivery immediately (dup or fresh:
        re-acking a duplicate is what recovers from a lost ack)."""
        link = state.inn[neighbor]
        cum, bitmap = link.ack_fields()
        link.ack_due = False
        self._metrics.acks_sent += 1
        # Acks are unreliable and untagged; their fate hash runs in the
        # round-0 lane with its own running index.
        self._transmit(
            state.node_id, neighbor, KIND_ACK, (cum, bitmap), 0
        )

    def _count_round(self, round_number: int, bits: int) -> None:
        metrics = self._metrics
        metrics.total_bits += bits
        index = round_number - 1
        if index < 0:
            index = 0
        for series, amount in (
            (metrics.messages_per_round, 1),
            (metrics.bits_per_round, bits),
        ):
            while len(series) <= index:
                series.append(0)
            series[index] += amount

    # ------------------------------------------------------------------
    # Synchronizer state machine
    # ------------------------------------------------------------------
    def _maybe_safe(self, state: _SynchronizerNode) -> None:
        if state.safe_announced or state.outstanding.get(state.round, 0):
            return
        state.safe_announced = True
        self._announce_safe(state)

    def _maybe_advance(self, state: _SynchronizerNode) -> bool:
        if not state.safe_announced:
            return False
        if self._fault_rt is not None and self._is_down(
            state.node_id, self._clock
        ):
            return False
        heard = state.safe_from.get(state.round)
        if heard is None or len(heard) < len(state.neighbors):
            return False
        # Enter the next round.
        del state.safe_from[state.round]
        state.round += 1
        metrics = self._metrics
        if state.round > metrics.rounds_completed:
            metrics.rounds_completed = state.round
            self._profiler.round_tick(state.round)
            if self._instruments is not None and self._fault_rt is not None:
                self._instruments.record_fault_counters(
                    state.round, self._fault_rt.counters.snapshot()
                )
        state.safe_announced = False
        state.send_counts = {}
        entries = state.buffers.pop(state.round, [])
        # (sender rank, send index) is unique per entry, so the sort
        # never compares messages - and reproduces the synchronous
        # scheduler's inbox order exactly.
        entries.sort(key=lambda entry: (entry[0], entry[1]))
        inbox = [entry[2] for entry in entries]
        self._program_step(state, inbox, state.round)
        self._maybe_safe(state)
        return True

    def _program_step(
        self,
        state: _SynchronizerNode,
        inbox: list[Message] | None,
        round_number: int,
    ) -> None:
        program = state.program
        ctx = _WrapContext(self, state, round_number)
        if inbox is None:
            program.on_start(ctx)
            return
        if program.halted and inbox:
            program.unhalt()
        if not program.halted or inbox:
            program.on_round(ctx, inbox)

    # ------------------------------------------------------------------
    # Inner kind codes (per run)
    # ------------------------------------------------------------------
    def _encode_kind(self, kind: str) -> int:
        code = self._kind_table.get(kind)
        if code is None:
            code = len(self._kind_table)
            self._kind_table[kind] = code
            self._kind_reverse[code] = kind
        return code

    def _decode_kind(self, code: int) -> str:
        return self._kind_reverse[code]


class _WrapContext(RoundContext):
    """RoundContext whose sends become sequenced payload envelopes.

    The CONGEST budget is enforced on the *inner* message: its bits
    against ``bits_per_message`` and its edge's per-round send count
    against ``messages_per_edge`` (the synchronizer's framing and
    recovery traffic ride outside the program's budget; see the module
    docstring)."""

    def __init__(
        self,
        simulator: AsyncSimulator,
        state: _SynchronizerNode,
        round_number: int,
    ) -> None:
        super().__init__(
            state.node_id, state.neighbors, None, round_number
        )
        self._simulator = simulator
        self._state = state

    def send(self, neighbor: int, kind: str, *fields: int) -> None:
        if neighbor not in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id} tried to send to non-neighbor "
                f"{neighbor}"
            )
        inner = Message(
            sender=self._node_id,
            receiver=neighbor,
            kind=kind,
            fields=tuple(fields),
        )
        limit = self._simulator.policy.bits_per_message
        if inner.bits > limit:
            raise CongestViolation(
                f"message {inner!r} is {inner.bits} bits, exceeding the "
                f"per-message budget of {limit} bits"
            )
        self._simulator._send_payload(
            self._state, neighbor, kind, inner.fields, self.round_number
        )

    def push_message(self, message: Message) -> None:
        if message.receiver not in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id} tried to send to non-neighbor "
                f"{message.receiver}"
            )
        self.send(message.receiver, message.kind, *message.fields)


def run_async(
    graph: Graph,
    program_factory: ProgramFactory,
    seed: int | None = None,
    **kwargs,
) -> AsyncResult:
    """Convenience wrapper mirroring :func:`repro.congest.scheduler.run_program`."""
    return AsyncSimulator(graph, program_factory, seed=seed, **kwargs).run()
