"""Asynchronous execution of synchronous node programs (alpha synchronizer).

The CONGEST model is synchronous; real networks are not.  Awerbuch's
alpha synchronizer bridges the gap: every payload message is tagged with
its round and acknowledged; a node that has all its round-``r`` messages
acknowledged is *safe* and says so to its neighbors; a node enters round
``r + 1`` once it is safe and has heard ``safe(r)`` from every neighbor.
With FIFO channels this delivers every round-``r`` payload before any
neighbor can start ``r + 1``, so any synchronous :class:`NodeProgram`
runs unmodified - and produces identical outputs - on an asynchronous
network.

This module implements:

* an event-driven executor with per-message random delays and FIFO
  channels (:class:`AsyncSimulator`), and
* the synchronizer wrapper that drives an unmodified
  :class:`~repro.congest.node.NodeProgram` through its rounds.

The equivalence (async outputs == sync outputs for deterministic
programs) is asserted by the test suite over BFS, leader election, APSP,
and convergecast - a strong end-to-end check on both executors.

Overhead accounting matches the textbook: per simulated round, the
synchronizer adds one ack per payload plus 2 "safe" messages per edge -
a constant factor, preserving CONGEST compliance.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

import numpy as np

from repro.congest.errors import ConfigError, RoundLimitExceeded
from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.congest.scheduler import ProgramFactory
from repro.congest.transport import BandwidthPolicy, RoundOutbox
from repro.graphs.graph import Graph
from repro.graphs.properties import is_connected

KIND_PAYLOAD = "sync.payload"
KIND_ACK = "sync.ack"
KIND_SAFE = "sync.safe"


@dataclass
class AsyncMetrics:
    """Observables of one asynchronous run."""

    virtual_time: float = 0.0
    rounds_completed: int = 0
    payload_messages: int = 0
    control_messages: int = 0

    @property
    def total_messages(self) -> int:
        return self.payload_messages + self.control_messages


@dataclass
class AsyncResult:
    programs: dict[int, NodeProgram]
    metrics: AsyncMetrics

    def program(self, node_id: int) -> NodeProgram:
        return self.programs[node_id]


class _SynchronizerNode:
    """Per-node alpha-synchronizer state machine."""

    def __init__(
        self,
        program: NodeProgram,
        outbox: RoundOutbox,
    ) -> None:
        self.program = program
        self.outbox = outbox
        self.round = 0
        self.pending_acks = 0
        self.safe_announced = False
        # safe(r) senders, keyed by r (a neighbor can run one round ahead).
        self.safe_from: dict[int, set[int]] = {}
        # Payload messages buffered by the round they are DELIVERED in
        # (sender's round + 1, matching the synchronous scheduler).
        self.buffers: dict[int, list[Message]] = {}
        self.sent_payload_in_round = 0

    @property
    def node_id(self) -> int:
        return self.program.node_id

    @property
    def neighbors(self) -> tuple[int, ...]:
        return self.program.neighbors


class AsyncSimulator:
    """Runs any synchronous program on an asynchronous network.

    Parameters
    ----------
    graph, program_factory, policy, seed:
        As in :class:`~repro.congest.scheduler.Simulator`.
    max_delay:
        Message delays are uniform in ``[1, max_delay]`` (virtual time
        units), made FIFO per directed edge.
    max_rounds:
        Simulated-round safety limit.
    """

    def __init__(
        self,
        graph: Graph,
        program_factory: ProgramFactory,
        policy: BandwidthPolicy | None = None,
        seed: int | None = None,
        max_delay: float = 10.0,
        max_rounds: int = 100_000,
    ) -> None:
        if graph.num_nodes == 0:
            raise ConfigError("cannot simulate the empty graph")
        if not is_connected(graph):
            raise ConfigError("graph must be connected")
        if max_delay < 1.0:
            raise ConfigError("max_delay must be >= 1")
        self.graph = graph
        self.policy = policy or BandwidthPolicy(
            n=graph.num_nodes,
            # The synchronizer multiplexes payload + ack + safe on one
            # edge within a round window; give it room.
            messages_per_edge=64,
        )
        self.max_delay = max_delay
        self.max_rounds = max_rounds
        self._seed = seed
        self._factory = program_factory

    # ------------------------------------------------------------------
    def run(self) -> AsyncResult:
        master = np.random.default_rng(self._seed)
        order = self.graph.canonical_order()
        children = master.spawn(len(order) + 1)
        delay_rng = children[-1]

        outbox = RoundOutbox(self.policy)
        nodes: dict[int, _SynchronizerNode] = {}
        for node, rng in zip(order, children):
            info = NodeInfo(
                node_id=node,
                neighbors=tuple(sorted(self.graph.neighbors(node))),
                n=self.graph.num_nodes,
            )
            nodes[node] = _SynchronizerNode(
                self._factory(info, rng), outbox
            )

        metrics = AsyncMetrics()
        events: list[tuple[float, int, Message]] = []
        sequence = itertools.count()
        last_delivery: dict[tuple[int, int], float] = {}
        clock = 0.0

        def post(message: Message) -> None:
            nonlocal clock
            edge = (message.sender, message.receiver)
            delay = 1.0 + float(delay_rng.random()) * (self.max_delay - 1.0)
            at = max(clock + delay, last_delivery.get(edge, 0.0) + 1e-9)
            last_delivery[edge] = at
            heapq.heappush(events, (at, next(sequence), message))
            if message.kind == KIND_PAYLOAD:
                metrics.payload_messages += 1
            else:
                metrics.control_messages += 1

        def flush_outbox() -> None:
            for message in outbox.drain():
                post(message)

        # Round 0: on_start for everyone, then enter the dance.
        for node in order:
            state = nodes[node]
            ctx = _WrapContext(state, 0)
            state.program.on_start(ctx)
            self._after_program_step(state, ctx)
        flush_outbox()
        for node in order:
            self._maybe_safe(nodes[node])
        flush_outbox()

        while events:
            if self._quiescent(nodes, events):
                break
            clock, _, message = heapq.heappop(events)
            metrics.virtual_time = clock
            state = nodes[message.receiver]
            self._handle(state, nodes, message)
            flush_outbox()
            # Advance any node whose round gate opened.
            progressed = True
            while progressed:
                progressed = False
                for node in order:
                    if self._maybe_advance(nodes[node], metrics):
                        progressed = True
                flush_outbox()
            if metrics.rounds_completed > self.max_rounds:
                raise RoundLimitExceeded(
                    f"async run exceeded {self.max_rounds} simulated rounds"
                )

        return AsyncResult(
            programs={node: nodes[node].program for node in order},
            metrics=metrics,
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _quiescent(nodes, events) -> bool:
        """True when no program can ever run again: all halted, no
        buffered or in-flight payloads.  Residual control messages are
        then irrelevant and the run can stop."""
        if any(not s.program.halted for s in nodes.values()):
            return False
        if any(s.buffers for s in nodes.values()):
            return False
        return not any(m.kind == KIND_PAYLOAD for _, _, m in events)

    def _handle(self, state, nodes, message: Message) -> None:
        if message.kind == KIND_PAYLOAD:
            round_tag = message.fields[0]
            inner = Message(
                sender=message.sender,
                receiver=message.receiver,
                kind=self._decode_kind(message.fields[1]),
                fields=tuple(message.fields[2:]),
            )
            state.buffers.setdefault(round_tag + 1, []).append(inner)
            state.outbox.push(
                Message(
                    state.node_id, message.sender, KIND_ACK, (round_tag,)
                )
            )
        elif message.kind == KIND_ACK:
            state.pending_acks -= 1
            self._maybe_safe(state)
        elif message.kind == KIND_SAFE:
            (round_tag,) = message.fields
            state.safe_from.setdefault(round_tag, set()).add(message.sender)

    def _maybe_safe(self, state) -> None:
        if state.safe_announced or state.pending_acks > 0:
            return
        state.safe_announced = True
        for neighbor in state.neighbors:
            state.outbox.push(
                Message(state.node_id, neighbor, KIND_SAFE, (state.round,))
            )

    def _maybe_advance(self, state, metrics: AsyncMetrics) -> bool:
        if not state.safe_announced:
            return False
        heard = state.safe_from.get(state.round, set())
        if set(state.neighbors) - heard:
            return False
        # Enter the next round.
        state.safe_from.pop(state.round, None)
        state.round += 1
        metrics.rounds_completed = max(metrics.rounds_completed, state.round)
        state.safe_announced = False
        inbox = state.buffers.pop(state.round, [])
        program = state.program
        ctx = _WrapContext(state, state.round)
        if program.halted and inbox:
            program.unhalt()
        if not program.halted or inbox:
            program.on_round(ctx, inbox)
        self._after_program_step(state, ctx)
        self._maybe_safe(state)
        return True

    def _after_program_step(self, state, ctx: "_WrapContext") -> None:
        state.pending_acks += ctx.sent
        state.sent_payload_in_round = ctx.sent

    # Kind strings ride as small integers to keep payloads integral.
    _KIND_TABLE: dict[str, int] = {}
    _KIND_REVERSE: dict[int, str] = {}

    @classmethod
    def _encode_kind(cls, kind: str) -> int:
        if kind not in cls._KIND_TABLE:
            index = len(cls._KIND_TABLE)
            cls._KIND_TABLE[kind] = index
            cls._KIND_REVERSE[index] = kind
        return cls._KIND_TABLE[kind]

    @classmethod
    def _decode_kind(cls, code: int) -> str:
        return cls._KIND_REVERSE[code]


class _WrapContext(RoundContext):
    """RoundContext whose sends become round-tagged payload envelopes."""

    def __init__(self, state: _SynchronizerNode, round_number: int) -> None:
        super().__init__(
            state.node_id, state.neighbors, state.outbox, round_number
        )
        self._state = state
        self.sent = 0

    def send(self, neighbor: int, kind: str, *fields: int) -> None:
        if neighbor not in self._neighbors:
            from repro.congest.errors import ProtocolError

            raise ProtocolError(
                f"node {self._node_id} tried to send to non-neighbor "
                f"{neighbor}"
            )
        envelope = Message(
            sender=self._node_id,
            receiver=neighbor,
            kind=KIND_PAYLOAD,
            fields=(
                self.round_number,
                AsyncSimulator._encode_kind(kind),
                *fields,
            ),
        )
        self._state.outbox.push(envelope)
        self.sent += 1


def run_async(
    graph: Graph,
    program_factory: ProgramFactory,
    seed: int | None = None,
    **kwargs,
) -> AsyncResult:
    """Convenience wrapper mirroring :func:`repro.congest.scheduler.run_program`."""
    return AsyncSimulator(graph, program_factory, seed=seed, **kwargs).run()
