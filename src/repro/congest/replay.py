"""Post-mortem inspection of recorded message logs.

``record_messages=True`` captures everything that crossed the network;
this module turns that log into analyses: per-round and per-kind traffic
summaries, per-edge load profiles, phase boundary detection, and a
compact ASCII timeline - the debugging views used while building the
protocol, promoted to a supported API.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.congest.message import Message
from repro.graphs.graph import GraphError


@dataclass(frozen=True)
class RoundSummary:
    """Traffic of one round."""

    round_number: int
    messages: int
    bits: int
    by_kind: dict[str, int]

    @property
    def dominant_kind(self) -> str | None:
        if not self.by_kind:
            return None
        return max(self.by_kind, key=self.by_kind.get)


def summarize_rounds(message_log: list[list[Message]]) -> list[RoundSummary]:
    """One :class:`RoundSummary` per recorded round (1-indexed)."""
    summaries = []
    for round_number, round_messages in enumerate(message_log, start=1):
        kinds = Counter(message.kind for message in round_messages)
        summaries.append(
            RoundSummary(
                round_number=round_number,
                messages=len(round_messages),
                bits=sum(message.bits for message in round_messages),
                by_kind=dict(kinds),
            )
        )
    return summaries


def kind_totals(message_log: list[list[Message]]) -> dict[str, int]:
    """Total message count per kind over the whole run."""
    totals: Counter[str] = Counter()
    for round_messages in message_log:
        totals.update(message.kind for message in round_messages)
    return dict(totals)


def busiest_edges(
    message_log: list[list[Message]], top: int = 10
) -> list[tuple[tuple[int, int], int]]:
    """The ``top`` directed edges by total messages carried."""
    if top < 1:
        raise GraphError("top must be >= 1")
    loads: Counter[tuple[int, int]] = Counter()
    for round_messages in message_log:
        loads.update(
            (message.sender, message.receiver)
            for message in round_messages
        )
    return loads.most_common(top)


def detect_phases(message_log: list[list[Message]]) -> list[tuple[str, int, int]]:
    """Contiguous spans of rounds grouped by their dominant message kind.

    Returns ``(kind, first_round, last_round)`` triples - for the RWBC
    protocol this recovers the setup/counting/exchange structure from
    traffic alone.
    """
    spans: list[tuple[str, int, int]] = []
    for summary in summarize_rounds(message_log):
        kind = summary.dominant_kind or "(idle)"
        if spans and spans[-1][0] == kind:
            spans[-1] = (kind, spans[-1][1], summary.round_number)
        else:
            spans.append((kind, summary.round_number, summary.round_number))
    return spans


def ascii_timeline(
    message_log: list[list[Message]], width: int = 72
) -> str:
    """A one-line-per-bucket traffic sparkline using block characters.

    Rounds are bucketed to fit ``width``; each bucket shows relative
    message volume on a 0-7 scale.
    """
    if width < 8:
        raise GraphError("width must be >= 8")
    summaries = summarize_rounds(message_log)
    if not summaries:
        return "(empty log)"
    blocks = " .:-=+*#"
    bucket_count = min(width, len(summaries))
    per_bucket = len(summaries) / bucket_count
    volumes = []
    for bucket in range(bucket_count):
        start = int(bucket * per_bucket)
        end = max(start + 1, int((bucket + 1) * per_bucket))
        volumes.append(
            sum(summary.messages for summary in summaries[start:end])
        )
    peak = max(volumes) or 1
    line = "".join(
        blocks[min(7, int(8 * volume / (peak + 1)))] for volume in volumes
    )
    return (
        f"rounds 1..{len(summaries)}  peak {peak} msgs/bucket\n[{line}]"
    )
