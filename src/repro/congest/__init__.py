"""A synchronous CONGEST-model simulator.

The model (Peleg 2000; paper section III-A): nodes communicate in
synchronous rounds; per round, each directed edge carries at most a
constant number of ``O(log n)``-bit messages.  The simulator enforces
both limits at send time and records the metrics (rounds, messages, bits,
per-edge congestion) the paper's complexity claims are phrased in.
"""

from repro.congest.errors import (
    ConfigError,
    CongestViolation,
    ProtocolError,
    RoundLimitExceeded,
    SimulatorError,
)
from repro.congest.message import Message, int_bits, payload_bits
from repro.congest.metrics import RunMetrics
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.congest.scheduler import SimulationResult, Simulator, run_program
from repro.congest.trace import NullTracer, Tracer
from repro.congest.transport import BandwidthPolicy, RoundOutbox

__all__ = [
    "BandwidthPolicy",
    "ConfigError",
    "CongestViolation",
    "Message",
    "NodeInfo",
    "NodeProgram",
    "NullTracer",
    "ProtocolError",
    "RoundContext",
    "RoundLimitExceeded",
    "RoundOutbox",
    "RunMetrics",
    "SimulationResult",
    "Simulator",
    "SimulatorError",
    "Tracer",
    "int_bits",
    "payload_bits",
    "run_program",
]
