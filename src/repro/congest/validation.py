"""Post-hoc CONGEST compliance auditing of recorded message logs.

The transport enforces the model limits at send time; this module
*re-verifies* them independently from a recorded log (and checks what the
transport cannot: that every message travelled along an actual edge of
the graph).  Used by the lower-bound experiments, where the whole
argument rests on the accounting being right, and by tests as a second
opinion on the enforcement layer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.congest.message import Message
from repro.congest.transport import BandwidthPolicy
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one audit; ``violations`` empty means fully compliant."""

    rounds: int
    messages: int
    violations: tuple[str, ...] = field(default_factory=tuple)

    @property
    def compliant(self) -> bool:
        return not self.violations


def audit_message_log(
    message_log: list[list[Message]],
    graph: Graph,
    policy: BandwidthPolicy,
    max_violations: int = 20,
) -> AuditReport:
    """Check every recorded message against the model.

    Verified per message: the (sender, receiver) pair is an edge of
    ``graph`` and the message fits the per-message bit budget.  Verified
    per (edge, round): the message count stays within
    ``policy.messages_per_edge``.
    """
    violations: list[str] = []

    def record(problem: str) -> None:
        if len(violations) < max_violations:
            violations.append(problem)

    total = 0
    for round_number, round_messages in enumerate(message_log, start=1):
        edge_counts: dict[tuple[int, int], int] = {}
        for message in round_messages:
            total += 1
            if not graph.has_edge(message.sender, message.receiver):
                record(
                    f"round {round_number}: message on non-edge "
                    f"{message.sender}->{message.receiver}"
                )
            if message.bits > policy.bits_per_message:
                record(
                    f"round {round_number}: {message.bits}-bit message "
                    f"exceeds budget {policy.bits_per_message} "
                    f"({message.kind!r})"
                )
            edge = (message.sender, message.receiver)
            edge_counts[edge] = edge_counts.get(edge, 0) + 1
        for edge, count in edge_counts.items():
            if count > policy.messages_per_edge:
                record(
                    f"round {round_number}: {count} messages on edge "
                    f"{edge} (limit {policy.messages_per_edge})"
                )
    return AuditReport(
        rounds=len(message_log),
        messages=total,
        violations=tuple(violations),
    )
