"""Deterministic fault injection for the CONGEST simulator.

A :class:`FaultPlan` is a *seeded schedule* of link and node failures:

* per-edge message **drops** (the classic lossy-link model),
* per-edge message **duplication** (at-least-once links),
* per-edge message **delays** (a message slips 1..``max_delay`` rounds),
* per-node **crash windows** (crash-stop / crash-recover: during
  ``[start, end)`` the node executes no rounds and every message to it
  is lost; it resumes with its memory intact - the standard
  omission-crash model with stable storage).

The plan replaces the simulator's old bare ``drop_rate`` float (kept as
the :meth:`FaultPlan.from_drop_rate` convenience constructor).

Determinism contract
--------------------
Every per-message fault decision is a *pure hash* of
``(plan.seed, round, sender, receiver, kind, index)`` where ``index``
is the message's position among the round's messages on that directed
edge and kind, counted in canonical delivery order (control messages in
outbox push order first, then aggregate bulk rows in row order).  There
is no sequential RNG stream to keep aligned, so the per-message loop
and the vectorized fast path - which materialize the very same traffic
in different containers - reach *identical* decisions, and a plan's
schedule is independent of the protocol seed (one fault schedule can be
replayed against many protocol seeds).

:class:`FaultRuntime` is the per-run applicator: the scheduler creates
one per simulation and funnels each round's in-flight traffic through
it on both execution paths.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.congest.errors import FaultInjectionError
from repro.congest.message import Message

if TYPE_CHECKING:  # pragma: no cover
    pass

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
# Decision salts: one independent hash family per fault type.
_SALT_DROP = 0xD1
_SALT_DUP = 0xD2
_SALT_DELAY = 0xD3
_SALT_AMOUNT = 0xD4


@lru_cache(maxsize=None)
def kind_code(kind: str) -> int:
    """Stable 64-bit code for a message kind (platform-independent)."""
    digest = hashlib.sha256(kind.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def _mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer (uint64, wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        z = (values + np.uint64(_GOLDEN)).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        return z ^ (z >> np.uint64(31))


def _mix64_array(values: np.ndarray) -> np.ndarray:
    """:func:`_mix64` for 1-d uint64 arrays.  Elementwise ufuncs on
    arrays wrap silently (only numpy *scalar* arithmetic warns on
    overflow), so this skips the per-call ``errstate`` context manager -
    the dominant cost of hashing millions of small batches."""
    z = values + np.uint64(_GOLDEN)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
    return z ^ (z >> np.uint64(31))


def _mix64_int(value: int) -> int:
    """Scalar splitmix64 finalizer in pure Python ints (identical to
    :func:`_mix64` mod 2**64, without numpy scalar overhead)."""
    z = (value + _GOLDEN) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def _edge_base(
    seed: int, round_number: int, sender: int, receiver: int, code: int
) -> int:
    """Scalar hash chain shared by every message of one (edge, kind)."""
    h = seed & _MASK64
    for part in (round_number, sender, receiver, code):
        h = _mix64_int(h ^ ((part * _GOLDEN) & _MASK64))
    return h


def _edge_base_array(
    seed: int,
    round_number: int,
    senders: np.ndarray,
    receivers: np.ndarray,
    codes: np.ndarray,
) -> np.ndarray:
    """:func:`_edge_base` for arrays of edges (one uint64 per edge).

    The seed/round prefix of the chain is shared by every edge of the
    round, so it is folded once in scalar math; the remaining three
    links vectorize.  Bit-identical to the scalar chain.
    """
    prefix = _mix64_int((seed & _MASK64) ^ ((round_number * _GOLDEN) & _MASK64))
    golden = np.uint64(_GOLDEN)
    h = _mix64_array(
        np.uint64(prefix) ^ (senders.astype(np.uint64) * golden)
    )
    h = _mix64_array(h ^ (receivers.astype(np.uint64) * golden))
    return _mix64_array(h ^ (codes.astype(np.uint64) * golden))


def _uniforms(base: int, salt: int, indices: np.ndarray) -> np.ndarray:
    """Uniform [0, 1) draw per message index, from the stateless hash."""
    keys = (
        np.uint64(base)
        ^ ((indices.astype(np.uint64) + np.uint64(1)) * np.uint64(_GOLDEN))
    ) + np.uint64(salt * 0x2545F4914F6CDD1D & _MASK64)
    return (_mix64(keys) >> np.uint64(11)).astype(np.float64) * 2.0**-53


def _uniform_one(base: int, salt: int, index: int) -> float:
    """Scalar :func:`_uniforms` for a single message index (pure Python
    ints; bit-identical to the vectorized draw mod 2**64).  The
    asynchronous executor decides fates one in-flight message at a
    time, where a one-element numpy round trip would dominate."""
    key = (
        (base ^ (((index + 1) * _GOLDEN) & _MASK64))
        + ((salt * 0x2545F4914F6CDD1D) & _MASK64)
    ) & _MASK64
    return (_mix64_int(key) >> 11) * 2.0**-53


def _uniforms_array(
    bases: np.ndarray, salt: int, indices: np.ndarray
) -> np.ndarray:
    """:func:`_uniforms` with a per-message ``bases`` array, so one call
    covers every (edge, kind) group of a round at once."""
    keys = (
        bases
        ^ ((indices.astype(np.uint64) + np.uint64(1)) * np.uint64(_GOLDEN))
    ) + np.uint64(salt * 0x2545F4914F6CDD1D & _MASK64)
    return (_mix64_array(keys) >> np.uint64(11)).astype(np.float64) * 2.0**-53


@dataclass(frozen=True)
class EdgeFaultRates:
    """Per-directed-edge override of the plan's global rates."""

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0

    def __post_init__(self) -> None:
        for name, value in (
            ("drop", self.drop),
            ("duplicate", self.duplicate),
            ("delay", self.delay),
        ):
            if not 0.0 <= value < 1.0:
                raise FaultInjectionError(
                    f"edge {name} rate must be in [0, 1), got {value}"
                )


@dataclass(frozen=True)
class CrashWindow:
    """One node's crash interval: rounds ``[start, end)``.

    ``end=None`` models crash-stop (the node never recovers); a finite
    ``end`` models crash-recover with stable memory - on recovery the
    node resumes exactly where it stopped, but everything sent to it
    while down is gone.
    """

    node: int
    start: int
    end: int | None = None

    def __post_init__(self) -> None:
        if self.node < 0:
            raise FaultInjectionError("crash node id must be >= 0")
        if self.start < 1:
            raise FaultInjectionError(
                "crash windows start at round >= 1 (round 0 has no "
                "deliveries to lose)"
            )
        if self.end is not None and self.end <= self.start:
            raise FaultInjectionError(
                f"crash window end {self.end} must exceed start {self.start}"
            )

    def covers(self, round_number: int) -> bool:
        if round_number < self.start:
            return False
        return self.end is None or round_number < self.end


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic failure schedule for one simulation.

    Attributes
    ----------
    seed:
        Hash seed of every per-message decision.  Two runs with the
        same plan see the same faults, whatever their protocol seeds.
    drop_rate, duplicate_rate, delay_rate:
        Global per-message probabilities (mutually exclusive, applied
        in that priority order).
    max_delay:
        Delayed messages slip a uniform 1..``max_delay`` rounds.
    edge_overrides:
        ``(sender, receiver) -> EdgeFaultRates`` overriding the global
        rates on specific directed edges.
    crashes:
        Crash-stop / crash-recover windows (see :class:`CrashWindow`).
    """

    seed: int = 0xD509
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_rate: float = 0.0
    max_delay: int = 3
    edge_overrides: Mapping[tuple[int, int], EdgeFaultRates] = field(
        default_factory=dict
    )
    crashes: tuple[CrashWindow, ...] = ()

    def __post_init__(self) -> None:
        for name, value in (
            ("drop_rate", self.drop_rate),
            ("duplicate_rate", self.duplicate_rate),
            ("delay_rate", self.delay_rate),
        ):
            if not 0.0 <= value < 1.0:
                raise FaultInjectionError(
                    f"{name} must be in [0, 1), got {value}"
                )
        if self.max_delay < 1:
            raise FaultInjectionError("max_delay must be >= 1")
        for key, rates in self.edge_overrides.items():
            if not isinstance(rates, EdgeFaultRates):
                raise FaultInjectionError(
                    f"edge override for {key} must be an EdgeFaultRates"
                )
        for window in self.crashes:
            if not isinstance(window, CrashWindow):
                raise FaultInjectionError(
                    f"crash entry {window!r} must be a CrashWindow"
                )

    @classmethod
    def from_drop_rate(cls, rate: float, seed: int = 0xD509) -> "FaultPlan":
        """The legacy knob: uniform i.i.d. message loss, nothing else."""
        return cls(seed=seed, drop_rate=rate)

    @property
    def is_trivial(self) -> bool:
        """True when the plan injects nothing (a no-op schedule)."""
        if self.drop_rate or self.duplicate_rate or self.delay_rate:
            return False
        if self.crashes:
            return False
        return all(
            rates.drop == rates.duplicate == rates.delay == 0.0
            for rates in self.edge_overrides.values()
        )

    def rates_for(
        self, sender: int, receiver: int
    ) -> tuple[float, float, float]:
        """Effective ``(drop, duplicate, delay)`` rates of one edge."""
        override = self.edge_overrides.get((sender, receiver))
        if override is not None:
            return (override.drop, override.duplicate, override.delay)
        return (self.drop_rate, self.duplicate_rate, self.delay_rate)

    def describe(self) -> str:
        parts = []
        if self.drop_rate:
            parts.append(f"drop={self.drop_rate:g}")
        if self.duplicate_rate:
            parts.append(f"dup={self.duplicate_rate:g}")
        if self.delay_rate:
            parts.append(f"delay={self.delay_rate:g}(<= {self.max_delay}r)")
        if self.edge_overrides:
            parts.append(f"{len(self.edge_overrides)} edge overrides")
        for window in self.crashes:
            end = "∞" if window.end is None else window.end
            parts.append(f"crash(v{window.node}@[{window.start},{end}))")
        return ", ".join(parts) if parts else "trivial"


@dataclass
class FaultCounters:
    """What the runtime actually injected, surfaced via RunMetrics."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    crash_dropped: int = 0
    crash_node_rounds: int = 0

    def summary(self) -> dict[str, int]:
        return {
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "delayed": self.delayed,
            "crash_dropped": self.crash_dropped,
            "crash_node_rounds": self.crash_node_rounds,
        }

    def snapshot(self) -> dict[str, int]:
        """Point-in-time copy for per-round delta accounting (the
        scheduler's telemetry hook diffs consecutive snapshots to
        attribute injections to rounds).  Same keys as :meth:`summary`."""
        return self.summary()


#: One delayed bulk row awaiting maturity: (sender, receiver, fields, count).
_DelayedRow = tuple[int, int, tuple[int, ...], int]


class FaultRuntime:
    """Applies one :class:`FaultPlan` to one simulation run.

    The scheduler calls, in order, once per round:

    1. :meth:`crashed` - the nodes down this round;
    2. :meth:`begin_round` - reset the per-(edge, kind) index counters;
    3. :meth:`filter_messages` on the round's control messages, then
       (fast path only) :meth:`filter_bulk` per bulk kind - index
       counters carry across the two calls, fixing the canonical
       control-then-bulk order;
    4. :meth:`take_delayed` - traffic delayed in earlier rounds that
       matures now (delivered after the fresh traffic, in both loops).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.counters = FaultCounters()
        self._uniform_rates = not plan.edge_overrides
        # All rates zero everywhere (crash-only or crash-free plans):
        # no per-message hash is ever evaluated during the run, so the
        # per-edge fate index counters are never read and whole rounds
        # can skip fate processing outright.
        self._all_rates_zero = (
            plan.drop_rate == 0.0
            and plan.duplicate_rate == 0.0
            and plan.delay_rate == 0.0
            and all(
                rates.drop == rates.duplicate == rates.delay == 0.0
                for rates in plan.edge_overrides.values()
            )
        )
        self._indices: dict[tuple[int, int, int], int] = {}
        # Asynchronous-executor fate counters: one running index per
        # (round, sender, receiver, kind) across the whole run (the
        # event loop has no per-round reset point; see async_fate).
        self._async_indices: dict[tuple[int, int, int, int], int] = {}
        self._delayed_messages: dict[int, list[Message]] = {}
        self._delayed_bulk: dict[int, dict[str, list[_DelayedRow]]] = {}
        self._crash_cache: dict[int, frozenset[int]] = {}
        self._down_array_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Crash windows
    # ------------------------------------------------------------------
    def crashed(self, round_number: int) -> frozenset[int]:
        """Nodes down during ``round_number``."""
        cached = self._crash_cache.get(round_number)
        if cached is None:
            cached = frozenset(
                w.node for w in self.plan.crashes if w.covers(round_number)
            )
            self._crash_cache[round_number] = cached
        return cached

    def note_crash_rounds(self, count: int) -> None:
        """Scheduler hook: ``count`` node-rounds were lost to crashes."""
        self.counters.crash_node_rounds += count

    def _down_array(self, round_number: int) -> np.ndarray:
        """The round's crashed set as a sorted int64 array (cached)."""
        cached = self._down_array_cache.get(round_number)
        if cached is None:
            cached = np.fromiter(
                sorted(self.crashed(round_number)), dtype=np.int64
            )
            self._down_array_cache[round_number] = cached
        return cached

    # ------------------------------------------------------------------
    # Asynchronous (event-driven) application
    # ------------------------------------------------------------------
    def async_fate(
        self, round_number: int, sender: int, receiver: int, kind: str
    ) -> tuple[bool, bool, int]:
        """Fate of one asynchronously transmitted message.

        Returns ``(dropped, duplicated, delay_rounds)`` - the same
        mutually exclusive outcomes, priorities, and hash family as
        :meth:`_fates`, evaluated one message at a time.  ``round_number``
        is the simulated round the message belongs to (its synchronizer
        round tag; 0 for untagged control traffic such as acks), and the
        per-``(round, edge, kind)`` index auto-increments across the
        run, so every transmission - including each retransmission of
        the same payload - faces an independent draw.  Counters are
        bumped here; crash losses are *not* decided here (the executor
        applies crash windows at delivery time, in virtual time).
        """
        drop, dup, delay = self.plan.rates_for(sender, receiver)
        if drop == dup == delay == 0.0:
            return (False, False, 0)
        code = kind_code(kind)
        key = (round_number, sender, receiver, code)
        index = self._async_indices.get(key, 0)
        self._async_indices[key] = index + 1
        base = _edge_base(self.plan.seed, round_number, sender, receiver, code)
        if drop > 0.0 and _uniform_one(base, _SALT_DROP, index) < drop:
            self.counters.dropped += 1
            return (True, False, 0)
        if delay > 0.0 and _uniform_one(base, _SALT_DELAY, index) < delay:
            amount = (
                int(
                    _uniform_one(base, _SALT_AMOUNT, index)
                    * self.plan.max_delay
                )
                + 1
            )
            self.counters.delayed += 1
            return (False, False, amount)
        if dup > 0.0 and _uniform_one(base, _SALT_DUP, index) < dup:
            self.counters.duplicated += 1
            return (False, True, 0)
        return (False, False, 0)

    # ------------------------------------------------------------------
    # Per-round application
    # ------------------------------------------------------------------
    def begin_round(self, round_number: int) -> None:
        self._indices = {}
        self._round = round_number

    def _fates(
        self,
        sender: int,
        receiver: int,
        kind: str,
        count: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Decide ``count`` consecutive messages of one (edge, kind).

        Returns ``(dropped, duplicated, delay_rounds)`` arrays; a
        positive ``delay_rounds[i]`` means message ``i`` is removed now
        and re-delivered that many rounds later.  Advances the edge's
        index counter, so control and bulk calls compose.
        """
        code = kind_code(kind)
        key = (sender, receiver, code)
        start = self._indices.get(key, 0)
        self._indices[key] = start + count
        drop, dup, delay = self.plan.rates_for(sender, receiver)
        indices = np.arange(start, start + count, dtype=np.int64)
        dropped = np.zeros(count, dtype=bool)
        duplicated = np.zeros(count, dtype=bool)
        delay_rounds = np.zeros(count, dtype=np.int64)
        if drop == dup == delay == 0.0:
            return dropped, duplicated, delay_rounds
        base = _edge_base(self.plan.seed, self._round, sender, receiver, code)
        if drop > 0.0:
            dropped = _uniforms(base, _SALT_DROP, indices) < drop
        survivors = ~dropped
        if delay > 0.0:
            slipped = (
                _uniforms(base, _SALT_DELAY, indices) < delay
            ) & survivors
            if slipped.any():
                amounts = (
                    _uniforms(base, _SALT_AMOUNT, indices)
                    * self.plan.max_delay
                ).astype(np.int64) + 1
                delay_rounds[slipped] = amounts[slipped]
                survivors &= ~slipped
        if dup > 0.0:
            duplicated = (
                _uniforms(base, _SALT_DUP, indices) < dup
            ) & survivors
        return dropped, duplicated, delay_rounds

    def _batched_fates(
        self,
        bases: np.ndarray,
        indices: np.ndarray,
        drop,
        dup,
        delay,
        have_drop: bool,
        have_dup: bool,
        have_delay: bool,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One round's fates for many (edge, kind) groups at once.

        ``bases`` carries each message's edge-hash base and ``indices``
        its canonical index; the rates are scalars (uniform plans) or
        per-message arrays (edge overrides).  Message for message this
        evaluates exactly the draws a per-group :meth:`_fates` call
        would - a zero rate compares every uniform against 0.0, which is
        the same ``False`` the per-group path gets without drawing.
        """
        count = len(indices)
        if have_drop:
            dropped = _uniforms_array(bases, _SALT_DROP, indices) < drop
        else:
            dropped = np.zeros(count, dtype=bool)
        survivors = ~dropped
        delay_rounds = np.zeros(count, dtype=np.int64)
        if have_delay:
            slipped = (
                _uniforms_array(bases, _SALT_DELAY, indices) < delay
            ) & survivors
            if slipped.any():
                amounts = (
                    _uniforms_array(bases, _SALT_AMOUNT, indices)
                    * self.plan.max_delay
                ).astype(np.int64) + 1
                delay_rounds[slipped] = amounts[slipped]
                survivors &= ~slipped
        if have_dup:
            duplicated = (
                _uniforms_array(bases, _SALT_DUP, indices) < dup
            ) & survivors
        else:
            duplicated = np.zeros(count, dtype=bool)
        return dropped, duplicated, delay_rounds

    def filter_messages(
        self, round_number: int, messages: list[Message]
    ) -> list[Message]:
        """Apply the plan to one round's materialized messages.

        Call :meth:`begin_round` first.  Messages to crashed nodes are
        lost; the rest face the drop/delay/duplicate hash.  Duplicates
        are delivered immediately after their original.
        """
        if not messages:
            return []
        down = self.crashed(round_number)
        if down:
            live: list[Message] = []
            for message in messages:
                if message.receiver in down:
                    self.counters.crash_dropped += 1
                else:
                    live.append(message)
        else:
            live = messages
        if not live:
            return []
        if self._all_rates_zero:
            # Crash-only plan: nothing left to decide, and no counter
            # to advance (no hash is ever evaluated under zero rates).
            return list(live)
        # One pass assigns every message its canonical index within its
        # (edge, kind) group - composing with the per-edge counters -
        # then a single batched hash decides the whole round.
        count = len(live)
        senders = np.empty(count, dtype=np.int64)
        receivers = np.empty(count, dtype=np.int64)
        codes = np.empty(count, dtype=np.uint64)
        indices = np.empty(count, dtype=np.int64)
        next_index: dict[tuple[int, int, int], int] = {}
        edge_counters = self._indices
        for position, message in enumerate(live):
            sender = message.sender
            receiver = message.receiver
            code = kind_code(message.kind)
            senders[position] = sender
            receivers[position] = receiver
            codes[position] = code
            key = (sender, receiver, code)
            index = next_index.get(key)
            if index is None:
                index = edge_counters.get(key, 0)
            indices[position] = index
            next_index[key] = index + 1
        edge_counters.update(next_index)
        if self._uniform_rates:
            drop = self.plan.drop_rate
            dup = self.plan.duplicate_rate
            delay = self.plan.delay_rate
            have_drop, have_dup, have_delay = (
                drop > 0.0, dup > 0.0, delay > 0.0
            )
        else:
            drop = np.empty(count, dtype=np.float64)
            dup = np.empty(count, dtype=np.float64)
            delay = np.empty(count, dtype=np.float64)
            rate_cache: dict[tuple[int, int], tuple] = {}
            for position, message in enumerate(live):
                edge = (message.sender, message.receiver)
                rates = rate_cache.get(edge)
                if rates is None:
                    rates = self.plan.rates_for(*edge)
                    rate_cache[edge] = rates
                drop[position], dup[position], delay[position] = rates
            have_drop = bool(drop.any())
            have_dup = bool(dup.any())
            have_delay = bool(delay.any())
        bases = _edge_base_array(
            self.plan.seed, self._round, senders, receivers, codes
        )
        dropped, duplicated, delay_rounds = self._batched_fates(
            bases, indices, drop, dup, delay,
            have_drop, have_dup, have_delay,
        )
        dropped_list = dropped.tolist()
        duplicated_list = duplicated.tolist()
        slips = delay_rounds.tolist()
        delivered: list[Message] = []
        append = delivered.append
        delayed = self._delayed_messages
        n_dropped = n_duplicated = n_delayed = 0
        for position, message in enumerate(live):
            if dropped_list[position]:
                n_dropped += 1
                continue
            slip = slips[position]
            if slip:
                n_delayed += 1
                delayed.setdefault(round_number + slip, []).append(message)
                continue
            append(message)
            if duplicated_list[position]:
                n_duplicated += 1
                append(message)
        self.counters.dropped += n_dropped
        self.counters.duplicated += n_duplicated
        self.counters.delayed += n_delayed
        return delivered

    def filter_bulk(
        self,
        round_number: int,
        kind: str,
        senders: np.ndarray,
        receivers: np.ndarray,
        fields: np.ndarray,
        multiplicity: np.ndarray,
    ) -> np.ndarray:
        """Apply the plan to one kind's aggregate rows; returns the new
        per-row multiplicities (0 removes the row).

        Each row stands for ``multiplicity[i]`` identical messages,
        occupying consecutive indices in its edge's canonical order -
        exactly the positions the per-message loop assigns to the same
        traffic - so decisions agree bit-for-bit across the loops.
        """
        down = self.crashed(round_number)
        new_mult = multiplicity.astype(np.int64, copy=True)
        if down:
            lost = np.isin(receivers, self._down_array(round_number))
            if lost.any():
                self.counters.crash_dropped += int(new_mult[lost].sum())
                new_mult[lost] = 0
        if self._all_rates_zero:
            # Quiescent round of a crash-only plan: with zero rates
            # everywhere no per-message hash is ever evaluated, so the
            # per-edge fate index counters are never read and advancing
            # them is a no-op (they reset each round anyway); the crash
            # zeroing above is the plan's entire effect on bulk rows.
            return new_mult
        active = new_mult > 0
        if not active.any():
            return new_mult
        # Group the active rows by directed edge, edges ordered by first
        # appearance in row order and rows kept in row order within each
        # edge - the exact iteration order of the per-row dict walk this
        # replaces, which the delayed-row re-queue order depends on.
        rows = np.nonzero(active)[0]
        row_senders = senders[rows].astype(np.int64, copy=False)
        row_receivers = receivers[rows].astype(np.int64, copy=False)
        edge_keys = (row_senders << np.int64(32)) | row_receivers
        unique_keys, first_pos, inverse = np.unique(
            edge_keys, return_index=True, return_inverse=True
        )
        n_edges = len(unique_keys)
        appearance = np.argsort(first_pos, kind="stable")
        rank = np.empty(n_edges, dtype=np.int64)
        rank[appearance] = np.arange(n_edges, dtype=np.int64)
        row_rank = rank[inverse]
        order = np.argsort(row_rank, kind="stable")
        grouped_rows = rows[order]
        grouped_counts = new_mult[grouped_rows]
        edge_senders = row_senders[first_pos[appearance]]
        edge_receivers = row_receivers[first_pos[appearance]]
        edge_sizes = np.bincount(row_rank, minlength=n_edges)
        edge_row_starts = np.empty(n_edges, dtype=np.int64)
        edge_row_starts[0] = 0
        np.cumsum(edge_sizes[:-1], out=edge_row_starts[1:])
        edge_totals = np.add.reduceat(grouped_counts, edge_row_starts)
        code = kind_code(kind)
        # Advance each edge's fate counter (composing with this round's
        # control traffic of the same kind, which was filtered first).
        starts = np.empty(n_edges, dtype=np.int64)
        edge_counters = self._indices
        senders_list = edge_senders.tolist()
        receivers_list = edge_receivers.tolist()
        for j, total in enumerate(edge_totals.tolist()):
            key = (senders_list[j], receivers_list[j], code)
            start = edge_counters.get(key, 0)
            starts[j] = start
            edge_counters[key] = start + total
        if self._uniform_rates:
            drop = self.plan.drop_rate
            dup = self.plan.duplicate_rate
            delay = self.plan.delay_rate
            have_drop, have_dup, have_delay = (
                drop > 0.0, dup > 0.0, delay > 0.0
            )
            drop_pm = drop
            dup_pm = dup
            delay_pm = delay
        else:
            edge_drop = np.empty(n_edges, dtype=np.float64)
            edge_dup = np.empty(n_edges, dtype=np.float64)
            edge_delay = np.empty(n_edges, dtype=np.float64)
            for j in range(n_edges):
                edge_drop[j], edge_dup[j], edge_delay[j] = (
                    self.plan.rates_for(senders_list[j], receivers_list[j])
                )
            have_drop = bool(edge_drop.any())
            have_dup = bool(edge_dup.any())
            have_delay = bool(edge_delay.any())
        if not (have_drop or have_dup or have_delay):
            return new_mult
        # Expand to one entry per message: each row i contributes
        # ``grouped_counts[i]`` consecutive indices of its edge.
        message_row = np.repeat(
            np.arange(len(grouped_rows), dtype=np.int64), grouped_counts
        )
        row_bounds = np.empty(len(grouped_rows) + 1, dtype=np.int64)
        row_bounds[0] = 0
        np.cumsum(grouped_counts, out=row_bounds[1:])
        total_messages = int(row_bounds[-1])
        message_edge = np.repeat(
            np.arange(n_edges, dtype=np.int64), edge_totals
        )
        edge_offsets = np.empty(n_edges, dtype=np.int64)
        edge_offsets[0] = 0
        np.cumsum(edge_totals[:-1], out=edge_offsets[1:])
        message_index = (
            np.arange(total_messages, dtype=np.int64)
            - edge_offsets[message_edge]
            + starts[message_edge]
        )
        edge_bases = _edge_base_array(
            self.plan.seed, self._round, edge_senders, edge_receivers,
            np.full(n_edges, code, dtype=np.uint64),
        )
        bases = edge_bases[message_edge]
        if not self._uniform_rates:
            drop_pm = edge_drop[message_edge]
            dup_pm = edge_dup[message_edge]
            delay_pm = edge_delay[message_edge]
        dropped, duplicated, delay_rounds = self._batched_fates(
            bases, message_index, drop_pm, dup_pm, delay_pm,
            have_drop, have_dup, have_delay,
        )
        slipped = delay_rounds > 0
        starts_of_rows = row_bounds[:-1]
        dropped_per_row = np.add.reduceat(
            dropped.astype(np.int64), starts_of_rows
        )
        duplicated_per_row = np.add.reduceat(
            duplicated.astype(np.int64), starts_of_rows
        )
        slipped_per_row = np.add.reduceat(
            slipped.astype(np.int64), starts_of_rows
        )
        new_mult[grouped_rows] = (
            grouped_counts
            - dropped_per_row
            - slipped_per_row
            + duplicated_per_row
        )
        self.counters.dropped += int(dropped_per_row.sum())
        self.counters.duplicated += int(duplicated_per_row.sum())
        n_slipped = int(slipped_per_row.sum())
        if n_slipped:
            self.counters.delayed += n_slipped
            # Re-queue delayed copies grouped as (row, slip) pairs; the
            # ascending composite key reproduces the per-row walk's
            # append order (edges by first appearance, rows in row
            # order, slips ascending within a row).
            span = self.plan.max_delay + 1
            slip_keys = (
                message_row[slipped] * span + delay_rounds[slipped]
            )
            pair_keys, pair_counts = np.unique(
                slip_keys, return_counts=True
            )
            delayed = self._delayed_bulk
            for pair, count in zip(
                pair_keys.tolist(), pair_counts.tolist()
            ):
                row = int(grouped_rows[pair // span])
                slip = pair % span
                delayed.setdefault(round_number + slip, {}).setdefault(
                    kind, []
                ).append(
                    (
                        int(senders[row]),
                        int(receivers[row]),
                        tuple(int(x) for x in fields[row]),
                        count,
                    )
                )
        return new_mult

    def take_delayed(
        self, round_number: int
    ) -> tuple[list[Message], dict[str, list[_DelayedRow]]]:
        """Matured delayed traffic for this round.

        Delayed messages are delivered unconditionally (they already
        had their one fault) - unless their receiver is down *now*, in
        which case they are lost to the crash.
        """
        messages = self._delayed_messages.pop(round_number, [])
        bulk = self._delayed_bulk.pop(round_number, {})
        down = self.crashed(round_number)
        if down:
            kept_messages = []
            for message in messages:
                if message.receiver in down:
                    self.counters.crash_dropped += 1
                else:
                    kept_messages.append(message)
            messages = kept_messages
            kept_bulk: dict[str, list[_DelayedRow]] = {}
            for kind, rows in bulk.items():
                kept_rows = []
                for sender, receiver, fields, count in rows:
                    if receiver in down:
                        self.counters.crash_dropped += count
                    else:
                        kept_rows.append((sender, receiver, fields, count))
                if kept_rows:
                    kept_bulk[kind] = kept_rows
            bulk = kept_bulk
        return messages, bulk

    @property
    def has_pending_delayed(self) -> bool:
        """True while delayed traffic is still waiting to mature (the
        scheduler must not declare global termination before then)."""
        return bool(self._delayed_messages) or bool(self._delayed_bulk)

    def latest_crash_end(self) -> int | None:
        """Last round any crash window covers (None = a crash-stop
        window never ends)."""
        latest = 0
        for window in self.plan.crashes:
            if window.end is None:
                return None
            latest = max(latest, window.end)
        return latest
