"""The node-program API: what one CONGEST node can see and do.

A distributed algorithm is expressed as a :class:`NodeProgram` subclass.
The simulator instantiates one program per node and drives the synchronous
round structure; the program only ever sees its own identifier, its
neighborhood, and the messages delivered to it.  Global knowledge (``n``
for this paper's algorithm, per its Algorithm 1 input line) is passed
explicitly through :class:`NodeInfo` so that what each node "knows" is
auditable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.obs.spans import NULL_PROFILER

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.transport import BulkInbox, BulkOutbox, RoundOutbox


@dataclass(frozen=True)
class NodeInfo:
    """Static knowledge available to one node.

    Attributes
    ----------
    node_id:
        This node's unique ``O(log n)``-bit identifier (an int).
    neighbors:
        Sorted tuple of neighbor identifiers (the local ports).
    n:
        Number of nodes in the network.  The paper's Algorithm 1 takes
        ``n`` as input, so it is part of each node's initial knowledge.
    """

    node_id: int
    neighbors: tuple[int, ...]
    n: int

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class RoundContext:
    """Per-round capability handle passed to :meth:`NodeProgram.on_round`.

    Provides message sending (checked against the CONGEST limits by the
    transport) and the current round number.
    """

    __slots__ = ("_node_id", "_neighbors", "_outbox", "round_number")

    def __init__(
        self,
        node_id: int,
        neighbors: tuple[int, ...],
        outbox: "RoundOutbox",
        round_number: int,
    ) -> None:
        self._node_id = node_id
        self._neighbors = frozenset(neighbors)
        self._outbox = outbox
        self.round_number = round_number

    def send(self, neighbor: int, kind: str, *fields: int) -> None:
        """Queue a message to ``neighbor`` for delivery next round.

        Raises
        ------
        ProtocolError
            If ``neighbor`` is not adjacent to this node.
        CongestViolation
            If the message or the edge's round budget exceeds the model
            limits (raised by the transport).
        """
        if neighbor not in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id} tried to send to non-neighbor "
                f"{neighbor}"
            )
        message = Message(
            sender=self._node_id,
            receiver=neighbor,
            kind=kind,
            fields=tuple(fields),
        )
        self._outbox.push(message)

    def broadcast(self, kind: str, *fields: int) -> None:
        """Send the same message to every neighbor (one per edge)."""
        for neighbor in sorted(self._neighbors):
            self.send(neighbor, kind, *fields)

    def push_message(self, message: Message) -> None:
        """Queue a pre-built :class:`Message` (the reliability layer
        constructs its own envelopes - retransmissions and acks - and
        ships them through here under the same neighbor and bandwidth
        checks as :meth:`send`)."""
        if message.receiver not in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id} tried to send to non-neighbor "
                f"{message.receiver}"
            )
        self._outbox.push(message)


class SharedFastPathState:
    """Per-run coordination space for cooperating fast-path programs.

    The scheduler creates one instance per vectorized run and exposes it
    as ``ctx.shared`` on every :class:`BulkRoundContext`.  Programs that
    want to batch work *across* nodes store a common engine object in
    :attr:`slots` and register it as a *driver*:

    * a driver may declare ``claimed_kinds`` (a set of message-kind
      tags); the scheduler diverts in-flight bulk traffic of those kinds
      away from per-node inboxes and hands it to the driver whole - one
      set of arrays for the entire network per round;
    * after all per-node calls of a round, the scheduler invokes
      ``driver.end_round(round_number, claimed, outbox, bulk_outbox)``
      exactly once, where ``claimed`` maps each claimed kind to its
      ``(senders, receivers, fields, multiplicity)`` arrays.

    This is purely a performance transformation: a driver must produce
    byte-identical traffic and randomness to its per-node counterpart
    (the walk engine's equivalence is pinned by tests).
    """

    def __init__(self) -> None:
        self.slots: dict[str, object] = {}
        self.drivers: list[object] = []
        # The run's FaultRuntime (None on fault-free runs).  Drivers
        # consult it for the crashed-node set so they can suppress a
        # down node's emissions exactly as the per-node loop does by
        # skipping the node outright.
        self.fault_runtime: object | None = None
        # Telemetry handles (observation-only; see repro.obs).  The
        # scheduler installs the run's SpanProfiler so drivers can wrap
        # their hot kernels in spans, and the InstrumentSet (None when
        # telemetry is off) for histogram/counter observations.  Neither
        # may ever influence protocol behavior or randomness.
        self.profiler: object = NULL_PROFILER
        self.instruments: object | None = None
        # Requested worker-process count for the counting engine (None
        # or 0 = single-process).  Installed by the scheduler from its
        # ``num_shards`` parameter; the protocol reads it when choosing
        # which engine class to instantiate.
        self.num_shards: int | None = None
        # Wake requests drained by the scheduler after the driver pass:
        # a driver (or a program called *from* a driver, outside the
        # per-node loop) that changes a node's phase can no longer rely
        # on the scheduler's post-step ``next_wake`` query, so it files
        # the node's next calendar round here instead.
        self.wake_requests: list[tuple[int, int]] = []

    def register_driver(self, driver: object) -> None:
        """Register a cross-node driver; drivers run in registration
        order after each round's per-node calls."""
        self.drivers.append(driver)

    def request_wake(self, node: int, round_number: int) -> None:
        """Ask the scheduler to step ``node`` at ``round_number`` even
        if no mail arrives for it (see :meth:`VectorizedProgram.next_wake`)."""
        self.wake_requests.append((node, round_number))


class BulkRoundContext(RoundContext):
    """Round context of the scheduler's vectorized fast path.

    Adds :meth:`send_bulk` on top of the ordinary per-message ``send``:
    a program can ship one *array* of counted, same-kind messages to many
    neighbors at once, and the transport accounts for them in aggregate
    (same message counts and bit charges, no per-message Python
    objects).  The ``bulk`` attribute is the capability marker helpers
    test for (``getattr(ctx, "bulk", None)``), so shared program logic
    runs unchanged on both paths.  ``shared`` is the run-wide
    :class:`SharedFastPathState` cooperating programs coordinate
    through.
    """

    __slots__ = ("bulk", "shared", "_neighbor_array")

    def __init__(
        self,
        node_id: int,
        neighbors: tuple[int, ...],
        outbox: "RoundOutbox",
        round_number: int,
        bulk_outbox: "BulkOutbox",
        neighbor_array: np.ndarray,
        shared: SharedFastPathState | None = None,
    ) -> None:
        super().__init__(node_id, neighbors, outbox, round_number)
        self.bulk = bulk_outbox
        self.shared = shared
        self._neighbor_array = neighbor_array  # sorted, for validation

    def send_bulk(
        self,
        kind: str,
        receivers: np.ndarray,
        fields: np.ndarray,
        multiplicity: np.ndarray | None = None,
    ) -> None:
        """Queue ``len(receivers)`` aggregate messages for next round.

        ``fields`` is an ``(len(receivers), f)`` integer matrix - row
        ``i`` is the payload of the message(s) to ``receivers[i]``.
        ``multiplicity[i]`` identical copies are charged (default 1
        each); this is how per-token walk traffic under the QUEUE policy
        keeps its exact per-edge message count without materializing the
        tokens.
        """
        if len(receivers) == 0:
            return
        positions = np.searchsorted(self._neighbor_array, receivers)
        valid = (positions < len(self._neighbor_array)) & (
            self._neighbor_array[
                np.minimum(positions, len(self._neighbor_array) - 1)
            ]
            == receivers
        )
        if not valid.all():
            bad = receivers[~valid][0]
            raise ProtocolError(
                f"node {self._node_id} tried to bulk-send to non-neighbor "
                f"{int(bad)}"
            )
        self.bulk.push(self._node_id, kind, receivers, fields, multiplicity)


class NodeProgram(abc.ABC):
    """Base class for per-node distributed programs.

    Lifecycle::

        program = MyProgram(info, rng)     # framework constructs
        program.on_start(ctx)              # round 0, no inbox
        while not all halted:
            program.on_round(ctx, inbox)   # rounds 1, 2, ...

    A program signals local completion with :meth:`halt`; the simulation
    stops when every program has halted and no messages are in flight.
    A halted node's ``on_round`` is still invoked if messages arrive for
    it (a real network cannot refuse delivery), which un-halts it.
    """

    def __init__(self, info: NodeInfo, rng: np.random.Generator) -> None:
        self.info = info
        self.rng = rng
        self._halted = False
        # Optional observer called with +1/-1 on halt/unhalt transitions;
        # the fast-path scheduler installs one so global termination is
        # an O(1) counter check instead of an O(n) scan per round.
        self._halt_sink = None

    # -- framework hooks -------------------------------------------------
    def on_start(self, ctx: RoundContext) -> None:
        """Called once before the first communication round."""

    @abc.abstractmethod
    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """Called each round with the messages delivered this round."""

    # -- helpers ----------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.info.node_id

    @property
    def degree(self) -> int:
        return self.info.degree

    @property
    def neighbors(self) -> tuple[int, ...]:
        return self.info.neighbors

    def halt(self) -> None:
        """Mark this node locally done for termination accounting."""
        if not self._halted:
            self._halted = True
            if self._halt_sink is not None:
                self._halt_sink(1)

    def unhalt(self) -> None:
        if self._halted:
            self._halted = False
            if self._halt_sink is not None:
                self._halt_sink(-1)

    @property
    def halted(self) -> bool:
        return self._halted


class VectorizedProgram(NodeProgram):
    """Opt-in capability: a program the scheduler may run in aggregate.

    When *every* program of a simulation subclasses this (and nothing
    forces per-message fidelity - no ``record_messages``, no tracer, no
    drop injection), the scheduler switches to its fast path: each round
    it calls :meth:`on_bulk_round` with the ordinary control-message
    inbox plus a :class:`~repro.congest.transport.BulkInbox` of
    aggregated array traffic, and the context supports
    :meth:`BulkRoundContext.send_bulk`.  Semantics, round counts, and
    bandwidth accounting are identical to per-message dispatch - the
    equivalence is tested, not assumed (``tests/test_walks_batched.py``).

    Contract:

    * :meth:`on_round` must still implement the per-message behavior
      (the slow path, the async executor, and replay all use it);
    * :meth:`on_bulk_round` must consume randomness identically to
      :meth:`on_round` for the same multiset of arrivals;
    * :attr:`bulk_idle` may return True only when a round with an empty
      inbox would be a no-op (no pending sends, no timer-driven state
      change) - the scheduler then skips the call entirely.
    """

    @abc.abstractmethod
    def on_bulk_round(
        self,
        ctx: "BulkRoundContext",
        inbox: list[Message],
        bulk: "BulkInbox | None",
    ) -> None:
        """Fast-path round: control messages in ``inbox``, aggregate
        traffic in ``bulk`` (None when nothing bulk arrived)."""

    @property
    def bulk_idle(self) -> bool:
        """True when an empty round would not change this node's state."""
        return False

    def next_wake(self, round_number: int) -> int | None:
        """Earliest future round this program must be stepped even if no
        mail arrives for it (``None`` = only mail wakes it).

        Queried by the fast-path scheduler after every step (and once
        after ``on_start``).  The returned round must be strictly greater
        than ``round_number``.  The default preserves the historical
        semantics exactly: a non-``bulk_idle`` program runs every round,
        an idle one only when mail arrives.  Programs with calendar-
        driven phases (e.g. "do nothing until round ``n``") override
        this so the scheduler's per-round work is proportional to the
        set of *active* nodes, not ``n`` - the difference between
        O(rounds * n) and O(total work) at large ``n``.

        Contract: between ``round_number`` and the returned wake round,
        an empty (mail-less) step of this program must be a no-op, for
        the same reason ``bulk_idle`` skipping is safe.  A state change
        driven from *outside* the per-node loop (a driver switching the
        program's phase) must be paired with a
        :meth:`SharedFastPathState.request_wake` call when the new phase
        needs calendar wakes."""
        return None if self.bulk_idle else round_number + 1
