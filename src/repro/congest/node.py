"""The node-program API: what one CONGEST node can see and do.

A distributed algorithm is expressed as a :class:`NodeProgram` subclass.
The simulator instantiates one program per node and drives the synchronous
round structure; the program only ever sees its own identifier, its
neighborhood, and the messages delivered to it.  Global knowledge (``n``
for this paper's algorithm, per its Algorithm 1 input line) is passed
explicitly through :class:`NodeInfo` so that what each node "knows" is
auditable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.transport import RoundOutbox


@dataclass(frozen=True)
class NodeInfo:
    """Static knowledge available to one node.

    Attributes
    ----------
    node_id:
        This node's unique ``O(log n)``-bit identifier (an int).
    neighbors:
        Sorted tuple of neighbor identifiers (the local ports).
    n:
        Number of nodes in the network.  The paper's Algorithm 1 takes
        ``n`` as input, so it is part of each node's initial knowledge.
    """

    node_id: int
    neighbors: tuple[int, ...]
    n: int

    @property
    def degree(self) -> int:
        return len(self.neighbors)


class RoundContext:
    """Per-round capability handle passed to :meth:`NodeProgram.on_round`.

    Provides message sending (checked against the CONGEST limits by the
    transport) and the current round number.
    """

    __slots__ = ("_node_id", "_neighbors", "_outbox", "round_number")

    def __init__(
        self,
        node_id: int,
        neighbors: tuple[int, ...],
        outbox: "RoundOutbox",
        round_number: int,
    ) -> None:
        self._node_id = node_id
        self._neighbors = frozenset(neighbors)
        self._outbox = outbox
        self.round_number = round_number

    def send(self, neighbor: int, kind: str, *fields: int) -> None:
        """Queue a message to ``neighbor`` for delivery next round.

        Raises
        ------
        ProtocolError
            If ``neighbor`` is not adjacent to this node.
        CongestViolation
            If the message or the edge's round budget exceeds the model
            limits (raised by the transport).
        """
        if neighbor not in self._neighbors:
            raise ProtocolError(
                f"node {self._node_id} tried to send to non-neighbor "
                f"{neighbor}"
            )
        message = Message(
            sender=self._node_id,
            receiver=neighbor,
            kind=kind,
            fields=tuple(fields),
        )
        self._outbox.push(message)

    def broadcast(self, kind: str, *fields: int) -> None:
        """Send the same message to every neighbor (one per edge)."""
        for neighbor in sorted(self._neighbors):
            self.send(neighbor, kind, *fields)


class NodeProgram(abc.ABC):
    """Base class for per-node distributed programs.

    Lifecycle::

        program = MyProgram(info, rng)     # framework constructs
        program.on_start(ctx)              # round 0, no inbox
        while not all halted:
            program.on_round(ctx, inbox)   # rounds 1, 2, ...

    A program signals local completion with :meth:`halt`; the simulation
    stops when every program has halted and no messages are in flight.
    A halted node's ``on_round`` is still invoked if messages arrive for
    it (a real network cannot refuse delivery), which un-halts it.
    """

    def __init__(self, info: NodeInfo, rng: np.random.Generator) -> None:
        self.info = info
        self.rng = rng
        self._halted = False

    # -- framework hooks -------------------------------------------------
    def on_start(self, ctx: RoundContext) -> None:
        """Called once before the first communication round."""

    @abc.abstractmethod
    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """Called each round with the messages delivered this round."""

    # -- helpers ----------------------------------------------------------
    @property
    def node_id(self) -> int:
        return self.info.node_id

    @property
    def degree(self) -> int:
        return self.info.degree

    @property
    def neighbors(self) -> tuple[int, ...]:
        return self.info.neighbors

    def halt(self) -> None:
        """Mark this node locally done for termination accounting."""
        self._halted = True

    def unhalt(self) -> None:
        self._halted = False

    @property
    def halted(self) -> bool:
        return self._halted
