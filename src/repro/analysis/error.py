"""Approximation-error metrics between centrality dictionaries.

The paper's accuracy statements are multiplicative (``(1 - epsilon)``
approximation ratio, Theorems 1-2), so relative errors are the primary
metric; absolute errors are reported alongside because relative error
explodes on near-zero values (networkx-convention leaves, for instance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import GraphError


def _aligned(estimate: dict, exact: dict) -> tuple[np.ndarray, np.ndarray]:
    if set(estimate) != set(exact):
        raise GraphError("estimate and exact cover different node sets")
    if not exact:
        raise GraphError("empty centrality dictionaries")
    keys = sorted(exact, key=repr)
    return (
        np.array([estimate[k] for k in keys], dtype=float),
        np.array([exact[k] for k in keys], dtype=float),
    )


def max_absolute_error(estimate: dict, exact: dict) -> float:
    est, ref = _aligned(estimate, exact)
    return float(np.abs(est - ref).max())


def mean_absolute_error(estimate: dict, exact: dict) -> float:
    est, ref = _aligned(estimate, exact)
    return float(np.abs(est - ref).mean())


def max_relative_error(estimate: dict, exact: dict) -> float:
    """Max of |est - ref| / ref over nodes with nonzero reference."""
    est, ref = _aligned(estimate, exact)
    mask = ref != 0
    if not mask.any():
        raise GraphError("all reference values are zero")
    return float((np.abs(est - ref)[mask] / ref[mask]).max())


def mean_relative_error(estimate: dict, exact: dict) -> float:
    est, ref = _aligned(estimate, exact)
    mask = ref != 0
    if not mask.any():
        raise GraphError("all reference values are zero")
    return float((np.abs(est - ref)[mask] / ref[mask]).mean())


@dataclass(frozen=True)
class ErrorSummary:
    """All four error metrics in one record (one experiment-table row)."""

    max_absolute: float
    mean_absolute: float
    max_relative: float
    mean_relative: float

    def as_dict(self) -> dict[str, float]:
        return {
            "max_abs": self.max_absolute,
            "mean_abs": self.mean_absolute,
            "max_rel": self.max_relative,
            "mean_rel": self.mean_relative,
        }


def compare_centrality(estimate: dict, exact: dict) -> ErrorSummary:
    """Bundle the four standard error metrics."""
    return ErrorSummary(
        max_absolute=max_absolute_error(estimate, exact),
        mean_absolute=mean_absolute_error(estimate, exact),
        max_relative=max_relative_error(estimate, exact),
        mean_relative=mean_relative_error(estimate, exact),
    )
