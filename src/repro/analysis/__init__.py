"""Experiment support: error metrics, rank agreement, scaling fits."""

from repro.analysis.bootstrap import (
    ConfidenceInterval,
    bootstrap_mean_ci,
    seeds_needed_for_width,
)
from repro.analysis.error import (
    ErrorSummary,
    compare_centrality,
    max_absolute_error,
    max_relative_error,
    mean_absolute_error,
    mean_relative_error,
)
from repro.analysis.fitting import (
    PowerLawFit,
    fit_nlogn,
    fit_power_law,
)
from repro.analysis.ranking import (
    kendall_tau,
    spearman_rho,
    top_k_overlap,
)

__all__ = [
    "ConfidenceInterval",
    "ErrorSummary",
    "PowerLawFit",
    "bootstrap_mean_ci",
    "seeds_needed_for_width",
    "compare_centrality",
    "fit_nlogn",
    "fit_power_law",
    "kendall_tau",
    "max_absolute_error",
    "max_relative_error",
    "mean_absolute_error",
    "mean_relative_error",
    "spearman_rho",
    "top_k_overlap",
]
