"""Empirical complexity fits for the scaling experiments (E6).

``fit_power_law`` estimates the exponent of ``y ~ c * x^p`` by
least-squares in log space; ``fit_nlogn`` checks how well measured round
counts track the paper's ``n log n`` prediction by fitting the
coefficient and reporting the residual quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import GraphError


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ coefficient * x ** exponent`` with an R^2 quality score."""

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.coefficient * x**self.exponent


def _validate(xs, ys) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    if xs.shape != ys.shape or xs.ndim != 1:
        raise GraphError("xs and ys must be 1-D arrays of equal length")
    if len(xs) < 2:
        raise GraphError("need at least 2 points to fit")
    if np.any(xs <= 0) or np.any(ys <= 0):
        raise GraphError("power-law fits need strictly positive data")
    return xs, ys


def fit_power_law(xs, ys) -> PowerLawFit:
    """Least-squares fit of ``log y = p log x + log c``."""
    xs, ys = _validate(xs, ys)
    log_x = np.log(xs)
    log_y = np.log(ys)
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = np.sum((log_y - predicted) ** 2)
    total = np.sum((log_y - log_y.mean()) ** 2)
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=float(r_squared),
    )


@dataclass(frozen=True)
class NLogNFit:
    """``y ~ coefficient * x log2 x`` with relative residuals."""

    coefficient: float
    max_relative_residual: float

    def predict(self, x: float) -> float:
        return self.coefficient * x * np.log2(max(2.0, x))


def fit_nlogn(xs, ys) -> NLogNFit:
    """Best single coefficient for ``y = c * x log2 x`` and its fit
    quality (max relative residual; small = the model explains the
    data)."""
    xs, ys = _validate(xs, ys)
    basis = xs * np.log2(np.maximum(2.0, xs))
    coefficient = float(np.dot(basis, ys) / np.dot(basis, basis))
    predicted = coefficient * basis
    residuals = np.abs(predicted - ys) / ys
    return NLogNFit(
        coefficient=coefficient,
        max_relative_residual=float(residuals.max()),
    )
