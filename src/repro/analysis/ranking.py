"""Rank-agreement metrics between centrality measures.

Centrality users mostly care about orderings ("who are the top-k
brokers"), so experiments E1 and E11 report rank correlations next to
value errors.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.graphs.graph import GraphError


def _aligned(a: dict, b: dict) -> tuple[np.ndarray, np.ndarray]:
    if set(a) != set(b):
        raise GraphError("dictionaries cover different node sets")
    if len(a) < 2:
        raise GraphError("need at least 2 nodes to rank")
    keys = sorted(a, key=repr)
    return (
        np.array([a[k] for k in keys], dtype=float),
        np.array([b[k] for k in keys], dtype=float),
    )


def kendall_tau(a: dict, b: dict) -> float:
    """Kendall's tau-b between two centrality assignments."""
    left, right = _aligned(a, b)
    tau = stats.kendalltau(left, right).statistic
    return float(tau) if not np.isnan(tau) else 0.0


def spearman_rho(a: dict, b: dict) -> float:
    """Spearman rank correlation between two centrality assignments."""
    left, right = _aligned(a, b)
    rho = stats.spearmanr(left, right).statistic
    return float(rho) if not np.isnan(rho) else 0.0


def top_k_overlap(a: dict, b: dict, k: int) -> float:
    """|top-k(a) cap top-k(b)| / k - the "did we find the same brokers"
    metric.  Ties are broken by node repr for determinism."""
    if set(a) != set(b):
        raise GraphError("dictionaries cover different node sets")
    if not 1 <= k <= len(a):
        raise GraphError(f"k must be in 1..{len(a)}")
    top_a = set(sorted(a, key=lambda v: (-a[v], repr(v)))[:k])
    top_b = set(sorted(b, key=lambda v: (-b[v], repr(v)))[:k])
    return len(top_a & top_b) / k
