"""Bootstrap confidence intervals for experiment summaries.

Experiment rows report means over a handful of seeds; bootstrap
percentile intervals say how much those means can be trusted without
distributional assumptions - exactly right for the skewed error
distributions heavy-tailed workloads produce (E18).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import GraphError


@dataclass(frozen=True)
class ConfidenceInterval:
    """A percentile bootstrap interval around a point estimate."""

    point: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def contains(self, value: float) -> bool:
        return self.low <= value <= self.high


def bootstrap_mean_ci(
    samples,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int | None = None,
) -> ConfidenceInterval:
    """Percentile bootstrap CI for the mean of ``samples``.

    Raises
    ------
    GraphError
        On empty samples or a nonsensical confidence level.
    """
    values = np.asarray(list(samples), dtype=float)
    if values.size == 0:
        raise GraphError("bootstrap needs at least one sample")
    if not 0.0 < confidence < 1.0:
        raise GraphError("confidence must be in (0, 1)")
    if resamples < 10:
        raise GraphError("resamples must be >= 10")
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, values.size, size=(resamples, values.size))
    means = values[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [alpha, 1.0 - alpha])
    return ConfidenceInterval(
        point=float(values.mean()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )


def seeds_needed_for_width(
    samples,
    target_width: float,
    confidence: float = 0.95,
    seed: int | None = None,
) -> int:
    """Rough extrapolation: how many seeds until the CI is this tight?

    Uses the ``width ~ 1/sqrt(k)`` scaling of the bootstrap interval.
    """
    if target_width <= 0:
        raise GraphError("target_width must be positive")
    interval = bootstrap_mean_ci(samples, confidence=confidence, seed=seed)
    if interval.width <= target_width:
        return len(list(samples))
    k = len(list(samples))
    ratio = interval.width / target_width
    return int(np.ceil(k * ratio**2))
