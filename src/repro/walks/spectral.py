"""Spectral analysis of the absorbing walk (Theorem 1 machinery).

Theorem 1 argues: the substochastic matrix ``M_t`` has spectral radius
``lambda < 1`` (via ``||M_t^D||_1 < 1``), so the surviving walk mass
decays like ``~ lambda^k`` and ``l = O(n)`` rounds leave at most an
``epsilon`` fraction alive.  These helpers compute the actual ``lambda``
and the actual smallest truncation length achieving a target ``epsilon``,
so the experiments can compare the proof's worst case against measured
behaviour per graph family.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphError
from repro.walks.absorbing import absorbing_transition_matrix, surviving_mass


def spectral_radius_absorbing(graph: Graph, target) -> float:
    """Spectral radius of ``M_t`` (strictly < 1 on connected graphs)."""
    m_t = absorbing_transition_matrix(graph, target)
    eigenvalues = np.linalg.eigvals(m_t)
    return float(np.max(np.abs(eigenvalues)))


def decay_rate(graph: Graph, target, horizon: int | None = None) -> float:
    """Empirical per-round survival decay: the geometric rate fitted to
    ``max_s P[walk from s alive after r rounds]`` over the window where it
    is numerically meaningful.

    Returns a value in (0, 1); smaller means faster absorption.
    """
    n = graph.num_nodes
    if horizon is None:
        horizon = max(8, 4 * n)
    mass = surviving_mass(graph, target, horizon).max(axis=1)
    # Fit on the geometric tail, skipping the transient head.
    head = max(1, horizon // 4)
    tail = mass[head:]
    positive = tail > 1e-300
    if positive.sum() < 2:
        return 0.0
    values = np.log(tail[positive])
    rounds = np.arange(head, horizon + 1)[positive]
    slope = np.polyfit(rounds, values, 1)[0]
    return float(np.exp(slope))


def length_for_epsilon(
    graph: Graph, target, epsilon: float, max_length: int | None = None
) -> int:
    """Smallest ``l`` with ``max_s P[alive after l rounds] <= epsilon``.

    This is the exact, per-instance version of Theorem 1's ``l = O(n)``:
    the theorem guarantees such an ``l`` exists and is linear in ``n``;
    this function measures it.

    Raises
    ------
    GraphError
        If ``epsilon`` is outside (0, 1) or the search limit is hit
        (numerically possible only on pathological inputs).
    """
    if not 0.0 < epsilon < 1.0:
        raise GraphError("epsilon must be in (0, 1)")
    n = graph.num_nodes
    if max_length is None:
        # Theorem 1 promises O(n); leave generous slack for the constant,
        # which depends on the spectral gap.
        max_length = max(200, 200 * n)
    m_t = absorbing_transition_matrix(graph, target)
    state = np.eye(n - 1)
    length = 0
    while length <= max_length:
        alive = state.sum(axis=0).max()
        if alive <= epsilon:
            return length
        state = m_t @ state
        length += 1
    raise GraphError(
        f"survival did not fall below {epsilon} within {max_length} rounds"
    )


def algebraic_connectivity(graph: Graph) -> float:
    """The Fiedler value: second-smallest Laplacian eigenvalue.

    The spectral gap behind Theorem 1's hidden constant: absorption
    speed (hence the honest walk length ``l(eps)``) scales like
    ``1/gap``, which is why cycles (gap ``Theta(1/n^2)``) need
    quadratic walks while expanders (constant gap) live up to the
    theorem's ``l = O(n)`` (experiment E2).
    """
    from repro.graphs.properties import is_connected

    if graph.num_nodes < 2:
        raise GraphError("algebraic connectivity needs >= 2 nodes")
    if not is_connected(graph):
        return 0.0
    eigenvalues = np.linalg.eigvalsh(graph.laplacian_matrix())
    return float(np.sort(eigenvalues)[1])


def relaxation_time(graph: Graph) -> float:
    """``1 / algebraic connectivity``: the walk's mixing-time scale."""
    gap = algebraic_connectivity(graph)
    if gap <= 0:
        raise GraphError("relaxation time undefined: disconnected graph")
    return 1.0 / gap


def theorem1_summary(
    graph: Graph, target, epsilons: tuple[float, ...] = (0.1, 0.01, 0.001)
) -> dict[str, float]:
    """One row of the E2 experiment: spectral radius, decay rate, and the
    measured ``l(epsilon)`` for several epsilon values."""
    summary: dict[str, float] = {
        "n": float(graph.num_nodes),
        "spectral_radius": spectral_radius_absorbing(graph, target),
        "decay_rate": decay_rate(graph, target),
    }
    for epsilon in epsilons:
        summary[f"l(eps={epsilon})"] = float(
            length_for_epsilon(graph, target, epsilon)
        )
    return summary
