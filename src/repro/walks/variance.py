"""Second moments of absorbing-walk visit counts.

Theorem 3's Chernoff argument assumes the per-node visit count behaves
like a sum of well-concentrated contributions with ``E[X] = cK``.  The
actual *variance* of a single walk's visit count is computable in closed
form from the fundamental matrix ``N = (I - M_t)^{-1}``:

    Var[visits to i | start s] = N_is * (2 * N_ii - 1) - N_is^2

(standard absorbing-chain identity; ``N_ii`` is the expected number of
returns to ``i`` once there, which is exactly what explodes on trees and
barbells - a walk that reaches a remote branch bounces there many times).
The experiments use this to *predict* which families need larger K, and
a test validates the identity against simulation.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphError
from repro.walks.absorbing import expected_visits


def visit_count_variance(graph: Graph, target) -> np.ndarray:
    """``Var[visits to i | walk from s]`` as an (n, n) array ``V[i, s]``.

    Rows/columns at the absorbing target are zero.
    """
    visits = expected_visits(graph, target)
    diagonal = np.diag(visits)
    variance = visits * (2.0 * diagonal[:, None] - 1.0) - visits**2
    # Numerical floor: true variances are >= 0.
    return np.maximum(variance, 0.0)


def relative_visit_dispersion(graph: Graph, target) -> float:
    """Max over (i, s) of ``std / mean`` for visit counts with mean > 0.

    The practical "how much bigger must K be" factor: Theorem 3's
    constant scales with the square of this dispersion.  Expanders sit
    near 1-3; trees and barbells reach an order of magnitude more.
    """
    visits = expected_visits(graph, target)
    variance = visit_count_variance(graph, target)
    mask = visits > 1e-12
    if not mask.any():
        raise GraphError("no visited (node, source) pairs")
    dispersion = np.sqrt(variance[mask]) / visits[mask]
    return float(dispersion.max())


def walks_needed_for_dispersion(
    graph: Graph, target, delta: float = 0.25, failure: float = 0.05
) -> int:
    """A Chebyshev-based K estimate honoring the measured dispersion.

    ``P[|mean_K - mu| > delta mu] <= (sigma/mu)^2 / (K delta^2)``; solving
    for the worst (i, s) pair gives a per-instance K that the uniform
    ``O(log n)`` schedule can underestimate on heavy-tailed families.
    """
    if not 0 < delta < 1:
        raise GraphError("delta must be in (0, 1)")
    if not 0 < failure < 1:
        raise GraphError("failure must be in (0, 1)")
    dispersion = relative_visit_dispersion(graph, target)
    return max(1, int(np.ceil(dispersion**2 / (failure * delta**2))))
