"""Fast centralized Monte-Carlo walk engine (numpy-vectorized).

Samples exactly the same process as the distributed counting phase
(Algorithm 1): ``K`` truncated absorbing walks per source, visit counts
``xi[v, s]`` accumulated per (node, source) pair, the start counted as a
visit (the ``r = 0`` term of Eq. 3), arrivals at the target absorbed and
NOT counted (the target row of ``T`` is zero).

The CONGEST simulator reproduces the same semantics message-by-message
with bandwidth enforcement; this engine exists so that accuracy
experiments can scale to graph sizes where per-message simulation is too
slow.  A cross-validation test asserts the two agree in distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import Graph, GraphError
from repro.graphs.properties import is_connected
from repro.walks.batched import csr_arrays, step_tokens


@dataclass(frozen=True)
class WalkCounts:
    """Result of one counting run.

    Attributes
    ----------
    counts:
        ``(n, n)`` integer array in canonical order: ``counts[v, s]`` is
        the total number of visits at ``v`` by walks launched at ``s``
        (the paper's ``xi_v^s``).
    target_index:
        Canonical index of the absorbing target.
    walks_per_source:
        ``K``.
    length:
        The truncation length ``l``.
    absorbed, expired:
        How many walks ended by absorption vs by running out of length
        (diagnostics for the Theorem 1/2 experiments: ``expired /
        (absorbed + expired)`` estimates the surviving fraction epsilon).
    """

    counts: np.ndarray
    target_index: int
    walks_per_source: int
    length: int
    absorbed: int
    expired: int

    @property
    def survival_fraction(self) -> float:
        """Fraction of walks that hit the length cap (Theorem 1's epsilon)."""
        total = self.absorbed + self.expired
        return self.expired / total if total else 0.0


# Re-exported for back-compat: the CSR builder now lives in the batched
# kernel shared with the distributed fast path.
_csr_arrays = csr_arrays


def simulate_walk_counts(
    graph: Graph,
    target,
    length: int,
    walks_per_source: int,
    seed: int | np.random.Generator | None = None,
    count_initial: bool = True,
) -> WalkCounts:
    """Run ``K`` truncated absorbing walks from every source.

    Parameters
    ----------
    graph:
        Connected graph with >= 2 nodes.
    target:
        The absorbing node ``t`` (walks from it are not launched: they
        would be absorbed at birth, matching ``T``'s zero column).
    length:
        Maximum hops per walk (``l``).
    walks_per_source:
        ``K``.
    seed:
        Seed or generator for reproducibility.
    count_initial:
        Count the walk's starting position as a visit (the Eq. 3
        ``r = 0`` term).  ``False`` reproduces the literal reading of
        Algorithm 1, which only counts on message receipt; the difference
        is measured by a dedicated test.
    """
    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    if not is_connected(graph):
        raise GraphError("graph must be connected")
    if length < 0:
        raise GraphError("length must be >= 0")
    if walks_per_source < 1:
        raise GraphError("walks_per_source must be >= 1")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )

    n = graph.num_nodes
    t_idx = graph.index_of(target)
    offsets, targets = csr_arrays(graph)
    degrees = (offsets[1:] - offsets[:-1]).astype(np.int64)

    counts = np.zeros((n, n), dtype=np.int64)
    # Launch K walks per non-target source.
    source_indices = np.array(
        [i for i in range(n) if i != t_idx], dtype=np.int64
    )
    walk_sources = np.repeat(source_indices, walks_per_source)
    current = walk_sources.copy()
    if count_initial:
        np.add.at(counts, (current, walk_sources), 1)

    absorbed = 0
    for _ in range(length):
        if current.size == 0:
            break
        nxt = step_tokens(rng, offsets, targets, degrees, current)
        hit_target = nxt == t_idx
        absorbed += int(hit_target.sum())
        survivors = ~hit_target
        current = nxt[survivors]
        walk_sources = walk_sources[survivors]
        if current.size:
            np.add.at(counts, (current, walk_sources), 1)

    expired = int(current.size)
    return WalkCounts(
        counts=counts,
        target_index=t_idx,
        walks_per_source=walks_per_source,
        length=length,
        absorbed=absorbed,
        expired=expired,
    )
