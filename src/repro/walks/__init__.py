"""Random-walk machinery: absorbing-chain analysis and simulation.

``absorbing`` computes the matrix quantities of the paper's section IV
exactly (transition matrix ``M_t``, expected visits, the grounded inverse
``T``); ``spectral`` measures the truncation decay that Theorem 1 bounds;
``simulate`` is a fast vectorized Monte-Carlo engine with the same
sampling semantics as the distributed counting phase; ``token`` defines
the walk token the CONGEST protocol ships around.
"""

from repro.walks.absorbing import (
    absorption_probability_by_round,
    expected_visits,
    grounded_inverse,
    surviving_mass,
    transition_matrix,
)
from repro.walks.simulate import WalkCounts, simulate_walk_counts
from repro.walks.spectral import (
    decay_rate,
    length_for_epsilon,
    spectral_radius_absorbing,
)
from repro.walks.resistance import (
    commute_time,
    effective_resistance,
    hitting_time,
    laplacian_pseudoinverse,
    resistance_matrix,
)
from repro.walks.token import WalkToken
from repro.walks.variance import (
    relative_visit_dispersion,
    visit_count_variance,
)

__all__ = [
    "WalkCounts",
    "WalkToken",
    "absorption_probability_by_round",
    "commute_time",
    "decay_rate",
    "effective_resistance",
    "expected_visits",
    "grounded_inverse",
    "hitting_time",
    "laplacian_pseudoinverse",
    "length_for_epsilon",
    "relative_visit_dispersion",
    "resistance_matrix",
    "simulate_walk_counts",
    "spectral_radius_absorbing",
    "surviving_mass",
    "transition_matrix",
    "visit_count_variance",
]
