"""Vectorized batched-walk kernel: advance many walk tokens at once.

The counting phase of the paper's Algorithm 1 moves `O(nK)` walk tokens
simultaneously, one hop per round.  Executing each token as its own
Python object (and each hop as its own `rng` call) makes the simulation
cost `O(tokens)` Python dispatches per round; Das Sarma et al.'s
distributed random-walk framework (arXiv:1302.4544) observes that the
whole per-round step is a single *batched* primitive: every token
resident at a node advances by one i.i.d. uniform step, so all of a
node's tokens can be routed with one vectorized draw over its CSR
adjacency row.

This module is that primitive, in three layers:

* **group algebra** - in-flight tokens are represented as *groups*
  ``(source, remaining, half) -> count`` held in parallel numpy arrays.
  :func:`aggregate_groups` canonicalizes any multiset of groups
  (deterministically, independent of arrival order), which is what makes
  the per-message and the aggregate transport paths produce *identical*
  random streams;
* **sampling** - :func:`route_groups` advances all tokens at one node
  with a single ``rng.integers`` draw (`thin_groups` is the damped-mode
  binomial companion).  Both paths of the simulator call these with the
  same per-node generator in the same canonical order, so seeded runs
  agree token-for-token;
* **token arrays** - :func:`step_tokens` is the fully centralized
  variant used by the Monte-Carlo engine (`repro.walks.simulate`), where
  no per-node bookkeeping is needed at all.

`repro.core.walk_manager.WalkManager` builds the per-node, bandwidth-
constrained state machine on top of these kernels; the CONGEST
scheduler's fast path (`repro.congest.scheduler`) moves the resulting
groups between nodes without materializing per-token messages.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph

__all__ = [
    "aggregate_groups",
    "aggregate_network_groups",
    "csr_arrays",
    "route_groups",
    "step_tokens",
    "thin_groups",
]


def csr_arrays(graph: Graph) -> tuple[np.ndarray, np.ndarray]:
    """Compressed adjacency ``(offsets, targets)`` in canonical index
    space: node ``i``'s neighbors are ``targets[offsets[i]:offsets[i+1]]``,
    sorted ascending."""
    order = graph.canonical_order()
    index = {node: i for i, node in enumerate(order)}
    offsets = np.zeros(len(order) + 1, dtype=np.int64)
    targets_list: list[int] = []
    for i, node in enumerate(order):
        neighbor_indices = sorted(index[v] for v in graph.neighbors(node))
        targets_list.extend(neighbor_indices)
        offsets[i + 1] = len(targets_list)
    return offsets, np.array(targets_list, dtype=np.int64)


def aggregate_groups(
    sources: np.ndarray,
    remainings: np.ndarray,
    halves: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Merge token groups with identical ``(source, remaining, half)``.

    Returns the groups in *canonical order* (sorted by the tuple), which
    is the load-bearing property: both simulator paths feed the merged
    groups to :func:`route_groups` in this order, so the hop randomness
    they consume is identical no matter how arrivals were interleaved.
    """
    if len(sources) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy(), empty.copy()
    base = int(remainings.max()) + 1
    key = (sources * base + remainings) * 2 + halves
    _, first, inverse = np.unique(key, return_index=True, return_inverse=True)
    merged = np.bincount(inverse, weights=counts).astype(np.int64)
    return sources[first], remainings[first], halves[first], merged


def aggregate_network_groups(
    nodes: np.ndarray,
    sources: np.ndarray,
    remainings: np.ndarray,
    halves: np.ndarray,
    counts: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Network-wide :func:`aggregate_groups`: merge token groups with
    identical ``(node, source, remaining, half)`` across every node at
    once.

    The result is sorted by that tuple, so each node's segment appears
    in exactly the canonical order :func:`aggregate_groups` would have
    produced for it alone - the batched engine's per-node slices
    therefore consume the same per-node randomness as node-by-node
    processing.
    """
    if len(nodes) == 0:
        empty = np.zeros(0, dtype=np.int64)
        return (empty, empty.copy(), empty.copy(), empty.copy(),
                empty.copy())
    source_base = int(sources.max()) + 1
    remaining_base = int(remainings.max()) + 1
    key = (
        (nodes * source_base + sources) * remaining_base + remainings
    ) * 2 + halves
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    boundary = np.empty(len(sorted_key), dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_key[1:], sorted_key[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    merged = np.add.reduceat(counts[order], starts)
    first = order[starts]
    return (
        nodes[first],
        sources[first],
        remainings[first],
        halves[first],
        merged.astype(np.int64, copy=False),
    )


def route_groups(
    rng: np.random.Generator, degree: int, counts: np.ndarray
) -> np.ndarray:
    """Choose next hops for every token of every group at one node.

    One vectorized uniform draw covers all ``counts.sum()`` tokens (this
    is the "single multinomial over the CSR row" of the batched-walk
    framework; drawing per-token indices and histogramming them is the
    same distribution and keeps the stream layout obvious).  Returns an
    ``(len(counts), degree)`` allocation matrix whose rows sum to the
    group counts.
    """
    total = int(counts.sum())
    groups = len(counts)
    if total == 0:
        return np.zeros((groups, degree), dtype=np.int64)
    choices = rng.integers(0, degree, size=total)
    group_ids = np.repeat(np.arange(groups, dtype=np.int64), counts)
    flat = np.bincount(group_ids * degree + choices, minlength=groups * degree)
    return flat.reshape(groups, degree).astype(np.int64)


def thin_groups(
    rng: np.random.Generator, counts: np.ndarray, alpha: float
) -> np.ndarray:
    """Damped-mode survival (section II-C): binomially thin every group
    with one vectorized draw; survivors per group are returned."""
    if len(counts) == 0:
        return counts.copy()
    return rng.binomial(counts, alpha).astype(np.int64)


def step_tokens(
    rng: np.random.Generator,
    offsets: np.ndarray,
    targets: np.ndarray,
    degrees: np.ndarray,
    current: np.ndarray,
) -> np.ndarray:
    """Advance a flat token array by one uniform step each (centralized
    form: one draw for the whole network, used by the Monte-Carlo
    engine where no per-node randomness attribution is needed)."""
    steps = rng.integers(0, degrees[current])
    return targets[offsets[current] + steps]
