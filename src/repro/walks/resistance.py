"""Effective resistance, hitting and commute times.

Newman's betweenness is the current-flow measure, so the electrical view
is the natural cross-check layer: the grounded inverse ``T`` used by the
solvers is a generalized inverse of the Laplacian, effective resistance
is a metric on the nodes, and the classical identities

* ``commute(u, v) = 2 m * R_eff(u, v)``  (Chandra et al.)
* ``sum over edges of R_eff = n - 1``   (Foster's theorem)

tie the walk machinery (:mod:`repro.walks.absorbing`) to the Laplacian
pseudoinverse computed here.  The test suite asserts both identities,
giving an independent consistency proof of the whole matrix layer.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphError
from repro.graphs.properties import is_connected
from repro.walks.absorbing import expected_visits


def laplacian_pseudoinverse(graph: Graph) -> np.ndarray:
    """Moore-Penrose pseudoinverse of the graph Laplacian.

    Computed by deflating the all-ones nullspace (exact for connected
    graphs) rather than an SVD, so it is both faster and numerically
    cleaner: ``L^+ = (L + J/n)^{-1} - J/n`` with ``J`` the all-ones
    matrix.
    """
    if graph.num_nodes < 2:
        raise GraphError("pseudoinverse needs at least 2 nodes")
    if not is_connected(graph):
        raise GraphError("Laplacian pseudoinverse requires connectivity")
    n = graph.num_nodes
    laplacian = graph.laplacian_matrix()
    ones_projector = np.full((n, n), 1.0 / n)
    return np.linalg.inv(laplacian + ones_projector) - ones_projector


def resistance_matrix(graph: Graph) -> np.ndarray:
    """``R[u, v] = L+_uu + L+_vv - 2 L+_uv`` in canonical order."""
    plus = laplacian_pseudoinverse(graph)
    diagonal = np.diag(plus)
    return diagonal[:, None] + diagonal[None, :] - 2.0 * plus


def effective_resistance(graph: Graph, u, v) -> float:
    """Effective resistance between two nodes (unit-conductance edges)."""
    if u == v:
        return 0.0
    matrix = resistance_matrix(graph)
    return float(matrix[graph.index_of(u), graph.index_of(v)])


def hitting_time(graph: Graph, source, target) -> float:
    """Expected steps for a walk from ``source`` to first reach ``target``.

    Computed from the absorbing chain: the column sum of the expected
    visit counts (every step of the walk is a visit to some node).
    """
    if source == target:
        return 0.0
    visits = expected_visits(graph, target)
    return float(visits[:, graph.index_of(source)].sum())


def commute_time(graph: Graph, u, v) -> float:
    """``hitting(u, v) + hitting(v, u)``."""
    return hitting_time(graph, u, v) + hitting_time(graph, v, u)


def commute_time_via_resistance(graph: Graph, u, v) -> float:
    """The Chandra et al. identity ``2 m * R_eff(u, v)``.

    Agreement with :func:`commute_time` (which never touches the
    Laplacian) is asserted by the test suite.
    """
    return 2.0 * graph.num_edges * effective_resistance(graph, u, v)


def foster_total(graph: Graph) -> float:
    """``sum over edges of R_eff(u, v)``; Foster's theorem says ``n - 1``."""
    matrix = resistance_matrix(graph)
    total = 0.0
    for u, v in graph.edges():
        total += matrix[graph.index_of(u), graph.index_of(v)]
    return float(total)


def spanning_tree_edge_probability(graph: Graph, u, v) -> float:
    """Probability the edge ``{u, v}`` is in a uniform spanning tree.

    By Kirchhoff's theorem this equals the edge's effective resistance.
    """
    if not graph.has_edge(u, v):
        raise GraphError(f"{{{u!r}, {v!r}}} is not an edge")
    return effective_resistance(graph, u, v)
