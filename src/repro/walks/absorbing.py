"""Exact absorbing-chain quantities (paper section IV).

All functions work in the graph's canonical node order.  The key objects:

* ``M = A D^{-1}``, the column-stochastic transition matrix (Eq. 2):
  ``M[i, j]`` is the probability a walk at ``j`` moves to ``i``.
* ``M_t``: ``M`` with the target row/column removed - the substochastic
  matrix of the walk absorbed at ``t``.
* expected visits ``(I - M_t)^{-1}``: entry ``(i, s)`` is the expected
  number of times a walk from ``s`` visits ``i`` before absorption.
* the grounded inverse ``T``: ``(D_t - A_t)^{-1}`` with the target
  row/column re-inserted as zeros (Eq. 3 and Table I).  ``T[i, s]`` equals
  expected visits divided by ``d(i)``.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import Graph, GraphError
from repro.graphs.properties import is_connected


def _target_index(graph: Graph, target) -> int:
    return graph.index_of(target)


def _check_graph(graph: Graph) -> None:
    if graph.num_nodes < 2:
        raise GraphError("absorbing-walk quantities need at least 2 nodes")
    if not is_connected(graph):
        raise GraphError(
            "graph must be connected: otherwise walks from other components "
            "are never absorbed and expected visits diverge"
        )


def transition_matrix(graph: Graph) -> np.ndarray:
    """Column-stochastic ``M = A D^{-1}`` (Eq. 2) in canonical order.

    Raises
    ------
    GraphError
        If any node is isolated (its column would be undefined).
    """
    adjacency = graph.adjacency_matrix()
    degrees = adjacency.sum(axis=0)
    if np.any(degrees == 0):
        raise GraphError("transition matrix undefined with isolated nodes")
    return adjacency / degrees[np.newaxis, :]


def absorbing_transition_matrix(graph: Graph, target) -> np.ndarray:
    """``M_t``: the transition matrix with the target row/column removed."""
    _check_graph(graph)
    t = _target_index(graph, target)
    m = transition_matrix(graph)
    keep = np.arange(graph.num_nodes) != t
    return m[np.ix_(keep, keep)]


def expected_visits(graph: Graph, target) -> np.ndarray:
    """Expected visit counts ``(I - M_t)^{-1}``, padded back to n x n.

    Entry ``(i, s)`` is the expected number of times the absorbing walk
    from ``s`` occupies node ``i`` (counting the start: the ``r = 0`` term
    of Eq. 3's series).  Rows/columns at the target are zero.
    """
    _check_graph(graph)
    n = graph.num_nodes
    t = _target_index(graph, target)
    m_t = absorbing_transition_matrix(graph, target)
    fundamental = np.linalg.inv(np.eye(n - 1) - m_t)
    return _pad_target(fundamental, t, n)


def grounded_inverse(graph: Graph, target) -> np.ndarray:
    """Newman's ``T``: ``(D_t - A_t)^{-1}`` padded with target zeros (Eq. 3).

    ``T[i, s] = expected_visits[i, s] / d(i)``; the identity is exercised
    by the test suite.
    """
    _check_graph(graph)
    n = graph.num_nodes
    t = _target_index(graph, target)
    laplacian = graph.laplacian_matrix()
    keep = np.arange(n) != t
    reduced = laplacian[np.ix_(keep, keep)]
    inverse = np.linalg.inv(reduced)
    return _pad_target(inverse, t, n)


def _pad_target(reduced: np.ndarray, t: int, n: int) -> np.ndarray:
    """Insert a zero row and column at index ``t``."""
    full = np.zeros((n, n))
    keep = np.arange(n) != t
    full[np.ix_(keep, keep)] = reduced
    return full


def surviving_mass(graph: Graph, target, rounds: int) -> np.ndarray:
    """Fraction of walks still alive after each round, per source.

    Returns an array ``S`` of shape ``(rounds + 1, n)``: ``S[r, s]`` is the
    probability the walk from source ``s`` has not yet been absorbed after
    ``r`` steps (``S[0] = 1`` except at the target).  ``S[r].max()`` is
    exactly the ``||M_t^r||_1``-controlled quantity of Theorem 1.
    """
    _check_graph(graph)
    if rounds < 0:
        raise GraphError("rounds must be >= 0")
    n = graph.num_nodes
    t = _target_index(graph, target)
    m_t = absorbing_transition_matrix(graph, target)
    keep = np.arange(n) != t
    mass = np.zeros((rounds + 1, n))
    state = np.eye(n - 1)  # column s = distribution of walk from source s
    mass[0, keep] = 1.0
    for r in range(1, rounds + 1):
        state = m_t @ state
        mass[r, keep] = state.sum(axis=0)
    return mass


def absorption_probability_by_round(
    graph: Graph, target, rounds: int
) -> np.ndarray:
    """``P[walk from s absorbed within r steps]``, shape (rounds+1, n)."""
    mass = surviving_mass(graph, target, rounds)
    return 1.0 - mass


def visit_counts_truncated(
    graph: Graph, target, length: int
) -> np.ndarray:
    """Expected visits of the *truncated* walk: ``sum_{r=0}^{l} M_t^r``.

    This is the quantity the distributed algorithm actually estimates
    (walks die after ``l`` hops); comparing it with
    :func:`expected_visits` isolates the Theorem 2 truncation error from
    the Theorem 3 sampling error.
    """
    _check_graph(graph)
    if length < 0:
        raise GraphError("length must be >= 0")
    n = graph.num_nodes
    t = _target_index(graph, target)
    m_t = absorbing_transition_matrix(graph, target)
    total = np.eye(n - 1)
    power = np.eye(n - 1)
    for _ in range(length):
        power = m_t @ power
        total += power
    return _pad_target(total, t, n)
