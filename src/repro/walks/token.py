"""The walk token: what one random walk looks like on the wire.

Algorithm 1 moves walks as messages carrying ``(source, remaining
length)``.  Both fields are ``O(log n)``-bit integers (the paper's
Theorem 4 relies on this).  Tokens with identical fields are
interchangeable, which is what makes the BATCH transport policy sound:
``k`` identical tokens compress into one ``(source, remaining, k)``
message.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congest.errors import ProtocolError


@dataclass(frozen=True, slots=True)
class WalkToken:
    """One in-flight random walk.

    Attributes
    ----------
    source:
        The node the walk started at (``s`` in the paper's notation).
    remaining:
        Hops left before forced termination (``length`` in Algorithm 1).
    """

    source: int
    remaining: int

    def __post_init__(self) -> None:
        if self.remaining < 0:
            raise ProtocolError(
                f"walk token remaining length {self.remaining} < 0"
            )

    def hop(self) -> "WalkToken":
        """The token after one more hop (one unit of length consumed)."""
        if self.remaining == 0:
            raise ProtocolError("cannot hop a token with remaining == 0")
        return WalkToken(self.source, self.remaining - 1)

    @property
    def expired(self) -> bool:
        """True when the walk must stop (length budget exhausted)."""
        return self.remaining == 0

    def as_fields(self) -> tuple[int, int]:
        """Wire encoding (source, remaining)."""
        return (self.source, self.remaining)

    @classmethod
    def from_fields(cls, fields: tuple[int, ...]) -> "WalkToken":
        if len(fields) != 2:
            raise ProtocolError(
                f"walk message must have 2 fields, got {len(fields)}"
            )
        return cls(source=fields[0], remaining=fields[1])
