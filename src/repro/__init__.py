"""repro: distributed random walk betweenness centrality.

A full reproduction of Hua, Ai, Jin, Yu, Shi, *"Distributively Computing
Random Walk Betweenness Centrality in Linear Time"* (ICDCS 2017):

* a CONGEST-model simulator (:mod:`repro.congest`),
* the paper's distributed approximation algorithm
  (:func:`estimate_rwbc_distributed`),
* exact and Monte-Carlo reference engines (:func:`rwbc_exact`,
  :func:`estimate_rwbc_montecarlo`),
* every comparator from the related-work section
  (:mod:`repro.baselines`),
* the section VIII lower-bound construction and its verification
  (:mod:`repro.lowerbound`).

Quickstart::

    from repro import estimate_rwbc_distributed, rwbc_exact
    from repro.graphs import erdos_renyi_graph

    graph = erdos_renyi_graph(50, 0.15, seed=1, ensure_connected=True)
    exact = rwbc_exact(graph)
    result = estimate_rwbc_distributed(graph, seed=1)
    print(result.betweenness, result.total_rounds)
"""

from repro.core import (
    DistributedRWBCResult,
    MonteCarloResult,
    TransportPolicy,
    WalkParameters,
    default_parameters,
    estimate_rwbc_distributed,
    estimate_rwbc_montecarlo,
    rwbc_exact,
    rwbc_exact_pairs,
)
from repro.graphs import Graph

__version__ = "1.0.0"

__all__ = [
    "DistributedRWBCResult",
    "Graph",
    "MonteCarloResult",
    "TransportPolicy",
    "WalkParameters",
    "__version__",
    "default_parameters",
    "estimate_rwbc_distributed",
    "estimate_rwbc_montecarlo",
    "rwbc_exact",
    "rwbc_exact_pairs",
]
