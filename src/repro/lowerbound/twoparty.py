"""The Theorem 7 simulation argument, measured on real runs.

Theorem 7 relates two-party communication to distributed time: Alice and
Bob can simulate any distributed algorithm by exchanging everything that
crosses the cut, so ``R^cc <= rounds * 2 * c_k * B``.  This module runs a
distributed algorithm on a cut graph with full message logging and
reports:

* the *actual* bits that crossed the cut (what a simulating Alice/Bob
  pair would really need),
* the worst-case channel capacity ``rounds * 2 * c_k * B`` the theorem
  charges, and
* the Theorem 8 target ``Omega(N log N)`` for the exact problem.

For the paper's *approximation* algorithm the measured cut traffic may
fall below the exact-problem bound - that is the point: the
``Omega(n / log n)`` bound applies to exact computation only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.congest.scheduler import SimulationResult
from repro.congest.transport import BandwidthPolicy
from repro.graphs.graph import GraphError
from repro.graphs.lowerbound_graph import LowerBoundGraph


@dataclass(frozen=True)
class CutAnalysis:
    """Cut-traffic accounting for one run over one Alice/Bob partition.

    Attributes
    ----------
    cut_edges:
        Number of undirected edges crossing the partition (``c_k``).
    bits_crossed:
        Total bits actually carried by crossing edges, both directions.
    rounds:
        Rounds the algorithm ran.
    channel_capacity_bits:
        ``rounds * 2 * c_k * B``: the Theorem 7 upper bound on what the
        two-party simulation could ever need.
    """

    cut_edges: int
    bits_crossed: int
    rounds: int
    bits_per_message: int

    @property
    def channel_capacity_bits(self) -> int:
        return self.rounds * 2 * self.cut_edges * self.bits_per_message

    @property
    def simulation_inequality_holds(self) -> bool:
        """``bits_crossed <= channel capacity`` - must always be true; a
        violation would mean the simulator miscounted."""
        return self.bits_crossed <= self.channel_capacity_bits

    def implied_round_lower_bound(self, cc_bits: int) -> float:
        """Theorem 7 rearranged: any algorithm solving a problem of
        two-party complexity ``cc_bits`` needs at least this many rounds
        on this cut."""
        if self.cut_edges == 0:
            raise GraphError("cut has no edges; the bound is vacuous")
        return cc_bits / (2.0 * self.cut_edges * self.bits_per_message)


def analyze_cut_traffic(
    result: SimulationResult,
    construction: LowerBoundGraph,
    policy: BandwidthPolicy,
    probe_with_alice: bool = True,
) -> CutAnalysis:
    """Measure cut traffic of a recorded run on a lower-bound graph.

    ``result`` must come from a simulator with ``record_messages=True``.
    """
    if not result.message_log and result.metrics.total_messages > 0:
        raise GraphError(
            "run was not recorded; pass record_messages=True to the "
            "simulator"
        )
    alice = construction.alice_nodes(probe_with_alice)
    bits = result.metrics.bits_crossing_cut(result.message_log, alice)
    cut_edges = len(construction.cut_edges(probe_with_alice))
    return CutAnalysis(
        cut_edges=cut_edges,
        bits_crossed=bits,
        rounds=result.metrics.rounds,
        bits_per_message=policy.bits_per_message,
    )
