"""A repaired lower-bound construction with an O(M) cut.

E8 measured that the paper's Fig. 2 graph has cut ``M + N + 1``, not the
claimed ``M``: the probe node ``P`` touches both sides.  The natural
repair splits the probe into ``P_A`` (adjacent to every ``S_i``) and
``P_B`` (adjacent to every ``T_i``) joined by a single edge - the cut
becomes exactly ``M + 2`` (rails + the A-B hub edge + the P_A-P_B edge),
restoring the paper's asymptotics.

Whether the DISJ signal survives the surgery is an empirical question;
:func:`repaired_overlap_profile` answers it the same way E7 does for the
original: the probe-edge quantity is monotone in the rail-pattern
overlap, so the decision content is preserved (see the tests and
EXPERIMENTS.md E7/E8 notes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exact import rwbc_exact
from repro.graphs.graph import Graph, GraphError
from repro.graphs.lowerbound_graph import LowerBoundGraph, build_lower_bound_graph
from repro.lowerbound.disjointness import DisjointnessInstance
from repro.lowerbound.construction import instance_to_graph


@dataclass(frozen=True)
class RepairedGraph:
    """The split-probe construction plus its bookkeeping."""

    graph: Graph
    base: LowerBoundGraph

    @property
    def pa_node(self) -> int:
        """``P_A``: reuses the original probe label (Alice side)."""
        return self.base.p_node

    @property
    def pb_node(self) -> int:
        """``P_B``: one past the original label range (Bob side)."""
        return self.base.p_node + 1

    def alice_nodes(self) -> set[int]:
        side = self.base.alice_nodes(probe_with_alice=True)
        return side  # P_A carries the original probe label

    def cut_edges(self) -> list[tuple[int, int]]:
        alice = self.alice_nodes()
        return [
            (u, v)
            for u, v in self.graph.edges()
            if (u in alice) != (v in alice)
        ]


def repair_construction(base: LowerBoundGraph) -> RepairedGraph:
    """Split the probe of an existing construction into P_A / P_B."""
    graph = base.graph.copy()
    pa = base.p_node
    pb = base.p_node + 1
    if graph.has_node(pb):
        raise GraphError("label collision: construction already repaired?")
    # Detach P from the T side, re-homing those edges on P_B.
    for i in range(base.n_subsets):
        t = base.t_node(i)
        graph.remove_edge(pa, t)
        graph.add_edge(pb, t)
    graph.add_edge(pa, pb)
    return RepairedGraph(graph=graph, base=base)


def repaired_instance_graph(
    instance: DisjointnessInstance,
    m: int | None = None,
    precomplement_bob: bool = True,
) -> RepairedGraph:
    """Repaired construction directly from a DISJ instance."""
    return repair_construction(
        instance_to_graph(instance, m=m, precomplement_bob=precomplement_bob)
    )


def probe_pair_betweenness(repaired: RepairedGraph) -> tuple[float, float]:
    """Exact RWBC of (P_A, P_B) - the repaired probe observables."""
    values = rwbc_exact(repaired.graph)
    return values[repaired.pa_node], values[repaired.pb_node]


def repaired_overlap_profile(m: int = 4) -> dict[int, tuple[float, ...]]:
    """The E7c sweep on the repaired construction: N = 1, all half-subset
    pairs, keyed by rail-pattern overlap.  Values are P_A's betweenness.
    """
    from repro.graphs.lowerbound_graph import all_half_subsets

    full = frozenset(range(m))
    by_overlap: dict[int, set[float]] = {}
    for x_subset in all_half_subsets(m):
        for y_subset in all_half_subsets(m):
            base = build_lower_bound_graph([x_subset], [y_subset], m)
            repaired = repair_construction(base)
            overlap = len(x_subset & (full - y_subset))
            value = round(probe_pair_betweenness(repaired)[0], 12)
            by_overlap.setdefault(overlap, set()).add(value)
    return {
        overlap: tuple(sorted(values))
        for overlap, values in sorted(by_overlap.items())
    }
