"""From a DISJ instance to the Fig. 2 graph.

The encoding detail that matters (measured in :mod:`repro.lowerbound.verify`):
the probe node's betweenness is *strictly decreasing* in the number of
rails where an ``S_i`` and a ``T_j`` attach on both sides.  Because the
paper wires each ``T_j`` to the *complement* of its subset, two choices of
Bob-side encoding give opposite semantics:

* ``precomplement_bob=True`` (default): Bob encodes value ``y`` as the
  complement of ``subset(y)``, so after the construction's complement
  wiring, a value collision ``x = y`` yields identical rail patterns
  (``S_i = T_j`` in the paper's notation) and hence a *lower* ``b_P``.
  This is the encoding under which ``b_P`` decides DISJ with a clean
  threshold, and the one experiment E7/E8 uses.
* ``precomplement_bob=False``: the literal composition of "encode value
  as subset" with the paper's complement wiring; collisions then produce
  *disjoint* rail patterns.  Kept for fidelity comparisons.
"""

from __future__ import annotations

from repro.graphs.lowerbound_graph import (
    LowerBoundGraph,
    build_lower_bound_graph,
    encode_values_as_subsets,
    required_m,
)
from repro.lowerbound.disjointness import DisjointnessInstance


def instance_to_graph(
    instance: DisjointnessInstance,
    m: int | None = None,
    precomplement_bob: bool = True,
) -> LowerBoundGraph:
    """Build the Fig. 2 construction for one DISJ instance."""
    if m is None:
        m = required_m(max(instance.n, 2))
    x_family = encode_values_as_subsets(list(instance.alice), m)
    y_subsets = encode_values_as_subsets(list(instance.bob), m)
    if precomplement_bob:
        full = frozenset(range(m))
        y_family = tuple(full - subset for subset in y_subsets)
    else:
        y_family = y_subsets
    return build_lower_bound_graph(
        x_family, y_family, m, complement_bob=True, exact_half=False
    )
