"""Sparse set-disjointness instances (Definition 3 / Theorem 8).

Alice and Bob each hold ``N`` numbers from the universe ``{0..N^2 - 1}``;
``DISJ = 1`` iff the value sets share no element.  Theorem 8 (via Saglam
and Tardos) gives the ``Omega(N log N)`` communication bound the graph
construction transports into the CONGEST world.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.graphs.graph import GraphError


@dataclass(frozen=True)
class DisjointnessInstance:
    """One DISJ_{N^2}^N instance.

    Attributes
    ----------
    alice, bob:
        The two value tuples (each of length ``N``, values in
        ``[0, N^2)``, no duplicates within one side).
    """

    alice: tuple[int, ...]
    bob: tuple[int, ...]

    def __post_init__(self) -> None:
        n = len(self.alice)
        if n == 0 or len(self.bob) != n:
            raise GraphError("both sides must hold N >= 1 values")
        universe = n * n
        for name, values in (("alice", self.alice), ("bob", self.bob)):
            if len(set(values)) != len(values):
                raise GraphError(f"{name} holds duplicate values")
            if not all(0 <= v < universe for v in values):
                raise GraphError(
                    f"{name} values must lie in [0, N^2) = [0, {universe})"
                )

    @property
    def n(self) -> int:
        return len(self.alice)

    @property
    def universe_size(self) -> int:
        return self.n * self.n

    def is_disjoint(self) -> bool:
        return not set(self.alice) & set(self.bob)

    def intersection(self) -> frozenset[int]:
        return frozenset(set(self.alice) & set(self.bob))

    def input_bits(self) -> int:
        """Bits needed to describe one side: ``N * ceil(log2 N^2)``.

        This is the ``O(N log N)`` input size Theorem 8's bound is stated
        against.
        """
        return self.n * max(1, math.ceil(math.log2(self.universe_size)))


def _rng(seed) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_instance(
    n: int, seed: int | np.random.Generator | None = None
) -> DisjointnessInstance:
    """Uniform instance: both sides sample N values independently."""
    if n < 1:
        raise GraphError("n must be >= 1")
    rng = _rng(seed)
    universe = n * n
    alice = rng.choice(universe, size=n, replace=False)
    bob = rng.choice(universe, size=n, replace=False)
    return DisjointnessInstance(
        tuple(int(v) for v in alice), tuple(int(v) for v in bob)
    )


def random_disjoint_instance(
    n: int, seed: int | np.random.Generator | None = None
) -> DisjointnessInstance:
    """An instance guaranteed disjoint (sampled from disjoint halves)."""
    if n < 1:
        raise GraphError("n must be >= 1")
    universe = n * n
    if universe < 2 * n:
        raise GraphError(f"universe {universe} too small for disjoint sides")
    rng = _rng(seed)
    values = rng.choice(universe, size=2 * n, replace=False)
    return DisjointnessInstance(
        tuple(int(v) for v in values[:n]), tuple(int(v) for v in values[n:])
    )


def random_intersecting_instance(
    n: int,
    overlap: int = 1,
    seed: int | np.random.Generator | None = None,
) -> DisjointnessInstance:
    """An instance with exactly ``overlap`` shared values."""
    if n < 1:
        raise GraphError("n must be >= 1")
    if not 1 <= overlap <= n:
        raise GraphError("overlap must be in 1..n")
    universe = n * n
    if universe < 2 * n - overlap:
        raise GraphError("universe too small for the requested overlap")
    rng = _rng(seed)
    values = rng.choice(universe, size=2 * n - overlap, replace=False)
    shared = [int(v) for v in values[:overlap]]
    alice_only = [int(v) for v in values[overlap : n]]
    bob_only = [int(v) for v in values[n : 2 * n - overlap]]
    return DisjointnessInstance(
        tuple(shared + alice_only), tuple(shared + bob_only)
    )
