"""Section VIII machinery: the communication-complexity lower bound.

``disjointness`` generates sparse set-disjointness instances;
``construction`` maps them onto the Fig. 2 graph; ``verify`` checks
Lemmas 4-6 by exact computation of the probe node's betweenness;
``twoparty`` runs any distributed algorithm over the Alice/Bob cut and
counts the bits crossing it (the Theorem 7 simulation argument, measured
rather than assumed).
"""

from repro.lowerbound.construction import instance_to_graph
from repro.lowerbound.disjointness import (
    DisjointnessInstance,
    random_disjoint_instance,
    random_instance,
    random_intersecting_instance,
)
from repro.lowerbound.twoparty import CutAnalysis, analyze_cut_traffic
from repro.lowerbound.verify import (
    lemma4_separation,
    lemma5_profile,
    lemma6_profile,
    match_pairs,
    probe_betweenness,
)

__all__ = [
    "CutAnalysis",
    "DisjointnessInstance",
    "analyze_cut_traffic",
    "instance_to_graph",
    "lemma4_separation",
    "lemma5_profile",
    "lemma6_profile",
    "match_pairs",
    "probe_betweenness",
    "random_disjoint_instance",
    "random_instance",
    "random_intersecting_instance",
]
