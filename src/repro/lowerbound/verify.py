"""Exact verification of Lemmas 4-6 (the Fig. 3-5 arguments).

Everything here computes the probe node's betweenness *exactly* (via the
matrix solver) on concrete constructions, turning the paper's
case-analysis proofs into measurements:

* :func:`lemma5_profile` - N = 1, single-edge subsets (Fig. 3): ``b_P``
  as a function of which rail ``T_1`` attaches to.  The lemma predicts
  the minimum exactly at ``S_1``'s rail.
* :func:`lemma6_profile` - adding a second ``S`` node (Fig. 5): ``b_P``
  as a function of its attachment rail; minimum predicted at the
  already-used rail.
* :func:`lemma4_separation` - the aggregate claim: over random DISJ
  instances, ``b_P`` separates intersecting from disjoint instances.
  Measured finding (recorded in EXPERIMENTS.md): the separation exists
  with intersecting instances *below* disjoint ones - ``b_P`` decreases
  with rail-pattern overlap - i.e. the decision content of Lemma 4 holds
  with the opposite sign to the paper's prose.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.exact import rwbc_exact
from repro.graphs.graph import GraphError
from repro.graphs.lowerbound_graph import LowerBoundGraph, build_lower_bound_graph
from repro.lowerbound.construction import instance_to_graph
from repro.lowerbound.disjointness import (
    random_disjoint_instance,
    random_intersecting_instance,
)


def probe_betweenness(construction: LowerBoundGraph) -> float:
    """Exact Newman RWBC of the probe node ``P``."""
    values = rwbc_exact(construction.graph)
    return values[construction.p_node]


def match_pairs(construction: LowerBoundGraph) -> list[tuple[int, int]]:
    """All ``(i, j)`` with ``S_i = T_j`` in the paper's sense: ``S_i``'s
    rail pattern equals the pattern ``T_j`` attaches to on the R side."""
    graph = construction.graph
    m = construction.m
    pairs = []
    s_patterns = [
        frozenset(
            j
            for j in range(m)
            if graph.has_edge(construction.s_node(i), construction.l_node(j))
        )
        for i in range(construction.n_subsets)
    ]
    t_patterns = [
        frozenset(
            j
            for j in range(m)
            if graph.has_edge(construction.t_node(i), construction.r_node(j))
        )
        for i in range(construction.n_subsets)
    ]
    for i, s_pattern in enumerate(s_patterns):
        for j, t_pattern in enumerate(t_patterns):
            if s_pattern == t_pattern:
                pairs.append((i, j))
    return pairs


def lemma5_profile(m: int = 4) -> dict[int, float]:
    """Fig. 3: ``b_P`` for each rail ``T_1`` may attach to.

    ``S_1`` is fixed on rail 0; the lemma predicts
    ``profile[0] < profile[j]`` for all ``j != 0``.
    """
    profile = {}
    for rail in range(m):
        construction = build_lower_bound_graph(
            [frozenset({0})],
            [frozenset({rail})],
            m,
            complement_bob=False,
            exact_half=False,
        )
        profile[rail] = probe_betweenness(construction)
    return profile


def lemma6_profile(m: int = 4) -> dict[int, float]:
    """Fig. 5: ``b_P`` for each rail the new node ``S_2`` may attach to.

    ``S_1`` is fixed on rail 0 (as is the ``T`` side); the lemma predicts
    the minimum at rail 0.
    """
    profile = {}
    for rail in range(m):
        construction = build_lower_bound_graph(
            [frozenset({0}), frozenset({rail})],
            [frozenset({0}), frozenset({0})],
            m,
            complement_bob=False,
            exact_half=False,
        )
        profile[rail] = probe_betweenness(construction)
    return profile


@dataclass(frozen=True)
class SeparationResult:
    """Measured Lemma 4 behaviour over random instances.

    Measured finding (experiment E7): the *clean* separation the lemma
    claims does not hold for random encodings - partial rail-pattern
    overlaps between unequal values move ``b_P`` by about as much as a
    full match does - but the *statistical* tendency does: intersecting
    instances score lower on average.  The controlled, noise-free version
    of the mechanism is :func:`n1_overlap_profile`, which is strictly
    monotone.
    """

    disjoint_values: tuple[float, ...]
    intersecting_values: tuple[float, ...]

    @property
    def gap(self) -> float:
        """``min(disjoint) - max(intersecting)``: positive iff every
        intersecting instance scored below every disjoint one (rare at
        small M; see the class docstring)."""
        return min(self.disjoint_values) - max(self.intersecting_values)

    @property
    def separates(self) -> bool:
        return self.gap > 0

    @property
    def mean_gap(self) -> float:
        """``mean(disjoint) - mean(intersecting)``: the statistical
        signal; positive when collisions lower ``b_P`` on average."""
        disjoint = sum(self.disjoint_values) / len(self.disjoint_values)
        intersecting = sum(self.intersecting_values) / len(
            self.intersecting_values
        )
        return disjoint - intersecting


def n1_overlap_profile(m: int = 4) -> dict[int, tuple[float, ...]]:
    """The noise-free Lemma 4 mechanism: N = 1, all half-subset pairs.

    Returns ``overlap -> sorted distinct b_P values`` where ``overlap``
    is ``|X_1 cap pattern(T_1)|``.  Measured: within each overlap level
    ``b_P`` is constant (rail symmetry), and levels are strictly
    decreasing in overlap - the full match (``S_1 = T_1``) is the unique
    minimum, quantifying Lemma 5 across all subset shapes.
    """
    from repro.graphs.lowerbound_graph import all_half_subsets

    full = frozenset(range(m))
    by_overlap: dict[int, set[float]] = {}
    for x_subset in all_half_subsets(m):
        for y_subset in all_half_subsets(m):
            construction = build_lower_bound_graph([x_subset], [y_subset], m)
            t_pattern = full - y_subset
            overlap = len(x_subset & t_pattern)
            value = round(probe_betweenness(construction), 12)
            by_overlap.setdefault(overlap, set()).add(value)
    return {
        overlap: tuple(sorted(values))
        for overlap, values in sorted(by_overlap.items())
    }


def lemma4_separation(
    n_subsets: int,
    trials: int = 5,
    seed: int = 0,
    m: int | None = None,
    overlap: int = 1,
) -> SeparationResult:
    """Exact ``b_P`` over random disjoint vs intersecting DISJ instances.

    Uses the pre-complemented encoding (see
    :mod:`repro.lowerbound.construction`), under which value collisions
    create matched rail patterns and *decrease* ``b_P``.
    """
    if trials < 1:
        raise GraphError("trials must be >= 1")
    disjoint = []
    intersecting = []
    for trial in range(trials):
        instance = random_disjoint_instance(n_subsets, seed=seed + trial)
        disjoint.append(
            probe_betweenness(instance_to_graph(instance, m=m))
        )
        instance = random_intersecting_instance(
            n_subsets, overlap=overlap, seed=seed + trial
        )
        intersecting.append(
            probe_betweenness(instance_to_graph(instance, m=m))
        )
    return SeparationResult(tuple(disjoint), tuple(intersecting))
