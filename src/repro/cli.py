"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``exact``     exact RWBC of every node (Newman's matrix method)
``estimate``  Monte-Carlo or full distributed estimation
``compare``   all centrality measures side by side
``diameter``  distributed diameter via pipelined APSP
``chaos``     distributed estimation under injected faults
``sweep``     run a named scenario suite and append to its committed
              ``BENCH_<suite>.json`` trajectory (``--check`` gates on
              regressions against the previous entry)
``observe``   telemetry toolkit: run (record a JSONL artifact),
              report (render one), diff (compare two),
              trend (render a trajectory file's history)
``info``      available graph families and datasets

Every command takes one graph source: ``--family NAME --n N`` (synthetic,
see ``info``), ``--dataset NAME`` (bundled real networks), or
``--edge-list PATH``.
"""

from __future__ import annotations

import argparse
import os
import sys

from repro.graphs.graph import Graph, GraphError
from repro.obs.export import SchemaError


def _add_graph_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_argument_group("graph source (choose one)")
    source.add_argument("--family", help="synthetic family (see 'info')")
    source.add_argument("--n", type=int, default=30, help="size for --family")
    source.add_argument(
        "--graph-seed", type=int, default=0, help="seed for --family"
    )
    source.add_argument("--dataset", help="bundled dataset (see 'info')")
    source.add_argument("--edge-list", help="path to an edge-list file")


def _resolve_graph(args: argparse.Namespace) -> Graph:
    chosen = [
        name
        for name, value in (
            ("--family", args.family),
            ("--dataset", args.dataset),
            ("--edge-list", args.edge_list),
        )
        if value
    ]
    if len(chosen) != 1:
        raise GraphError(
            f"choose exactly one graph source, got {chosen or 'none'}"
        )
    if args.family:
        from repro.experiments.workloads import make_workload

        return make_workload(args.family, args.n, seed=args.graph_seed).graph
    if args.dataset:
        from repro.graphs.datasets import load_dataset

        return load_dataset(args.dataset)
    from repro.graphs.io import read_edge_list

    return read_edge_list(args.edge_list)


def _graph_meta(
    args: argparse.Namespace, graph: Graph, **extra
) -> dict:
    """Free-form run metadata for observe artifacts."""
    meta: dict = {
        "graph": args.family or args.dataset or args.edge_list,
        "n": graph.num_nodes,
        "m": graph.num_edges,
        "seed": getattr(args, "seed", None),
    }
    meta.update({key: value for key, value in extra.items() if value})
    return meta


def _print_centrality(values: dict, top: int | None) -> None:
    ranked = sorted(values.items(), key=lambda item: -item[1])
    if top is not None:
        ranked = ranked[:top]
    width = max(len(str(node)) for node, _ in ranked)
    for node, value in ranked:
        print(f"{str(node):>{width}}  {value:.6f}")


def _cmd_exact(args: argparse.Namespace) -> int:
    from repro.core.exact import rwbc_exact

    graph = _resolve_graph(args)
    values = rwbc_exact(graph, include_endpoints=not args.no_endpoints)
    print(f"# exact RWBC, n={graph.num_nodes} m={graph.num_edges}")
    _print_centrality(values, args.top)
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    from repro.core.estimator import (
        estimate_rwbc_distributed,
        estimate_rwbc_montecarlo,
    )
    from repro.core.parameters import WalkParameters, default_parameters
    from repro.core.walk_manager import TransportPolicy

    graph = _resolve_graph(args)
    if args.length and args.walks:
        parameters = WalkParameters(args.length, args.walks)
    else:
        parameters = default_parameters(graph.num_nodes)
    if args.engine == "montecarlo":
        result = estimate_rwbc_montecarlo(graph, parameters, seed=args.seed)
        print(
            f"# montecarlo RWBC, n={graph.num_nodes} l={parameters.length} "
            f"K={parameters.walks_per_source} "
            f"survival={result.survival_fraction:.4f}"
        )
        _print_centrality(result.betweenness, args.top)
    else:
        result = estimate_rwbc_distributed(
            graph,
            parameters,
            seed=args.seed,
            policy=TransportPolicy(args.policy),
            executor=args.executor,
            num_shards=args.shards,
        )
        executor = args.executor
        if executor == "sharded":
            executor = f"sharded({args.shards or 2})"
        print(
            f"# distributed RWBC, n={graph.num_nodes} "
            f"l={parameters.length} K={parameters.walks_per_source} "
            f"executor={executor} "
            f"rounds={result.total_rounds} phases={result.phase_rounds} "
            f"target={result.target}"
        )
        _print_centrality(result.betweenness, args.top)
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.congest.faults import CrashWindow, FaultPlan
    from repro.core.estimator import estimate_rwbc_distributed
    from repro.core.parameters import WalkParameters, default_parameters

    graph = _resolve_graph(args)
    if args.length and args.walks:
        parameters = WalkParameters(args.length, args.walks)
    else:
        parameters = default_parameters(graph.num_nodes)
    crashes = ()
    if args.crash is not None:
        crashes = (
            CrashWindow(
                node=args.crash,
                start=args.crash_start,
                end=args.crash_start + args.crash_span,
            ),
        )
    plan = FaultPlan(
        seed=args.fault_seed,
        drop_rate=args.drop,
        duplicate_rate=args.dup,
        delay_rate=args.delay,
        crashes=crashes,
    )
    telemetry = None
    if args.observe:
        from repro.obs import Telemetry

        telemetry = Telemetry()
    result = estimate_rwbc_distributed(
        graph,
        parameters,
        seed=args.seed,
        faults=plan,
        executor=args.executor,
        num_shards=args.shards,
        max_delay=args.max_delay,
        telemetry=telemetry,
    )
    if args.observe:
        from repro.obs.export import write_artifact

        count = write_artifact(
            args.observe,
            result,
            meta=_graph_meta(args, graph, faults=plan.describe()),
        )
        print(f"# observe: wrote {count} records to {args.observe}")
    print(
        f"# chaos RWBC, n={graph.num_nodes} l={parameters.length} "
        f"K={parameters.walks_per_source} executor={args.executor} "
        f"faults=[{plan.describe()}]"
    )
    print(
        f"# rounds={result.total_rounds} phases={result.phase_rounds} "
        f"target={result.target}"
    )
    if args.executor == "async":
        metrics = result.metrics
        print(
            f"# async: virtual_time={metrics.virtual_time:.1f} "
            f"payloads={metrics.payload_messages} "
            f"control={metrics.control_messages}"
        )
    faults = result.metrics.faults or {}
    injected = " ".join(f"{k}={v}" for k, v in sorted(faults.items()))
    print(f"# injected: {injected or 'nothing'}")
    if result.recovery:
        recovered = " ".join(
            f"{k}={v}" for k, v in sorted(result.recovery.items())
        )
        print(f"# recovery: {recovered}")
    if args.baseline:
        baseline = estimate_rwbc_distributed(
            graph, parameters, seed=args.seed
        )
        deviation = max(
            abs(result.betweenness[node] - baseline.betweenness[node])
            for node in result.betweenness
        )
        print(
            f"# max deviation from fault-free run (same seed): "
            f"{deviation:.6f}"
        )
    _print_centrality(result.betweenness, args.top)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.report import format_table
    from repro.experiments.scenarios import SUITES, run_suite, suite_scenarios
    from repro.obs.trajectory import (
        append_entry,
        compare_entries,
        load_trajectory,
        new_entry,
    )

    if args.list:
        for suite, scenarios in sorted(SUITES.items()):
            print(f"{suite} ({len(scenarios)} scenarios):")
            for scenario in scenarios:
                print(f"  {scenario.name}")
        return 0

    scenarios = suite_scenarios(args.suite, only=args.only or None)
    out_path = args.out or f"BENCH_{args.suite}.json"

    def report_point(index, total, point, row):
        wall = row.get("wall_s", 0.0)
        detail = (
            f"rounds={row['rounds']} messages={row['messages']}"
            if "rounds" in row
            else f"checksum={row.get('checksum', '?')}"
        )
        print(
            f"[{index + 1}/{total}] {row['scenario']}: {detail} "
            f"wall={wall:.3f}s"
        )

    rows = run_suite(scenarios, progress=report_point)
    columns = [
        "scenario", "graph", "n", "m", "variant", "executor", "shards",
        "fault_profile", "rounds", "messages", "bits", "retransmissions",
        "wall_s",
    ]
    print()
    print(format_table(rows, columns=columns))

    entry = new_entry(rows, sha=args.sha or None)
    baseline_path = args.baseline or (
        out_path if os.path.exists(out_path) else None
    )
    regressions = []
    if baseline_path:
        baseline = load_trajectory(baseline_path)
        if baseline["entries"]:
            previous = baseline["entries"][-1]
            regressions = compare_entries(
                previous,
                entry,
                wall_ratio=args.wall_ratio,
                wall_clock=args.wall_clock,
                wall_floor=args.wall_floor,
            )
            print()
            print(
                f"# compared against {baseline_path} entry "
                f"sha={previous.get('sha')} date={previous.get('date')}"
            )
            if regressions:
                for regression in regressions:
                    print(f"# REGRESSION {regression}")
            else:
                print("# no regressions")
    if args.check and regressions:
        print(
            f"error: {len(regressions)} regression(s) against the "
            f"previous trajectory entry",
            file=sys.stderr,
        )
        return 1
    if not args.no_append:
        data = append_entry(out_path, entry, suite=args.suite)
        print(
            f"# appended entry sha={entry['sha']} to {out_path} "
            f"({len(data['entries'])} entries)"
        )
    return 0


def _cmd_observe_trend(args: argparse.Namespace) -> int:
    from repro.obs.report import render_trend
    from repro.obs.trajectory import load_trajectory

    trajectory = load_trajectory(args.trajectory)
    print(render_trend(trajectory, scenario=args.scenario, last=args.last))
    return 0


def _cmd_observe_run(args: argparse.Namespace) -> int:
    from repro.core.estimator import estimate_rwbc_distributed
    from repro.core.parameters import WalkParameters, default_parameters
    from repro.core.walk_manager import TransportPolicy
    from repro.obs import Telemetry
    from repro.obs.export import write_artifact

    # ``--graph`` is the family alias of this command; fold it into the
    # shared resolver's namespace.
    args.family = args.graph
    graph = _resolve_graph(args)
    if args.length and args.walks:
        parameters = WalkParameters(args.length, args.walks)
    else:
        parameters = default_parameters(graph.num_nodes)
    telemetry = Telemetry()
    tracer = None
    if args.trace:
        from repro.congest.trace import Tracer

        tracer = Tracer(max_events=args.trace_events)
    result = estimate_rwbc_distributed(
        graph,
        parameters,
        seed=args.seed,
        policy=TransportPolicy(args.policy),
        vectorized=False if args.slow else None,
        telemetry=telemetry,
        tracer=tracer,
    )
    count = write_artifact(
        args.out,
        result,
        meta=_graph_meta(
            args,
            graph,
            length=parameters.length,
            walks_per_source=parameters.walks_per_source,
            policy=args.policy,
        ),
        tracer=tracer,
    )
    path_label = (
        "fast path" if not result.fallback_reasons else "per-message loop"
    )
    print(
        f"# observed run: n={graph.num_nodes} rounds={result.total_rounds} "
        f"[{path_label}]"
    )
    print(f"# wrote {count} records to {args.out}")
    return 0


def _cmd_observe_report(args: argparse.Namespace) -> int:
    from repro.obs.export import read_artifact
    from repro.obs.report import render_report

    print(render_report(read_artifact(args.artifact)))
    return 0


def _cmd_observe_diff(args: argparse.Namespace) -> int:
    from repro.obs.export import diff_artifacts, read_artifact
    from repro.obs.report import render_diff

    diff = diff_artifacts(read_artifact(args.a), read_artifact(args.b))
    print(render_diff(diff, label_a=args.a, label_b=args.b))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines.brandes import shortest_path_betweenness
    from repro.baselines.pagerank import pagerank_power_iteration
    from repro.baselines.alpha_cfbc import alpha_current_flow_betweenness
    from repro.core.exact import rwbc_exact
    from repro.experiments.report import format_table

    graph = _resolve_graph(args)
    rwbc = rwbc_exact(graph)
    spbc = shortest_path_betweenness(graph)
    pagerank = pagerank_power_iteration(graph)
    alpha = alpha_current_flow_betweenness(graph, alpha=0.9)
    nodes = sorted(graph.nodes(), key=lambda v: -rwbc[v])
    if args.top is not None:
        nodes = nodes[: args.top]
    records = [
        {
            "node": str(node),
            "rwbc": rwbc[node],
            "spbc": spbc[node],
            "pagerank": pagerank[node],
            "alpha_cfbc(0.9)": alpha[node],
        }
        for node in nodes
    ]
    print(f"# measures, n={graph.num_nodes} m={graph.num_edges}")
    print(format_table(records))
    return 0


def _cmd_diameter(args: argparse.Namespace) -> int:
    from repro.congest.primitives.apsp import distributed_diameter

    graph = _resolve_graph(args)
    diameter, rounds = distributed_diameter(graph, seed=args.seed)
    print(
        f"n={graph.num_nodes} m={graph.num_edges} "
        f"diameter={diameter} rounds={rounds}"
    )
    return 0


def _cmd_edges(args: argparse.Namespace) -> int:
    from repro.core.edge_betweenness import edge_current_flow_betweenness

    graph = _resolve_graph(args)
    values = edge_current_flow_betweenness(graph)
    ranked = sorted(values.items(), key=lambda item: -item[1])
    if args.top is not None:
        ranked = ranked[: args.top]
    print(f"# edge current-flow betweenness, n={graph.num_nodes}")
    for (u, v), value in ranked:
        print(f"{u} -- {v}  {value:.6f}")
    return 0


def _cmd_communities(args: argparse.Namespace) -> int:
    from repro.core.edge_betweenness import girvan_newman_current_flow

    graph = _resolve_graph(args)
    parts = girvan_newman_current_flow(graph, communities=args.k)
    print(
        f"# {len(parts)} communities via current-flow Girvan-Newman, "
        f"n={graph.num_nodes}"
    )
    for index, part in enumerate(parts):
        members = " ".join(str(node) for node in sorted(part, key=repr))
        print(f"community {index} (size {len(part)}): {members}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.experiments.workloads import FAMILIES
    from repro.graphs.datasets import DATASETS

    print("synthetic families (--family):")
    for family in FAMILIES:
        print(f"  {family}")
    print("bundled datasets (--dataset):")
    for name in sorted(DATASETS):
        graph = DATASETS[name]()
        print(f"  {name}  (n={graph.num_nodes}, m={graph.num_edges})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed random walk betweenness centrality",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    exact = commands.add_parser("exact", help="exact RWBC")
    _add_graph_arguments(exact)
    exact.add_argument("--top", type=int, help="only the top-k nodes")
    exact.add_argument(
        "--no-endpoints",
        action="store_true",
        help="networkx convention (exclude endpoint pairs)",
    )
    exact.set_defaults(handler=_cmd_exact)

    estimate = commands.add_parser("estimate", help="estimate RWBC")
    _add_graph_arguments(estimate)
    estimate.add_argument(
        "--engine",
        choices=("distributed", "montecarlo"),
        default="distributed",
    )
    estimate.add_argument("--length", type=int, help="walk length l")
    estimate.add_argument("--walks", type=int, help="walks per source K")
    estimate.add_argument("--seed", type=int, default=0)
    estimate.add_argument(
        "--policy", choices=("queue", "batch"), default="queue"
    )
    estimate.add_argument(
        "--executor",
        choices=("sync", "async", "sharded"),
        default="sync",
        help="distributed engine only: lock-step scheduler (sync), "
        "alpha synchronizer (async), or the multi-process sharded "
        "fast path (sharded; byte-identical to sync)",
    )
    estimate.add_argument(
        "--shards",
        type=int,
        help="worker processes for --executor sharded (default 2)",
    )
    estimate.add_argument("--top", type=int)
    estimate.set_defaults(handler=_cmd_estimate)

    chaos = commands.add_parser(
        "chaos", help="estimate RWBC under injected faults"
    )
    _add_graph_arguments(chaos)
    chaos.add_argument("--length", type=int, help="walk length l")
    chaos.add_argument("--walks", type=int, help="walks per source K")
    chaos.add_argument("--seed", type=int, default=0)
    chaos.add_argument("--fault-seed", type=int, default=0xD509)
    chaos.add_argument(
        "--drop", type=float, default=0.1, help="per-message drop rate"
    )
    chaos.add_argument(
        "--dup", type=float, default=0.0, help="per-message duplication rate"
    )
    chaos.add_argument(
        "--delay", type=float, default=0.0, help="per-message delay rate"
    )
    chaos.add_argument(
        "--crash", type=int, help="crash-recover this node (relabeled id)"
    )
    chaos.add_argument(
        "--crash-start", type=int, default=1, help="crash window start round"
    )
    chaos.add_argument(
        "--crash-span", type=int, default=5, help="crash window length"
    )
    chaos.add_argument(
        "--executor",
        choices=("sync", "async", "sharded"),
        default="sync",
        help="run the reliable sync protocol, the fault-tolerant "
        "alpha synchronizer on the event-driven async executor, or "
        "the reliable protocol on the multi-process sharded fast path",
    )
    chaos.add_argument(
        "--shards",
        type=int,
        help="worker processes for --executor sharded (default 2)",
    )
    chaos.add_argument(
        "--max-delay",
        type=float,
        default=10.0,
        help="async executor: message delay bound in virtual time",
    )
    chaos.add_argument(
        "--baseline",
        action="store_true",
        help="also run fault-free and report the max estimate deviation",
    )
    chaos.add_argument("--top", type=int)
    chaos.add_argument(
        "--observe",
        metavar="PATH",
        help="record telemetry and write a JSONL observe artifact here",
    )
    chaos.set_defaults(handler=_cmd_chaos)

    sweep = commands.add_parser(
        "sweep",
        help="run a scenario suite and track its perf trajectory",
    )
    sweep.add_argument(
        "--suite",
        default="smoke",
        help="named scenario suite (see --list); default smoke",
    )
    sweep.add_argument(
        "--out",
        help="trajectory file to append to (default BENCH_<suite>.json)",
    )
    sweep.add_argument(
        "--only",
        action="append",
        metavar="SUBSTRING",
        help="run only scenarios whose name contains SUBSTRING (repeatable)",
    )
    sweep.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the fresh run regresses against the previous "
        "trajectory entry",
    )
    sweep.add_argument(
        "--baseline",
        help="compare against the last entry of this trajectory file "
        "instead of --out",
    )
    sweep.add_argument(
        "--wall-ratio",
        type=float,
        default=2.0,
        help="wall-clock regression band (fail when slower than "
        "RATIO x previous)",
    )
    sweep.add_argument(
        "--wall-floor",
        type=float,
        default=0.1,
        help="minimum absolute wall-clock growth in seconds before the "
        "band applies (sub-floor jitter is timer noise, not regression)",
    )
    sweep.add_argument(
        "--wall-clock",
        choices=("same-machine", "always", "off"),
        default="same-machine",
        help="when to apply the wall-clock band (default: only between "
        "entries from identical machines)",
    )
    sweep.add_argument(
        "--no-append",
        action="store_true",
        help="run and compare but do not append an entry",
    )
    sweep.add_argument(
        "--sha", help="override the git SHA recorded in the entry"
    )
    sweep.add_argument(
        "--list",
        action="store_true",
        help="list suites and their scenarios, then exit",
    )
    sweep.set_defaults(handler=_cmd_sweep)

    observe = commands.add_parser(
        "observe", help="telemetry toolkit (run / report / diff / trend)"
    )
    observe_commands = observe.add_subparsers(
        dest="observe_command", required=True
    )

    observe_run = observe_commands.add_parser(
        "run", help="run the distributed estimator with telemetry on"
    )
    observe_run.add_argument(
        "--graph", help="synthetic family (see 'info'), e.g. er"
    )
    observe_run.add_argument(
        "--n", type=int, default=30, help="size for --graph"
    )
    observe_run.add_argument(
        "--graph-seed", type=int, default=0, help="seed for --graph"
    )
    observe_run.add_argument("--dataset", help="bundled dataset (see 'info')")
    observe_run.add_argument("--edge-list", help="path to an edge-list file")
    observe_run.add_argument("--length", type=int, help="walk length l")
    observe_run.add_argument("--walks", type=int, help="walks per source K")
    observe_run.add_argument("--seed", type=int, default=0)
    observe_run.add_argument(
        "--policy", choices=("queue", "batch"), default="queue"
    )
    observe_run.add_argument(
        "--slow",
        action="store_true",
        help="force the per-message loop (vectorized=False)",
    )
    observe_run.add_argument(
        "--trace",
        action="store_true",
        help="also record per-message deliver events into the artifact",
    )
    observe_run.add_argument(
        "--trace-events",
        type=int,
        default=100_000,
        help="trace event cap (with --trace)",
    )
    observe_run.add_argument(
        "--out", required=True, help="JSONL artifact output path"
    )
    observe_run.set_defaults(handler=_cmd_observe_run)

    observe_report = observe_commands.add_parser(
        "report", help="render one artifact as a text report"
    )
    observe_report.add_argument("artifact", help="JSONL artifact path")
    observe_report.set_defaults(handler=_cmd_observe_report)

    observe_diff = observe_commands.add_parser(
        "diff", help="compare two artifacts"
    )
    observe_diff.add_argument("a", help="baseline artifact")
    observe_diff.add_argument("b", help="comparison artifact")
    observe_diff.set_defaults(handler=_cmd_observe_diff)

    observe_trend = observe_commands.add_parser(
        "trend", help="render a BENCH_<suite>.json trajectory history"
    )
    observe_trend.add_argument(
        "trajectory", help="trajectory file (e.g. BENCH_smoke.json)"
    )
    observe_trend.add_argument(
        "--scenario", help="only this scenario's history"
    )
    observe_trend.add_argument(
        "--last", type=int, help="only the most recent N entries"
    )
    observe_trend.set_defaults(handler=_cmd_observe_trend)

    compare = commands.add_parser("compare", help="measure landscape")
    _add_graph_arguments(compare)
    compare.add_argument("--top", type=int)
    compare.set_defaults(handler=_cmd_compare)

    diameter = commands.add_parser("diameter", help="distributed diameter")
    _add_graph_arguments(diameter)
    diameter.add_argument("--seed", type=int, default=0)
    diameter.set_defaults(handler=_cmd_diameter)

    edges = commands.add_parser("edges", help="edge current-flow betweenness")
    _add_graph_arguments(edges)
    edges.add_argument("--top", type=int)
    edges.set_defaults(handler=_cmd_edges)

    communities = commands.add_parser(
        "communities", help="current-flow Girvan-Newman split"
    )
    _add_graph_arguments(communities)
    communities.add_argument(
        "--k", type=int, default=2, help="number of communities"
    )
    communities.set_defaults(handler=_cmd_communities)

    info = commands.add_parser("info", help="list families and datasets")
    info.set_defaults(handler=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (GraphError, SchemaError, OSError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
