"""Distributed termination detection for the counting phase.

Every launched walk eventually dies exactly once - absorbed at the target
or expired at length 0 - and deaths are local events.  With ``n`` and
``K`` known, the expected global death count is ``(n - 1) * K``, so the
root can detect termination by aggregating a *monotone* counter:

* each node tracks its local death count and the latest value reported by
  each tree child;
* whenever its best-known subtree total changes, it reports the new total
  to its parent (at most one ``O(log n)``-bit message per tree edge per
  round);
* because the counter only grows and every death is counted by exactly
  one node, the root's view is always a lower bound, and equality with
  ``(n - 1) * K`` certifies that every walk is dead *and* every count
  message has drained.

The root then floods a ``done`` message carrying a common future round
number at which all nodes switch to the exchange phase in lockstep.
"""

from __future__ import annotations

from repro.congest.errors import ProtocolError
from repro.congest.node import RoundContext

KIND_TERM = "term"
KIND_DONE = "done"


class DeathCounterLogic:
    """Embeddable monotone-counter convergecast for one node."""

    def __init__(
        self,
        node_id: int,
        parent: int | None,
        children: tuple[int, ...],
        expected_total: int,
        strict: bool = True,
    ) -> None:
        if expected_total < 0:
            raise ProtocolError("expected_total must be >= 0")
        self.node_id = node_id
        self.parent = parent
        self.children = children
        self.expected_total = expected_total
        self.strict = strict
        self.local_deaths = 0
        self._child_totals: dict[int, int] = {child: 0 for child in children}
        self._last_reported = -1
        self.stopped = False

    def record_deaths(self, count: int) -> None:
        if count < 0:
            raise ProtocolError("death count must be >= 0")
        self.local_deaths += count

    def receive_report(self, child: int, total: int) -> None:
        """Fold in a child's subtree total (monotone: keep the max).

        In non-strict (loss-tolerant) mode an unknown reporter is
        adopted on the spot: under message loss a child's ``adopt``
        announcement can still be in retransmission when its first
        death report lands, and a node only ever reports to the parent
        its own flood state names, so the sender genuinely belongs to
        this subtree.
        """
        if child not in self._child_totals:
            if self.strict:
                raise ProtocolError(
                    f"termination report from non-child {child} at "
                    f"node {self.node_id}"
                )
            self._child_totals[child] = 0
        if total > self._child_totals[child]:
            self._child_totals[child] = total

    @property
    def subtree_total(self) -> int:
        return self.local_deaths + sum(self._child_totals.values())

    def pop_report(self) -> int | None:
        """Consume a pending report: the new subtree total if it changed
        since the last report (marking it reported), else ``None``.

        Both simulator paths must send the returned total to the parent
        as a ``term`` message this round - popping without sending would
        desynchronize the convergecast.
        """
        if self.stopped or self.parent is None:
            return None
        total = self.subtree_total
        if total <= self._last_reported:
            return None
        self._last_reported = total
        return total

    def maybe_report(self, ctx: RoundContext) -> None:
        """Send the subtree total to the parent if it changed."""
        total = self.pop_report()
        if total is not None:
            ctx.send(self.parent, KIND_TERM, total)

    @property
    def pending_report(self) -> bool:
        """True when :meth:`maybe_report` would send this round.

        The scheduler's fast path uses this (via the program's
        ``bulk_idle``) to skip mail-less rounds: a node with nothing
        queued and nothing unreported cannot change global state.  The
        root never reports, and its completion check is safe to skip on
        mail-less rounds because its subtree total only moves when a
        report arrives or local walks die - both of which deliver mail.
        """
        if self.stopped or self.parent is None:
            return False
        return self.subtree_total > self._last_reported

    @property
    def root_detects_completion(self) -> bool:
        """True at the root when the global counter has fully drained."""
        return self.parent is None and self.subtree_total >= self.expected_total

    def stop(self) -> None:
        """Cease reporting (called once the done wave arrives)."""
        self.stopped = True
