"""The paper's primary contribution: distributed RWBC estimation.

Public surface:

* :func:`rwbc_exact` / :func:`rwbc_exact_pairs` - Newman's exact values;
* :func:`estimate_rwbc_montecarlo` - centralized sampling estimator;
* :func:`estimate_rwbc_distributed` - the full CONGEST protocol
  (Algorithms 1 and 2 plus the setup the paper assumes);
* :mod:`repro.core.parameters` - the Theorem 1/3 ``(l, K)`` schedules.
"""

from repro.core.adaptive import AdaptiveResult, adaptive_montecarlo
from repro.core.bias import SplitEstimate, split_estimate_rwbc
from repro.core.incremental import IncrementalRWBC
from repro.core.edge_betweenness import (
    edge_current_flow_betweenness,
    girvan_newman_current_flow,
)
from repro.core.estimator import (
    default_max_rounds,
    estimate_alpha_cfbc_distributed,
    estimate_rwbc_distributed,
)
from repro.core.exact import rwbc_exact, rwbc_exact_array, rwbc_exact_pairs
from repro.core.flow_math import (
    betweenness_from_raw_flow,
    node_raw_flow,
    pair_sum_all,
    pair_sum_excluding,
)
from repro.core.montecarlo import (
    MonteCarloResult,
    betweenness_from_counts,
    estimate_rwbc_montecarlo,
)
from repro.core.parameters import (
    WalkParameters,
    alpha_length,
    chernoff_failure_bound,
    default_length,
    default_parameters,
    default_walks,
    walks_for_concentration,
)
from repro.core.protocol import ProtocolConfig, RWBCNodeProgram
from repro.core.trivial import TrivialResult, trivial_collect_all
from repro.core.result import DistributedRWBCResult
from repro.core.walk_manager import TransportPolicy, WalkManager

__all__ = [
    "AdaptiveResult",
    "DistributedRWBCResult",
    "IncrementalRWBC",
    "adaptive_montecarlo",
    "MonteCarloResult",
    "SplitEstimate",
    "split_estimate_rwbc",
    "ProtocolConfig",
    "RWBCNodeProgram",
    "TransportPolicy",
    "WalkManager",
    "WalkParameters",
    "alpha_length",
    "betweenness_from_counts",
    "betweenness_from_raw_flow",
    "chernoff_failure_bound",
    "estimate_alpha_cfbc_distributed",
    "default_length",
    "default_max_rounds",
    "default_parameters",
    "default_walks",
    "edge_current_flow_betweenness",
    "estimate_rwbc_distributed",
    "girvan_newman_current_flow",
    "estimate_rwbc_montecarlo",
    "node_raw_flow",
    "pair_sum_all",
    "pair_sum_excluding",
    "rwbc_exact",
    "rwbc_exact_array",
    "rwbc_exact_pairs",
    "TrivialResult",
    "trivial_collect_all",
    "walks_for_concentration",
]
