"""Weighted (conductance) random walk betweenness - matrix layer only.

Newman's measure generalizes verbatim to weighted graphs: edge weights
are conductances, the Laplacian becomes ``L = D_w - W`` with weighted
degrees, and the walk steps to a neighbor with probability proportional
to the edge weight.  The *distributed* algorithm of the paper is stated
for unweighted graphs (its counts-only exchange relies on integer visit
counts; weighted degrees would re-open the section V precision problem
unless weights are themselves small integers), so weighted support here
is deliberately confined to the exact solvers.

Weights are supplied as a mapping rather than stored on the Graph - the
rest of the library keeps its simple unweighted structure, and the
weighted layer composes on top.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.core.flow_math import betweenness_from_raw_flow, pair_sum_all
from repro.graphs.graph import Graph, GraphError, NodeId
from repro.graphs.properties import is_connected

EdgeWeights = Mapping[tuple[NodeId, NodeId], float]


def _weight_matrix(graph: Graph, weights: EdgeWeights) -> np.ndarray:
    """Symmetric weight matrix in canonical order; validates coverage."""
    n = graph.num_nodes
    matrix = np.zeros((n, n))
    seen = set()
    for (u, v), weight in weights.items():
        if not graph.has_edge(u, v):
            raise GraphError(f"weight given for non-edge {{{u!r}, {v!r}}}")
        if weight <= 0:
            raise GraphError(
                f"edge {{{u!r}, {v!r}}} has non-positive weight {weight}"
            )
        i, j = graph.index_of(u), graph.index_of(v)
        key = (min(i, j), max(i, j))
        if key in seen:
            raise GraphError(
                f"edge {{{u!r}, {v!r}}} weighted twice (both orientations?)"
            )
        seen.add(key)
        matrix[i, j] = weight
        matrix[j, i] = weight
    expected = graph.num_edges
    if len(seen) != expected:
        raise GraphError(
            f"weights cover {len(seen)} of {expected} edges; every edge "
            "needs a weight (use 1.0 for unweighted edges)"
        )
    return matrix


def weighted_grounded_inverse(
    graph: Graph, weights: EdgeWeights, target: NodeId
) -> np.ndarray:
    """``(D_w - W)^{-1}`` with the target row/column zeroed."""
    if graph.num_nodes < 2:
        raise GraphError("need >= 2 nodes")
    if not is_connected(graph):
        raise GraphError("graph must be connected")
    w = _weight_matrix(graph, weights)
    laplacian = np.diag(w.sum(axis=1)) - w
    n = graph.num_nodes
    t = graph.index_of(target)
    keep = np.arange(n) != t
    full = np.zeros((n, n))
    full[np.ix_(keep, keep)] = np.linalg.inv(laplacian[np.ix_(keep, keep)])
    return full


def weighted_rwbc_exact(
    graph: Graph,
    weights: EdgeWeights,
    target: NodeId | None = None,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> dict[NodeId, float]:
    """Exact weighted RWBC of every node.

    Eq. 6 generalizes with the current on edge ``(i, j)`` becoming
    ``w_ij * |V_i - V_j|``; with all weights 1 this reduces exactly to
    :func:`repro.core.exact.rwbc_exact` (asserted by tests), and the
    no-endpoints convention matches networkx's weighted
    ``current_flow_betweenness_centrality``.
    """
    if target is None:
        target = graph.canonical_order()[0]
    potentials = weighted_grounded_inverse(graph, weights, target)
    w = _weight_matrix(graph, weights)
    n = graph.num_nodes
    order = graph.canonical_order()
    result: dict[NodeId, float] = {}
    for i, node in enumerate(order):
        raw = 0.0
        for neighbor in graph.neighbors(node):
            j = graph.index_of(neighbor)
            difference = potentials[i] - potentials[j]
            raw += w[i, j] * _pair_sum_excluding(difference, i)
        raw *= 0.5
        result[node] = betweenness_from_raw_flow(
            raw,
            n,
            scale=1.0,
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
    return result


def weighted_edge_betweenness(
    graph: Graph,
    weights: EdgeWeights,
    target: NodeId | None = None,
    normalized: bool = True,
) -> dict[tuple[NodeId, NodeId], float]:
    """Weighted current-flow betweenness of every edge."""
    if target is None:
        target = graph.canonical_order()[0]
    potentials = weighted_grounded_inverse(graph, weights, target)
    w = _weight_matrix(graph, weights)
    n = graph.num_nodes
    pairs = 0.5 * n * (n - 1)
    result: dict[tuple[NodeId, NodeId], float] = {}
    for u, v in graph.edges():
        i, j = graph.index_of(u), graph.index_of(v)
        total = w[i, j] * pair_sum_all(potentials[i] - potentials[j])
        result[(u, v)] = total / pairs if normalized else total
    return result


def _pair_sum_excluding(difference: np.ndarray, excluded: int) -> float:
    from repro.core.flow_math import pair_sum_excluding

    return pair_sum_excluding(difference, excluded)
