"""Shared "potentials -> betweenness" arithmetic (Eqs. 5-8).

Three different computations reduce to the same formula:

* the exact solver, where the potential of node ``i`` for source ``s`` is
  the grounded-inverse entry ``T[i, s]``;
* the centralized Monte-Carlo estimator, where it is the degree-scaled
  visit count ``xi_i^s / d(i)`` (an estimate of ``K * T[i, s]``);
* each node of the distributed protocol, which knows its own and its
  neighbors' count vectors after the exchange phase.

For a node ``i`` with neighbor ``j`` and potential vectors ``p_i, p_j``
(indexed by source), Eq. 6 sums ``|w_s - w_t|`` with ``w = p_i - p_j``
over all pairs ``s < t`` avoiding ``i``; Eq. 7 adds one unit (scaled by
the walk count ``K``) for each of the ``n - 1`` pairs with ``i`` as an
endpoint; Eq. 8 normalizes by the number of pairs.

The pair sum uses the classic sorting identity::

    sum_{s<t} |w_s - w_t| = sum_k (2k - n + 1) * w_(k)

(ascending ``w_(k)``, 0-indexed), turning an ``O(n^2)`` sum into
``O(n log n)``.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.graphs.graph import GraphError


def pair_sum_all(w: np.ndarray) -> float:
    """``sum_{s<t} |w_s - w_t|`` over all index pairs, via sorting."""
    n = w.shape[0]
    if n < 2:
        return 0.0
    sorted_w = np.sort(w)
    coefficients = 2.0 * np.arange(n) - (n - 1)
    return float(sorted_w @ coefficients)


def pair_sum_excluding(w: np.ndarray, excluded: int) -> float:
    """``sum_{s<t, s != e, t != e} |w_s - w_t|``.

    Computed as the full pair sum minus the ``n - 1`` pairs that involve
    the excluded index.
    """
    return pair_sum_all(w) - float(np.abs(w - w[excluded]).sum())


def node_raw_flow(
    own_potential: np.ndarray,
    neighbor_potentials: Iterable[np.ndarray],
    own_index: int,
) -> float:
    """``sum_{s<t, not involving i} I_i^{(st)}`` in raw (un-normalized) units.

    ``own_potential`` and each neighbor potential are length-``n`` vectors
    indexed by source.  Implements the double sum of Eq. 6 aggregated over
    all pairs: ``1/2 * sum_j sum_{s<t} |w_s - w_t|`` with
    ``w = p_i - p_j``.
    """
    total = 0.0
    for neighbor_potential in neighbor_potentials:
        w = own_potential - neighbor_potential
        total += pair_sum_excluding(w, own_index)
    return 0.5 * total


def betweenness_from_raw_flow(
    raw_flow: float,
    n: int,
    scale: float = 1.0,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> float:
    """Fold in the endpoint pairs (Eq. 7) and normalize (Eq. 8).

    Parameters
    ----------
    raw_flow:
        Output of :func:`node_raw_flow`.
    n:
        Number of nodes.
    scale:
        Units of ``raw_flow`` per pair: 1 for exact potentials, ``K`` for
        Monte-Carlo counts over ``K`` walks (Algorithm 2 divides by
        ``K n (n-1) / 2``).
    include_endpoints:
        Newman's definition (Eq. 7) counts a full unit for the ``n - 1``
        pairs where the node is ``s`` or ``t``.  Disabling both the
        endpoint credit and its share of the normalization reproduces the
        networkx ``current_flow_betweenness_centrality`` convention.
    normalized:
        Divide by the pair count; ``False`` returns raw per-pair units
        (still divided by ``scale``).
    """
    if n < 2:
        raise GraphError("betweenness undefined for n < 2")
    if scale <= 0:
        raise GraphError("scale must be positive")
    total = raw_flow
    if include_endpoints:
        total += (n - 1) * scale
    if not normalized:
        return total / scale
    pairs = 0.5 * n * (n - 1) if include_endpoints else 0.5 * (n - 1) * (n - 2)
    if pairs == 0:
        raise GraphError(
            "normalization undefined: no interior pairs for n = 2 without "
            "endpoints"
        )
    return total / (pairs * scale)
