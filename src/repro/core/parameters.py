"""Choosing the walk length ``l`` and walk count ``K`` (Theorems 1 and 3).

The paper proves ``l = O(n)`` suffices for a ``(1 - epsilon)``
approximation (Theorem 1) and ``K = O(log n)`` walks per source give
concentration w.h.p. (Theorem 3), but leaves the constants implicit (they
depend on the spectral gap of ``M_t`` and the Chernoff slack).  This
module provides:

* simple default schedules ``l = c_l * n`` and ``K = c_K * log2 n`` used
  by the estimators, and
* the explicit Chernoff arithmetic of Theorem 3, so experiments can
  relate a desired relative error ``delta`` and failure probability to a
  concrete ``K``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.graphs.graph import GraphError


@dataclass(frozen=True)
class WalkParameters:
    """The knobs of one estimation run.

    Attributes
    ----------
    length:
        Truncation length ``l`` of every walk.
    walks_per_source:
        ``K``.
    """

    length: int
    walks_per_source: int

    def __post_init__(self) -> None:
        if self.length < 1:
            raise GraphError("walk length must be >= 1")
        if self.walks_per_source < 1:
            raise GraphError("walks_per_source must be >= 1")

    @property
    def total_walks_factor(self) -> int:
        """``K * l``: per-source work, the driver of counting-phase time."""
        return self.length * self.walks_per_source


def default_length(n: int, factor: float = 3.0) -> int:
    """Theorem 1 schedule ``l = c * n`` with a practical default constant."""
    if n < 2:
        raise GraphError("need n >= 2")
    if factor <= 0:
        raise GraphError("factor must be positive")
    return max(2, math.ceil(factor * n))


def default_walks(n: int, factor: float = 4.0) -> int:
    """Theorem 3 schedule ``K = c * log2 n`` with a practical default."""
    if n < 2:
        raise GraphError("need n >= 2")
    if factor <= 0:
        raise GraphError("factor must be positive")
    return max(4, math.ceil(factor * math.log2(n)))


def default_parameters(
    n: int, length_factor: float = 3.0, walks_factor: float = 4.0
) -> WalkParameters:
    """The ``(l, K)`` pair the estimators use unless told otherwise."""
    return WalkParameters(
        length=default_length(n, length_factor),
        walks_per_source=default_walks(n, walks_factor),
    )


def alpha_length(alpha: float, epsilon: float = 0.01) -> int:
    """Truncation length for damped (alpha-CFBC) walks.

    A damped walk exceeds ``l`` hops with probability ``alpha^l``, so
    ``l = ln(epsilon) / ln(alpha) ~ O(1 / (1 - alpha))`` caps the
    truncated mass at ``epsilon`` - the section II-C length scale.
    """
    if not 0.0 < alpha < 1.0:
        raise GraphError("alpha must be in (0, 1)")
    if not 0.0 < epsilon < 1.0:
        raise GraphError("epsilon must be in (0, 1)")
    return max(1, math.ceil(math.log(epsilon) / math.log(alpha)))


def walks_for_concentration(
    n: int,
    delta: float,
    expectation_constant: float = 1.0,
    failure_exponent: float = 1.0,
) -> int:
    """Theorem 3's ``K``: two-sided Chernoff with relative error ``delta``.

    With ``E[X] = c K`` (``c = expectation_constant``), requiring
    ``2 exp(-delta^2 c K / 3) <= 2 n^{-failure_exponent}`` gives::

        K >= 3 * failure_exponent * ln(n) / (c * delta^2)

    Parameters mirror the proof; the default ``c = 1`` is conservative for
    nodes a typical walk visits about once.
    """
    if n < 2:
        raise GraphError("need n >= 2")
    if not 0.0 < delta < 1.0:
        raise GraphError("delta must be in (0, 1)")
    if expectation_constant <= 0:
        raise GraphError("expectation_constant must be positive")
    if failure_exponent <= 0:
        raise GraphError("failure_exponent must be positive")
    k = 3.0 * failure_exponent * math.log(n) / (expectation_constant * delta**2)
    return max(1, math.ceil(k))


def chernoff_failure_bound(
    k: int, delta: float, expectation_constant: float = 1.0
) -> float:
    """The two-sided Chernoff tail ``2 exp(-delta^2 c K / 3)``.

    Used by the E4 experiment to plot the proven bound next to the
    measured deviation frequency.
    """
    if k < 1:
        raise GraphError("k must be >= 1")
    if delta <= 0:
        raise GraphError("delta must be positive")
    return 2.0 * math.exp(-(delta**2) * expectation_constant * k / 3.0)
