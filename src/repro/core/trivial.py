"""The paper's "trivial algorithm": collect the graph, compute exactly.

Section I: "asking a designated node to collect all the other nodes'
neighbors information and then letting the node calculate the
betweenness centrality values locally ... needs O(m) time under the
CONGEST model."  This module implements that algorithm for real, so the
E9 crossover experiment compares *measured* round counts instead of a
model:

1. leader election + BFS tree (n + 2 rounds, shared with the main
   protocol);
2. edge collection: every node reports its incident edges up the tree,
   pipelined one report per tree edge per round, with a drained-subtree
   convergecast for termination - Theta(m) rounds on the root's
   bottleneck link;
3. the leader rebuilds the graph, runs the exact solver locally (local
   computation is free in CONGEST), and floods each node's value back
   down the tree in fixed point (values are floats; the transport is
   integer-only, so values ride as ``round(b * 2^SCALE)``) - Theta(n)
   rounds, pipelined.

Exactness is limited only by the fixed-point resolution (2^-20), which
the tests assert.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.congest.node import NodeInfo, NodeProgram, RoundContext
from repro.congest.primitives.flood import FloodMaxBFS, FloodMaxState
from repro.graphs.graph import Graph, GraphError

KIND_EDGE = "tedge"
KIND_DRAINED = "tdrain"
KIND_VALUE = "tval"
KIND_END = "tend"

SCALE_BITS = 20
SCALE = 1 << SCALE_BITS

PHASE_SETUP = "setup"
PHASE_COLLECT = "collect"
PHASE_VALUES = "values"
PHASE_DONE = "done"


class CollectAllProgram(NodeProgram):
    """One node of the trivial exact algorithm.

    Outputs: ``betweenness`` (fixed-point exact value), ``target``
    (the leader/computing node), and phase markers for round accounting:
    ``collect_rounds``, ``value_rounds``.
    """

    def __init__(
        self,
        info: NodeInfo,
        rng: np.random.Generator,
        include_endpoints: bool = True,
    ) -> None:
        super().__init__(info, rng)
        if not 0 <= info.node_id < info.n:
            raise ProtocolError("labels must be 0..n-1")
        self.include_endpoints = include_endpoints
        self.phase = PHASE_SETUP
        rank = int(rng.integers(0, max(2, info.n) ** 3))
        self._flood = FloodMaxBFS(info.node_id, rank)
        self._tree: FloodMaxState | None = None
        # Edge reports waiting to go to the parent.
        self._report_queue: deque[tuple[int, int]] = deque()
        self._children_drained: set[int] = set()
        self._drained_sent = False
        # Leader-side state.
        self._collected: set[tuple[int, int]] = set()
        self._value_queue: deque[tuple[int, int]] = deque()
        self._end_received = False
        # Outputs.
        self.betweenness: float | None = None
        self.target: int | None = None
        self.collect_start: int | None = None
        self.values_start: int | None = None
        self.finish_round: int | None = None

    # ------------------------------------------------------------------
    def on_start(self, ctx: RoundContext) -> None:
        self._flood.start(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        if self.phase == PHASE_SETUP:
            self._setup_round(ctx, inbox)
        elif self.phase == PHASE_COLLECT:
            self._collect_round(ctx, inbox)
        elif self.phase == PHASE_VALUES:
            self._values_round(ctx, inbox)
        else:
            self.halt()

    # ------------------------------------------------------------------
    def _setup_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        n = self.info.n
        r = ctx.round_number
        if r <= n:
            self._flood.step(ctx, inbox)
            if r == n:
                self._flood.announce_parent(ctx)
            return
        # r == n + 1: finalize the tree; queue own edge reports.
        self._tree = self._flood.finish(inbox)
        self.target = self._tree.leader_id
        for neighbor in self.neighbors:
            if self.node_id < neighbor:
                self._report_queue.append((self.node_id, neighbor))
        self.phase = PHASE_COLLECT
        self.collect_start = r
        self._collect_sends(ctx)

    # ------------------------------------------------------------------
    def _collect_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        value_phase_started = False
        for message in inbox:
            if message.kind == KIND_EDGE:
                u, v = message.fields
                if self._is_leader:
                    self._collected.add((u, v))
                else:
                    self._report_queue.append((u, v))
            elif message.kind == KIND_DRAINED:
                self._children_drained.add(message.sender)
            elif message.kind in (KIND_VALUE, KIND_END):
                value_phase_started = True
        if value_phase_started:
            # The leader finished collecting and started flooding values.
            self.phase = PHASE_VALUES
            self.values_start = ctx.round_number
            self._values_round(ctx, inbox)
            return
        if self._is_leader and self._children_drained == set(
            self._tree.children
        ):
            self._begin_values(ctx)
            return
        self._collect_sends(ctx)

    @property
    def _is_leader(self) -> bool:
        return self._tree is not None and self._tree.parent is None

    def _collect_sends(self, ctx: RoundContext) -> None:
        if self._is_leader:
            return
        parent = self._tree.parent
        if self._report_queue:
            u, v = self._report_queue.popleft()
            ctx.send(parent, KIND_EDGE, u, v)
        elif (
            not self._drained_sent
            and self._children_drained == set(self._tree.children)
        ):
            # Subtree drained: every child reported drained and the local
            # queue is empty.  (FIFO order on the parent link guarantees
            # all our edge reports precede this marker.)
            ctx.send(parent, KIND_DRAINED)
            self._drained_sent = True

    # ------------------------------------------------------------------
    def _begin_values(self, ctx: RoundContext) -> None:
        """Leader: rebuild the graph, solve exactly, queue the answers."""
        from repro.core.exact import rwbc_exact

        # The leader's own incident edges never crossed the wire.
        for neighbor in self.neighbors:
            self._collected.add(
                (min(self.node_id, neighbor), max(self.node_id, neighbor))
            )
        graph = Graph(nodes=range(self.info.n))
        for u, v in self._collected:
            graph.add_edge(u, v)
        values = rwbc_exact(
            graph,
            target=self.node_id,
            include_endpoints=self.include_endpoints,
        )
        for node in range(self.info.n):
            scaled = int(round(values[node] * SCALE))
            if node == self.node_id:
                self.betweenness = scaled / SCALE
            else:
                self._value_queue.append((node, scaled))
        self.phase = PHASE_VALUES
        self.values_start = ctx.round_number
        self._values_round(ctx, [])

    def _values_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        for message in inbox:
            if message.kind == KIND_VALUE:
                node, scaled = message.fields
                if node == self.node_id:
                    self.betweenness = scaled / SCALE
                else:
                    self._value_queue.append((node, scaled))
            elif message.kind == KIND_END:
                self._end_received = True
            # EDGE / DRAINED stragglers cannot occur (the leader starts
            # this phase only after every subtree drained) but would be
            # harmless if they did.
        if self._value_queue:
            # Pipelined flood: one value per tree edge per round.
            node, scaled = self._value_queue.popleft()
            for child in self._tree.children:
                ctx.send(child, KIND_VALUE, node, scaled)
            return
        if self._is_leader or self._end_received:
            # Queue flushed and (for non-leaders) the end marker has
            # arrived behind the last value on the FIFO parent link.
            for child in self._tree.children:
                ctx.send(child, KIND_END)
            self.finish_round = ctx.round_number
            self.phase = PHASE_DONE
            self.halt()


def make_trivial_factory(include_endpoints: bool = True):
    def factory(info: NodeInfo, rng: np.random.Generator):
        return CollectAllProgram(info, rng, include_endpoints)

    return factory


@dataclass(frozen=True)
class TrivialResult:
    betweenness: dict
    target: object
    rounds: int
    total_messages: int


def trivial_collect_all(
    graph: Graph,
    seed: int | None = None,
    include_endpoints: bool = True,
) -> TrivialResult:
    """Run the collect-all algorithm; exact values, Theta(m + n) rounds."""
    from repro.congest.scheduler import Simulator
    from repro.congest.transport import BandwidthPolicy

    if graph.num_nodes < 2:
        raise GraphError("need >= 2 nodes")
    relabeled, mapping = graph.relabeled()
    inverse = {index: node for node, index in mapping.items()}
    policy = BandwidthPolicy(n=relabeled.num_nodes, messages_per_edge=4)
    result = Simulator(
        relabeled,
        make_trivial_factory(include_endpoints),
        policy=policy,
        seed=seed,
        max_rounds=100 * (relabeled.num_edges + relabeled.num_nodes) + 1000,
    ).run()
    betweenness = {
        inverse[index]: result.program(index).betweenness
        for index in range(relabeled.num_nodes)
    }
    target = inverse[result.program(0).target]
    return TrivialResult(
        betweenness=betweenness,
        target=target,
        rounds=result.metrics.rounds,
        total_messages=result.metrics.total_messages,
    )
