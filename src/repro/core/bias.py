"""Bias diagnostics for the Algorithm 2 estimator.

Reproduction finding (experiment E15): Eq. 6 applies an absolute value
to *estimated* potential differences, and ``E|x + noise| > |x|``, so the
betweenness estimate carries a systematic upward bias that accumulates
over the Theta(n^2) pairs.  At the paper's ``K = O(log n)`` schedule the
bias *grows* with n (it is the dominant error term), even though the
per-count concentration of Theorem 3 holds exactly as stated.  Rankings
survive (the bias is nearly uniform across nodes); values do not.

This module quantifies and optionally removes the bias using a
split-sample construction: run the counting phase as two independent
halves ``A`` and ``B``.  Then

* ``w = (w_A + w_B) / 2`` estimates the true difference with noise
  variance ``sigma^2 / 2``, and
* ``e = (w_A - w_B) / 2`` is *pure noise with the identical
  distribution* under the null (true difference zero).

Hence ``sum |e|`` terms measure the noise floor of ``sum |w|`` exactly
for null pairs, and ``|w| - |e|`` is unbiased on nulls and slightly
conservative on strong signals.  The debiased values trade a little
ranking quality for greatly reduced value bias - both effects are
measured in the E15 bench.

Everything here is distributable: the two halves are just two count
vectors per node (tag each walk with one bit), doubling the exchange
phase to ``2n`` rounds - still ``O(n log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.flow_math import betweenness_from_raw_flow, pair_sum_excluding
from repro.graphs.graph import Graph, GraphError
from repro.walks.simulate import simulate_walk_counts


@dataclass(frozen=True)
class SplitEstimate:
    """Plain, noise-floor, and debiased estimates from one split run."""

    plain: dict
    noise_floor: dict
    debiased: dict
    walks_per_half: int


def _half_potentials(graph: Graph, target, length, walks, seed):
    counts = simulate_walk_counts(
        graph, target, length=length, walks_per_source=walks, seed=seed
    )
    return counts.counts / graph.degree_vector()[:, np.newaxis]


def split_estimate_rwbc(
    graph: Graph,
    target,
    length: int,
    walks_per_source: int,
    seed: int = 0,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> SplitEstimate:
    """Monte-Carlo RWBC with split-sample bias accounting.

    ``walks_per_source`` is the *total* K; each half runs K/2 walks.

    Returns the plain estimator (identical in distribution to
    :func:`repro.core.montecarlo.estimate_rwbc_montecarlo` at the same
    total K), the per-node noise floor, and the debiased values
    ``plain - noise_floor``.
    """
    if walks_per_source < 2:
        raise GraphError("split estimation needs walks_per_source >= 2")
    half = walks_per_source // 2
    rng = np.random.default_rng(seed)
    seed_a, seed_b = int(rng.integers(2**32)), int(rng.integers(2**32))
    pot_a = _half_potentials(graph, target, length, half, seed_a)
    pot_b = _half_potentials(graph, target, length, half, seed_b)
    mean_potentials = (pot_a + pot_b) / 2.0
    noise = (pot_a - pot_b) / 2.0

    n = graph.num_nodes
    order = graph.canonical_order()
    plain: dict = {}
    floor: dict = {}
    debiased: dict = {}
    for i, node in enumerate(order):
        raw_signal = 0.0
        raw_noise = 0.0
        for neighbor in graph.neighbors(node):
            j = graph.index_of(neighbor)
            raw_signal += pair_sum_excluding(
                mean_potentials[i] - mean_potentials[j], i
            )
            raw_noise += pair_sum_excluding(noise[i] - noise[j], i)
        raw_signal *= 0.5
        raw_noise *= 0.5
        plain[node] = betweenness_from_raw_flow(
            raw_signal,
            n,
            scale=float(half),
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
        # The noise floor carries no endpoint credit: Eq. 7 terms are
        # deterministic and bias-free.
        floor[node] = betweenness_from_raw_flow(
            raw_noise,
            n,
            scale=float(half),
            include_endpoints=False,
            normalized=False,
        ) / (0.5 * n * (n - 1) if normalized else 1.0)
        debiased[node] = plain[node] - floor[node]
    return SplitEstimate(
        plain=plain,
        noise_floor=floor,
        debiased=debiased,
        walks_per_half=half,
    )
