"""Centralized Monte-Carlo RWBC estimator.

Mirrors the distributed algorithm's sampling semantics exactly (same walk
process, same counts-to-betweenness arithmetic via
:mod:`repro.core.flow_math`) but runs on the vectorized walk engine with
no message accounting.  Used for accuracy experiments at sizes where the
faithful per-message simulation would be too slow, and as the
cross-validation anchor for the distributed protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.flow_math import betweenness_from_raw_flow, node_raw_flow
from repro.core.parameters import WalkParameters, default_parameters
from repro.graphs.graph import Graph, GraphError
from repro.walks.simulate import WalkCounts, simulate_walk_counts


@dataclass(frozen=True)
class MonteCarloResult:
    """Estimates plus the diagnostics the theorems are about."""

    betweenness: dict
    parameters: WalkParameters
    target: object
    survival_fraction: float
    counts: WalkCounts

    def as_array(self, graph: Graph) -> np.ndarray:
        return np.array(
            [self.betweenness[node] for node in graph.canonical_order()]
        )


def betweenness_from_counts(
    graph: Graph,
    counts: np.ndarray,
    walks_per_source: int,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> dict:
    """Algorithm 2 as arithmetic: visit counts -> betweenness estimates.

    ``counts[v, s]`` are raw visit counts in canonical order.  Line 1 of
    Algorithm 2 divides by the node degree (turning counts into potential
    estimates ``~ K * T[v, s]``); the rest is the shared Eq. 6-8 math with
    ``scale = K``.
    """
    if counts.shape != (graph.num_nodes, graph.num_nodes):
        raise GraphError(
            f"counts must be (n, n) = {(graph.num_nodes,) * 2}, "
            f"got {counts.shape}"
        )
    if walks_per_source < 1:
        raise GraphError("walks_per_source must be >= 1")
    order = graph.canonical_order()
    n = graph.num_nodes
    degrees = graph.degree_vector()
    potentials = counts / degrees[:, np.newaxis]
    result = {}
    for i, node in enumerate(order):
        neighbor_rows = (
            potentials[graph.index_of(neighbor)]
            for neighbor in graph.neighbors(node)
        )
        raw = node_raw_flow(potentials[i], neighbor_rows, i)
        result[node] = betweenness_from_raw_flow(
            raw,
            n,
            scale=float(walks_per_source),
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
    return result


def estimate_rwbc_montecarlo(
    graph: Graph,
    parameters: WalkParameters | None = None,
    target=None,
    seed: int | np.random.Generator | None = None,
    include_endpoints: bool = True,
    normalized: bool = True,
    count_initial: bool = True,
) -> MonteCarloResult:
    """Estimate every node's RWBC with truncated Monte-Carlo walks.

    Parameters
    ----------
    graph:
        Connected graph, n >= 2.
    parameters:
        ``(l, K)``; defaults to the Theorem 1/3 schedules
        (:func:`repro.core.parameters.default_parameters`).
    target:
        Absorbing node; a uniformly random node when None (matching the
        distributed protocol's random leader).
    seed:
        Reproducibility control; also drives the random target choice.
    count_initial:
        See :func:`repro.walks.simulate.simulate_walk_counts`.
    """
    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    if parameters is None:
        parameters = default_parameters(graph.num_nodes)
    if target is None:
        order = graph.canonical_order()
        target = order[int(rng.integers(len(order)))]
    counts = simulate_walk_counts(
        graph,
        target,
        length=parameters.length,
        walks_per_source=parameters.walks_per_source,
        seed=rng,
        count_initial=count_initial,
    )
    betweenness = betweenness_from_counts(
        graph,
        counts.counts,
        parameters.walks_per_source,
        include_endpoints=include_endpoints,
        normalized=normalized,
    )
    return MonteCarloResult(
        betweenness=betweenness,
        parameters=parameters,
        target=target,
        survival_fraction=counts.survival_fraction,
        counts=counts,
    )
