"""Per-node walk bookkeeping for the counting phase (Algorithm 1).

Each node owns a :class:`WalkManager` that:

* launches the node's ``K`` walks,
* processes walk arrivals (count the visit, absorb at the target, expire
  at length 0, otherwise pick the next hop uniformly at random *at
  enqueue time* and queue the token on that edge),
* emits at most ``walk_budget`` walk messages per outgoing edge per round
  (the CONGEST constraint), under one of two policies:

  - ``QUEUE``: tokens are sent individually; excess tokens wait in FIFO
    order on their chosen edge (never re-rolling the choice - re-rolling
    would bias hops toward uncongested edges and break uniformity);
  - ``BATCH``: tokens on the same edge with identical ``(source,
    remaining)`` fields are coalesced into one counted message, which is
    still ``O(log n)`` bits.

The paper's line 6 ("if there is more than one random walk needed to be
sent to v, just send a random walk to v randomly") is ambiguous between
these readings; both are implemented and compared in experiment E12.
"""

from __future__ import annotations

import enum
from collections import deque

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.node import RoundContext

KIND_WALK = "walk"
KIND_WALK_BATCH = "walkb"


class TransportPolicy(enum.Enum):
    """How queued walk tokens map onto messages."""

    QUEUE = "queue"
    BATCH = "batch"


class WalkManager:
    """Walk queues, visit counts, and death accounting for one node."""

    def __init__(
        self,
        node_id: int,
        neighbors: tuple[int, ...],
        n: int,
        target: int,
        walks_per_source: int,
        length: int,
        rng: np.random.Generator,
        policy: TransportPolicy = TransportPolicy.QUEUE,
        walk_budget: int = 2,
        count_initial: bool = True,
        survival_alpha: float | None = None,
        split_sampling: bool = False,
    ) -> None:
        """``survival_alpha``: when set, walks are *damped* instead of
        absorbed - every hop succeeds only with probability alpha (the
        alpha-current-flow semantics of section II-C), every node
        (including the nominal target) launches walks, and arrivals at
        the target are ordinary visits.

        ``split_sampling``: tag each walk with a half-bit (A/B) and keep
        two count vectors, enabling the noise-floor bias correction of
        :mod:`repro.core.bias` at the cost of one extra bit per token.
        """
        if walk_budget < 1:
            raise ProtocolError("walk_budget must be >= 1")
        if length < 1:
            raise ProtocolError("walk length must be >= 1")
        if survival_alpha is not None and not 0.0 < survival_alpha < 1.0:
            raise ProtocolError("survival_alpha must be in (0, 1)")
        self.node_id = node_id
        self.neighbors = neighbors
        self.n = n
        self.target = target
        self.walks_per_source = walks_per_source
        self.length = length
        self.rng = rng
        self.policy = policy
        self.walk_budget = walk_budget
        self.count_initial = count_initial
        self.survival_alpha = survival_alpha
        self.split_sampling = split_sampling
        if split_sampling and walks_per_source % 2 != 0:
            raise ProtocolError(
                "split sampling needs an even walks_per_source"
            )
        # xi_v^s of Algorithm 1, indexed by source id (labels are 0..n-1);
        # in split mode, one row per half (A = 0, B = 1).
        self.half_counts = np.zeros((2, n), dtype=np.int64)
        self.deaths = 0
        # One FIFO of (source, remaining_here, half) tokens per edge.
        self._queues: dict[int, deque[tuple[int, int, int]]] = {
            neighbor: deque() for neighbor in neighbors
        }

    @property
    def counts(self) -> np.ndarray:
        """Total visit counts (both halves combined)."""
        return self.half_counts.sum(axis=0)

    # ------------------------------------------------------------------
    # Walk lifecycle
    # ------------------------------------------------------------------
    def launch(self) -> None:
        """Start this node's ``K`` walks (line 3 of Algorithm 1).

        In absorbing mode the target launches nothing: its walks would be
        absorbed at birth and contribute the all-zero column ``T[:, t]``.
        In damped (alpha) mode there is no absorbing node, so every node
        launches.
        """
        if self.survival_alpha is None and self.node_id == self.target:
            return
        for walk_index in range(self.walks_per_source):
            half = (
                walk_index % 2 if self.split_sampling else 0
            )
            if self.count_initial:
                self.half_counts[half, self.node_id] += 1
            self._enqueue(self.node_id, self.length, half)

    def _enqueue(self, source: int, remaining_here: int, half: int) -> None:
        """Choose the next hop uniformly now; the choice is final."""
        neighbor = self.neighbors[int(self.rng.integers(len(self.neighbors)))]
        self._queues[neighbor].append((source, remaining_here, half))

    def _enqueue_bulk(
        self, source: int, remaining_here: int, half: int, count: int
    ) -> None:
        """Enqueue ``count`` i.i.d. tokens via one multinomial draw."""
        d = len(self.neighbors)
        allocation = self.rng.multinomial(count, np.full(d, 1.0 / d))
        for neighbor, tokens in zip(self.neighbors, allocation):
            for _ in range(int(tokens)):
                self._queues[neighbor].append((source, remaining_here, half))

    def receive(
        self, source: int, remaining: int, count: int = 1, half: int = 0
    ) -> None:
        """Process ``count`` arriving walk tokens (lines 7-15).

        ``remaining`` is the hop budget left *from this node*.  In damped
        mode each arriving token first survives its hop with probability
        alpha (binomial thinning of batches); dead tokens neither count
        the visit nor continue - matching the ``sum_r (alpha M)^r``
        series the alpha-CFBC potentials are built from.
        """
        if count < 1:
            raise ProtocolError("walk arrival count must be >= 1")
        if half not in (0, 1):
            raise ProtocolError("walk half tag must be 0 or 1")
        if self.survival_alpha is not None:
            survivors = int(self.rng.binomial(count, self.survival_alpha))
            self.deaths += count - survivors
            count = survivors
            if count == 0:
                return
        elif self.node_id == self.target:
            # Absorbed; by Eq. 3's removed row, absorption is not a visit.
            self.deaths += count
            return
        self.half_counts[half, source] += count
        if remaining == 0:
            self.deaths += count
            return
        if count == 1:
            self._enqueue(source, remaining, half)
        else:
            self._enqueue_bulk(source, remaining, half, count)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send_round(self, ctx: RoundContext) -> int:
        """Emit up to ``walk_budget`` walk messages per edge; return the
        number of messages sent."""
        sent = 0
        for neighbor in self.neighbors:
            queue = self._queues[neighbor]
            if not queue:
                continue
            if self.policy is TransportPolicy.QUEUE:
                sent += self._send_queue(ctx, neighbor, queue)
            else:
                sent += self._send_batch(ctx, neighbor, queue)
        return sent

    def _send_queue(self, ctx, neighbor, queue) -> int:
        sent = 0
        while queue and sent < self.walk_budget:
            source, remaining_here, half = queue.popleft()
            ctx.send(neighbor, KIND_WALK, source, remaining_here - 1, half)
            sent += 1
        return sent

    def _send_batch(self, ctx, neighbor, queue) -> int:
        sent = 0
        while queue and sent < self.walk_budget:
            # Coalesce every queued token matching the head's fields.
            head = queue[0]
            count = 0
            kept: deque[tuple[int, int, int]] = deque()
            while queue:
                token = queue.popleft()
                if token == head:
                    count += 1
                else:
                    kept.append(token)
            self._queues[neighbor] = queue = kept
            source, remaining_here, half = head
            ctx.send(
                neighbor,
                KIND_WALK_BATCH,
                source,
                remaining_here - 1,
                half,
                count,
            )
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def held_walks(self) -> int:
        """Tokens currently queued at this node."""
        return sum(len(q) for q in self._queues.values())

    @property
    def idle(self) -> bool:
        return self.held_walks == 0
