"""Per-node walk bookkeeping for the counting phase (Algorithm 1).

Each node owns a :class:`WalkManager` that:

* launches the node's ``K`` walks,
* processes walk arrivals (count the visit, absorb at the target, expire
  at length 0, otherwise pick the next hop uniformly at random *at
  arrival time* and queue the token on that edge),
* emits at most ``walk_budget`` walk messages per outgoing edge per round
  (the CONGEST constraint), under one of two policies:

  - ``QUEUE``: tokens are sent individually; excess tokens wait in FIFO
    order on their chosen edge (never re-rolling the choice - re-rolling
    would bias hops toward uncongested edges and break uniformity);
  - ``BATCH``: tokens queued together with identical ``(source,
    remaining)`` fields travel as one counted message, which is still
    ``O(log n)`` bits.

The paper's line 6 ("if there is more than one random walk needed to be
sent to v, just send a random walk to v randomly") is ambiguous between
these readings; both are implemented and compared in experiment E12.

Internally all token state is *grouped*: tokens with identical
``(source, remaining, half)`` are one ``count`` entry, and each round's
arrivals are canonicalized and routed by the vectorized kernel in
:mod:`repro.walks.batched` with a single uniform draw per node per
round.  Because the draw order depends only on the canonical group
order - never on message arrival order - the per-message simulation and
the scheduler's aggregate fast path consume identical random streams and
produce identical tallies.
"""

from __future__ import annotations

import enum
from collections import deque

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.node import RoundContext
from repro.walks.batched import aggregate_groups, route_groups, thin_groups

KIND_WALK = "walk"
KIND_WALK_BATCH = "walkb"


def sequence_block(
    channel,
    neighbor: int,
    kind: str,
    payload_rows: list[tuple[int, ...]],
    round_number: int,
) -> int:
    """Sequence a head-of-queue block of messages all shipped on one
    edge this round through the sender's reliable channel; returns the
    first seq (rows get consecutive seqs in order).  Shared by the
    per-message :meth:`WalkManager.send_round` and the fast-path
    engine's ``_emit_reliable`` so both allocate identically."""
    return channel.register_block(
        neighbor, kind, payload_rows, round_number
    )


class TransportPolicy(enum.Enum):
    """How queued walk tokens map onto messages."""

    QUEUE = "queue"
    BATCH = "batch"


class WalkManager:
    """Walk queues, visit counts, and death accounting for one node."""

    def __init__(
        self,
        node_id: int,
        neighbors: tuple[int, ...],
        n: int,
        target: int,
        walks_per_source: int,
        length: int,
        rng: np.random.Generator,
        policy: TransportPolicy = TransportPolicy.QUEUE,
        walk_budget: int = 2,
        count_initial: bool = True,
        survival_alpha: float | None = None,
        split_sampling: bool = False,
    ) -> None:
        """``survival_alpha``: when set, walks are *damped* instead of
        absorbed - every hop succeeds only with probability alpha (the
        alpha-current-flow semantics of section II-C), every node
        (including the nominal target) launches walks, and arrivals at
        the target are ordinary visits.

        ``split_sampling``: tag each walk with a half-bit (A/B) and keep
        two count vectors, enabling the noise-floor bias correction of
        :mod:`repro.core.bias` at the cost of one extra bit per token.
        """
        if walk_budget < 1:
            raise ProtocolError("walk_budget must be >= 1")
        if length < 1:
            raise ProtocolError("walk length must be >= 1")
        if survival_alpha is not None and not 0.0 < survival_alpha < 1.0:
            raise ProtocolError("survival_alpha must be in (0, 1)")
        self.node_id = node_id
        self.neighbors = neighbors
        self.n = n
        self.target = target
        self.walks_per_source = walks_per_source
        self.length = length
        self.rng = rng
        self.policy = policy
        self.walk_budget = walk_budget
        self.count_initial = count_initial
        self.survival_alpha = survival_alpha
        self.split_sampling = split_sampling
        if split_sampling and walks_per_source % 2 != 0:
            raise ProtocolError(
                "split sampling needs an even walks_per_source"
            )
        # xi_v^s of Algorithm 1, indexed by source id (labels are 0..n-1);
        # in split mode, one row per half (A = 0, B = 1).
        self.half_counts = np.zeros((2, n), dtype=np.int64)
        self._deaths = 0
        # One FIFO of [source, remaining_here, half, count] groups per edge.
        self._queues: dict[int, deque[list[int]]] = {
            neighbor: deque() for neighbor in neighbors
        }
        self._held = 0
        # Set when a network-wide engine takes over this manager's queue
        # and death bookkeeping (the half_counts array is then a view
        # into the engine's global tensor).
        self._engine = None

    def attach_engine(self, engine) -> None:
        """Hand bookkeeping over to a network-wide counting engine.

        After attachment, :attr:`deaths`, :attr:`held_walks`, and
        :attr:`idle` read the engine's per-node slots; the per-manager
        receive/send machinery must no longer be driven directly.
        """
        self._engine = engine

    @property
    def counts(self) -> np.ndarray:
        """Total visit counts (both halves combined)."""
        return self.half_counts.sum(axis=0)

    # ------------------------------------------------------------------
    # Walk lifecycle
    # ------------------------------------------------------------------
    def launch(self) -> None:
        """Start this node's ``K`` walks (line 3 of Algorithm 1).

        In absorbing mode the target launches nothing: its walks would be
        absorbed at birth and contribute the all-zero column ``T[:, t]``.
        In damped (alpha) mode there is no absorbing node, so every node
        launches.
        """
        if self.survival_alpha is None and self.node_id == self.target:
            return
        k = self.walks_per_source
        if self.split_sampling:
            halves = np.array([0, 1], dtype=np.int64)
            group_counts = np.array([(k + 1) // 2, k // 2], dtype=np.int64)
        else:
            halves = np.zeros(1, dtype=np.int64)
            group_counts = np.array([k], dtype=np.int64)
        if self.count_initial:
            np.add.at(
                self.half_counts,
                (halves, np.full(len(halves), self.node_id)),
                group_counts,
            )
        sources = np.full(len(halves), self.node_id, dtype=np.int64)
        remainings = np.full(len(halves), self.length, dtype=np.int64)
        self._route(sources, remainings, halves, group_counts)

    def receive(
        self, source: int, remaining: int, count: int = 1, half: int = 0
    ) -> None:
        """Process ``count`` arriving walk tokens (lines 7-15).

        Convenience wrapper over :meth:`receive_group_arrays` for one
        group; the protocol aggregates a whole round's arrivals and makes
        one grouped call instead, so both simulator paths draw the same
        randomness.
        """
        if count < 1:
            raise ProtocolError("walk arrival count must be >= 1")
        if half not in (0, 1):
            raise ProtocolError("walk half tag must be 0 or 1")
        self.receive_group_arrays(
            np.array([source], dtype=np.int64),
            np.array([remaining], dtype=np.int64),
            np.array([half], dtype=np.int64),
            np.array([count], dtype=np.int64),
        )

    def receive_group_arrays(
        self,
        sources: np.ndarray,
        remainings: np.ndarray,
        halves: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Process one round's walk arrivals, given as token groups.

        ``remainings`` are the hop budgets left *from this node*.  The
        groups are canonicalized first, so the randomness consumed here
        is a function of the multiset of arrivals only - the property the
        batched fast path relies on.  In damped mode each arriving token
        first survives its hop with probability alpha (vectorized
        binomial thinning); dead tokens neither count the visit nor
        continue - matching the ``sum_r (alpha M)^r`` series the
        alpha-CFBC potentials are built from.
        """
        if len(sources) == 0:
            return
        sources, remainings, halves, counts = aggregate_groups(
            sources, remainings, halves, counts
        )
        if self.survival_alpha is not None:
            survivors = thin_groups(self.rng, counts, self.survival_alpha)
            self._deaths += int(counts.sum() - survivors.sum())
            alive = survivors > 0
            if not alive.any():
                return
            sources = sources[alive]
            remainings = remainings[alive]
            halves = halves[alive]
            counts = survivors[alive]
        elif self.node_id == self.target:
            # Absorbed; by Eq. 3's removed row, absorption is not a visit.
            self._deaths += int(counts.sum())
            return
        np.add.at(self.half_counts, (halves, sources), counts)
        expired = remainings == 0
        if expired.any():
            self._deaths += int(counts[expired].sum())
            live = ~expired
            if not live.any():
                return
            sources = sources[live]
            remainings = remainings[live]
            halves = halves[live]
            counts = counts[live]
        self._route(sources, remainings, halves, counts)

    def _route(
        self,
        sources: np.ndarray,
        remainings: np.ndarray,
        halves: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Choose next hops now (one vectorized draw; choices are final)
        and queue the resulting per-edge groups."""
        allocation = route_groups(self.rng, len(self.neighbors), counts)
        for j, neighbor in enumerate(self.neighbors):
            column = allocation[:, j]
            for g in np.nonzero(column)[0]:
                self._queues[neighbor].append(
                    [
                        int(sources[g]),
                        int(remainings[g]),
                        int(halves[g]),
                        int(column[g]),
                    ]
                )
        self._held += int(counts.sum())

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def emit_round(
        self, budgets: dict[int, int] | None = None
    ) -> list[tuple[int, int, int, int, int]]:
        """Dequeue this round's sendable tokens under the per-edge budget.

        Returns ``(neighbor, source, remaining_after_hop, half, count)``
        entries.  Under QUEUE each entry stands for ``count`` individual
        messages (the budget counts tokens); under BATCH each entry is
        one counted message (the budget counts messages).  The caller
        materializes messages (slow path) or ships the entries in
        aggregate (fast path) - either way the queue dynamics, and hence
        the random stream, are identical.

        ``budgets`` overrides the per-neighbor budget for this round:
        under lossy-link recovery, retransmitted tokens occupy edge
        slots first and fresh emission gets what remains.
        """
        entries: list[tuple[int, int, int, int, int]] = []
        for neighbor in self.neighbors:
            queue = self._queues[neighbor]
            if not queue:
                continue
            budget = self.walk_budget
            if budgets is not None:
                budget = budgets.get(neighbor, budget)
                if budget <= 0:
                    continue
            if self.policy is TransportPolicy.QUEUE:
                while queue and budget > 0:
                    group = queue[0]
                    take = min(budget, group[3])
                    entries.append(
                        (neighbor, group[0], group[1] - 1, group[2], take)
                    )
                    budget -= take
                    if take == group[3]:
                        queue.popleft()
                    else:
                        group[3] -= take
            else:
                while queue and budget > 0:
                    source, remaining_here, half, count = queue.popleft()
                    entries.append(
                        (neighbor, source, remaining_here - 1, half, count)
                    )
                    budget -= 1
        self._held -= sum(entry[4] for entry in entries)
        return entries

    def send_round(
        self,
        ctx: RoundContext,
        channel=None,
        budgets: dict[int, int] | None = None,
        instruments=None,
    ) -> int:
        """Emit this round's walk messages; return how many were sent.

        Materializes each emitted group into individual ``walk`` /
        ``walkb`` messages (the per-message simulation path; on the
        scheduler's fast path the network-wide engine ships every node's
        groups in aggregate instead).

        With a :class:`~repro.congest.reliable.ReliableChannel`, every
        token message is sequenced through ``channel.register_sent`` and
        carries its seq as the last field; under QUEUE that forces one
        token per message (each needs its own seq).  ``budgets`` is
        forwarded to :meth:`emit_round`.  ``instruments`` (a
        ``repro.obs.InstrumentSet``) receives the sent count in its
        ``walk_sends`` round counter - observation only.
        """
        entries = self.emit_round(budgets)
        if not entries:
            return 0
        sent = 0
        for neighbor, source, remaining, half, count in entries:
            if self.policy is TransportPolicy.QUEUE:
                if channel is not None:
                    start = sequence_block(
                        channel,
                        neighbor,
                        KIND_WALK,
                        [(source, remaining, half)] * count,
                        ctx.round_number,
                    )
                    for seq in range(start, start + count):
                        ctx.send(
                            neighbor, KIND_WALK, source, remaining, half, seq
                        )
                else:
                    for _ in range(count):
                        ctx.send(neighbor, KIND_WALK, source, remaining, half)
                sent += count
            else:
                if channel is not None:
                    seq = sequence_block(
                        channel,
                        neighbor,
                        KIND_WALK_BATCH,
                        [(source, remaining, half, count)],
                        ctx.round_number,
                    )
                    ctx.send(
                        neighbor,
                        KIND_WALK_BATCH,
                        source,
                        remaining,
                        half,
                        count,
                        seq,
                    )
                else:
                    ctx.send(
                        neighbor,
                        KIND_WALK_BATCH,
                        source,
                        remaining,
                        half,
                        count,
                    )
                sent += 1
        if instruments is not None and sent:
            instruments.bump_round("walk_sends", ctx.round_number, sent)
        return sent

    # ------------------------------------------------------------------
    # State queries
    # ------------------------------------------------------------------
    @property
    def deaths(self) -> int:
        """Walks that died at this node (absorbed, expired, or thinned)."""
        if self._engine is not None:
            return int(self._engine.deaths[self.node_id])
        return self._deaths

    @property
    def held_walks(self) -> int:
        """Tokens currently queued at this node."""
        if self._engine is not None:
            return int(self._engine.held[self.node_id])
        return self._held

    @property
    def idle(self) -> bool:
        return self.held_walks == 0
