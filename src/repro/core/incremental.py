"""Incremental exact RWBC under edge updates (Sherman-Morrison).

Inserting or deleting an edge ``{u, v}`` changes the Laplacian by the
rank-one term ``±(e_u - e_v)(e_u - e_v)^T``, so the grounded inverse
``T`` updates in ``O(n^2)`` via Sherman-Morrison instead of a fresh
``O(n^3)`` inversion - the standard trick for dynamic current-flow
quantities.  Betweenness is then recomputed from the maintained ``T`` in
``O(m n log n)`` on demand.

The node set is fixed at construction (dynamic node arrival would change
every normalization); edge deletions that would disconnect the graph are
rejected (the denominator ``1 - x^T T x`` hits zero exactly when the
edge is a bridge, which doubles as a numerically meaningful bridge
test - asserted in the test suite).
"""

from __future__ import annotations

import numpy as np

from repro.core.flow_math import betweenness_from_raw_flow, node_raw_flow
from repro.graphs.graph import Graph, GraphError, NodeId
from repro.walks.absorbing import grounded_inverse

_BRIDGE_TOLERANCE = 1e-9


class IncrementalRWBC:
    """Maintains exact RWBC under edge insertions and deletions.

    Parameters
    ----------
    graph:
        Initial connected graph (n >= 2).  A private copy is kept.
    target:
        Grounding node for the maintained inverse; the output is
        target-invariant as usual.
    """

    def __init__(self, graph: Graph, target: NodeId | None = None) -> None:
        if graph.num_nodes < 2:
            raise GraphError("need at least 2 nodes")
        self._graph = graph.copy()
        order = self._graph.canonical_order()
        self._target = order[0] if target is None else target
        if not self._graph.has_node(self._target):
            raise GraphError(f"target {self._target!r} not in graph")
        self._potentials = grounded_inverse(self._graph, self._target)
        self._t_index = self._graph.index_of(self._target)

    # ------------------------------------------------------------------
    @property
    def graph(self) -> Graph:
        """A copy of the current graph state."""
        return self._graph.copy()

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    def _difference_vector(self, u: NodeId, v: NodeId) -> np.ndarray:
        for node in (u, v):
            if not self._graph.has_node(node):
                raise GraphError(f"node {node!r} not in graph")
        if u == v:
            raise GraphError("self-loops are not allowed")
        x = np.zeros(self._graph.num_nodes)
        x[self._graph.index_of(u)] = 1.0
        x[self._graph.index_of(v)] = -1.0
        # Grounding: T's target row/column are zero, so the update is the
        # reduced-system Sherman-Morrison with the target entry of x
        # dropped; zeroing it keeps the arithmetic visibly reduced.
        x[self._t_index] = 0.0
        return x

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Insert ``{u, v}`` and update the inverse in O(n^2).

        Raises
        ------
        GraphError
            If the edge already exists or is a self-loop.
        """
        if self._graph.has_edge(u, v):
            raise GraphError(f"edge {{{u!r}, {v!r}}} already present")
        x = self._difference_vector(u, v)
        tx = self._potentials @ x
        denominator = 1.0 + x @ tx
        self._potentials -= np.outer(tx, tx) / denominator
        self._graph.add_edge(u, v)

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Delete ``{u, v}`` and update the inverse in O(n^2).

        Raises
        ------
        GraphError
            If the edge is absent, or is a bridge (removal would
            disconnect the graph, where RWBC is undefined).
        """
        if not self._graph.has_edge(u, v):
            raise GraphError(f"edge {{{u!r}, {v!r}}} not in graph")
        x = self._difference_vector(u, v)
        tx = self._potentials @ x
        denominator = 1.0 - x @ tx
        if abs(denominator) < _BRIDGE_TOLERANCE:
            raise GraphError(
                f"removing {{{u!r}, {v!r}}} would disconnect the graph "
                "(it carries unit effective resistance: a bridge)"
            )
        self._potentials += np.outer(tx, tx) / denominator
        self._graph.remove_edge(u, v)

    # ------------------------------------------------------------------
    def potentials(self) -> np.ndarray:
        """The maintained grounded inverse (copy)."""
        return self._potentials.copy()

    def effective_resistance(self, u: NodeId, v: NodeId) -> float:
        """R_eff from the maintained inverse: ``x^T T x``."""
        x = self._difference_vector(u, v)
        return float(x @ self._potentials @ x)

    def betweenness(
        self,
        include_endpoints: bool = True,
        normalized: bool = True,
    ) -> dict[NodeId, float]:
        """Exact RWBC of every node, from the maintained inverse."""
        graph = self._graph
        n = graph.num_nodes
        order = graph.canonical_order()
        result: dict[NodeId, float] = {}
        for i, node in enumerate(order):
            neighbor_rows = (
                self._potentials[graph.index_of(neighbor)]
                for neighbor in graph.neighbors(node)
            )
            raw = node_raw_flow(self._potentials[i], neighbor_rows, i)
            result[node] = betweenness_from_raw_flow(
                raw,
                n,
                scale=1.0,
                include_endpoints=include_endpoints,
                normalized=normalized,
            )
        return result
