"""Current-flow betweenness of *edges*.

Newman's node measure (Eq. 6) is built from per-edge current magnitudes
``|V_i - V_j|``; summing those per edge instead of per node gives the
edge's own centrality - the quantity Girvan-Newman community detection
removes greedily.  It reuses the exact same grounded-inverse and
pair-sum machinery as the node solver:

    ecf(i, j) = sum_{s<t} |T_is - T_it - T_js + T_jt| / (n (n-1) / 2)

(the unordered-pair average of the unit current carried by the edge).
networkx's ``edge_current_flow_betweenness_centrality`` is the oracle,
matched exactly by the test suite.
"""

from __future__ import annotations

from repro.core.flow_math import pair_sum_all
from repro.graphs.graph import Graph, GraphError, NodeId
from repro.walks.absorbing import grounded_inverse


def edge_current_flow_betweenness(
    graph: Graph,
    target=None,
    normalized: bool = True,
) -> dict[tuple[NodeId, NodeId], float]:
    """Current-flow betweenness of every edge.

    Keys are edges as emitted by :meth:`Graph.edges` (canonical-index
    orientation).  ``normalized`` divides by the pair count
    ``n(n-1)/2``; unnormalized values are total current summed over all
    unordered source/sink pairs.
    """
    if graph.num_nodes < 2:
        raise GraphError("edge betweenness needs >= 2 nodes")
    if target is None:
        target = graph.canonical_order()[0]
    potentials = grounded_inverse(graph, target)
    n = graph.num_nodes
    pairs = 0.5 * n * (n - 1)
    result: dict[tuple[NodeId, NodeId], float] = {}
    for u, v in graph.edges():
        w = potentials[graph.index_of(u)] - potentials[graph.index_of(v)]
        total = pair_sum_all(w)
        result[(u, v)] = total / pairs if normalized else total
    return result


def girvan_newman_current_flow(
    graph: Graph,
    communities: int = 2,
    max_removals: int | None = None,
) -> list[set[NodeId]]:
    """Girvan-Newman community detection with current-flow edge scores.

    Repeatedly removes the highest-current edge (recomputing scores on
    each still-connected component) until the graph splits into at least
    ``communities`` connected components.

    Returns the component node sets, largest first.

    Raises
    ------
    GraphError
        If ``communities`` exceeds ``n`` or the removal budget runs out
        (cannot happen with the default budget of all edges).
    """
    from repro.graphs.properties import connected_components

    n = graph.num_nodes
    if not 1 <= communities <= n:
        raise GraphError(f"communities must be in 1..{n}")
    working = graph.copy()
    budget = max_removals if max_removals is not None else graph.num_edges
    while len(connected_components(working)) < communities:
        if budget <= 0:
            raise GraphError("removal budget exhausted before the split")
        candidates: dict[tuple[NodeId, NodeId], float] = {}
        for component in connected_components(working):
            if len(component) < 2:
                continue
            sub = working.subgraph(component)
            candidates.update(edge_current_flow_betweenness(sub))
        if not candidates:
            raise GraphError(
                "cannot split further: only singleton components remain"
            )
        edge = max(candidates, key=candidates.get)
        working.remove_edge(*edge)
        budget -= 1
    components = connected_components(working)
    return sorted(components, key=len, reverse=True)
