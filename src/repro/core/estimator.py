"""High-level entry points: one call from graph to betweenness.

``estimate_rwbc_distributed`` runs the faithful CONGEST protocol;
``estimate_rwbc_montecarlo`` (re-exported) runs the same sampling
centrally; ``rwbc_exact`` (re-exported) is the matrix solver.  All three
share conventions, so their outputs are directly comparable.
"""

from __future__ import annotations

from repro.congest.asynchronous import AsyncSimulator
from repro.congest.errors import ConfigError, FaultInjectionError
from repro.congest.faults import FaultPlan
from repro.congest.scheduler import Simulator
from repro.congest.transport import BandwidthPolicy
from repro.core.montecarlo import estimate_rwbc_montecarlo
from repro.core.exact import rwbc_exact
from repro.core.parameters import WalkParameters, default_parameters
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.core.result import DistributedRWBCResult
from repro.core.walk_manager import TransportPolicy
from repro.graphs.graph import Graph, GraphError

__all__ = [
    "estimate_alpha_cfbc_distributed",
    "estimate_rwbc_distributed",
    "estimate_rwbc_montecarlo",
    "rwbc_exact",
    "default_max_rounds",
]


def default_max_rounds(
    n: int,
    parameters: WalkParameters,
    reliable: bool = False,
    setup_slack: int = 6,
) -> int:
    """A generous round limit: setup + congestion-inflated counting +
    exchange, with slack.  Exceeding it indicates a protocol bug, not a
    slow run.  Reliable (fault-tolerant) runs get a stretched setup
    (``2 * setup_slack * n`` rounds before launch) and an extra latency
    factor for retransmission round-trips."""
    counting_bound = 40 * (
        parameters.walks_per_source * n + parameters.length
    )
    base = 1000 + 4 * n + counting_bound
    if reliable:
        return 8 * base + 16 * setup_slack * n
    return base


def estimate_rwbc_distributed(
    graph: Graph,
    parameters: WalkParameters | None = None,
    seed: int | None = None,
    policy: TransportPolicy = TransportPolicy.QUEUE,
    walk_budget: int = 2,
    bandwidth: BandwidthPolicy | None = None,
    include_endpoints: bool = True,
    normalized: bool = True,
    count_initial: bool = True,
    max_rounds: int | None = None,
    record_messages: bool = False,
    survival_alpha: float | None = None,
    split_sampling: bool = False,
    vectorized: bool | None = None,
    faults: FaultPlan | None = None,
    executor: str = "sync",
    num_shards: int | None = None,
    max_delay: float = 10.0,
    telemetry=None,
    tracer=None,
) -> DistributedRWBCResult:
    """Run the paper's full distributed algorithm on the CONGEST simulator.

    The graph may use any hashable labels; it is relabeled to ``0..n-1``
    internally and results are mapped back.

    Parameters
    ----------
    graph:
        Connected graph with n >= 2.
    parameters:
        ``(l, K)``; defaults to the Theorem 1/3 schedules.
    seed:
        Master seed (drives node ranks, hence the random target, and all
        walk randomness).
    policy, walk_budget:
        Walk transport behaviour (experiment E12 compares policies).
    bandwidth:
        CONGEST constants; default allows walk_budget + control messages.
    include_endpoints, normalized, count_initial:
        Semantics switches shared with the other engines.
    record_messages:
        Keep the full message log (for cut-bit analyses).
    vectorized:
        Fast-path selection, forwarded to :class:`Simulator`: ``None``
        auto-selects the vectorized scheduler loop (the default; it
        falls back to per-message dispatch when ``record_messages`` is
        set), ``False`` forces per-message dispatch, ``True`` requires
        the fast path.  Same seed, same result either way.
    faults:
        Optional :class:`~repro.congest.faults.FaultPlan`.  A non-trivial
        plan switches the protocol to *reliable* mode: sequence-numbered
        walk tokens with ack/retransmit recovery, a loss-tolerant
        termination convergecast, and a stretched flood-based setup -
        the run completes with the same statistical guarantees despite
        the injected drops, duplicates, delays, and crash-recover
        windows.  Crash windows must end (no crash-stop: a node that
        never returns can never launch or certify its walks) and must
        not cover the launch round ``2 * setup_slack * n``.
    executor:
        ``"sync"`` (default) runs the lock-step round scheduler;
        ``"async"`` runs the same protocol on the event-driven
        asynchronous executor under the fault-tolerant alpha
        synchronizer (:mod:`repro.congest.asynchronous`).  The
        synchronizer masks all faults below the round abstraction, so
        the *protocol-level* reliable mode stays off and the result
        matches the fault-free synchronous run of the same seed bit for
        bit - with or without a ``faults`` plan.  Under ``"async"``,
        ``record_messages``, ``tracer``, and ``vectorized=True`` are
        rejected (the event executor has no message log, tracer taps,
        or vectorized loop), ``result.metrics`` is an
        :class:`~repro.congest.asynchronous.AsyncMetrics`, and
        ``result.recovery`` reports the synchronizer's transport
        recovery (retransmissions, timeouts, duplicate rejections,
        crash recoveries) instead of protocol-level channel stats.
        ``"sharded"`` runs the lock-step scheduler with the counting
        kernel partitioned across ``num_shards`` worker processes
        (:mod:`repro.congest.sharded`): node ids split into contiguous
        ranges, each range's kernel slice in its own forked process
        against a shared-memory count tensor.  Byte-identical to the
        ``"sync"`` fast path of the same seed, faults and all; requires
        the vectorized fast path (``vectorized=False`` and
        ``record_messages`` are rejected) and a platform with the
        ``fork`` start method.
    num_shards:
        Worker-process count for ``executor="sharded"`` (defaults to 2
        there; rejected for other executors).
    max_delay:
        Asynchronous executor only: message-delay bound in virtual time
        (delays are uniform in ``[1, max_delay]``).
    telemetry:
        Optional :class:`repro.obs.Telemetry`.  The run then records
        wall-clock spans, a per-round wall series, and instrument
        histograms/counters; the populated object rides back on
        ``result.telemetry``, and ``repro.obs.export`` can serialize it
        (``repro observe run`` does exactly this).  Observation-only:
        telemetry-on and telemetry-off runs are byte-identical.
    tracer:
        Optional :class:`~repro.congest.trace.Tracer`; records per-
        message ``deliver`` events on either execution loop (a tracer
        no longer forces per-message dispatch).
    """
    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    relabeled, mapping = graph.relabeled()
    inverse = {index: node for node, index in mapping.items()}
    n = relabeled.num_nodes
    if parameters is None:
        parameters = default_parameters(n)
    if executor not in ("sync", "async", "sharded"):
        raise ConfigError(
            f"unknown executor {executor!r}: expected 'sync', 'async', "
            "or 'sharded'"
        )
    if executor == "sharded":
        if num_shards is None:
            num_shards = 2
        if record_messages:
            raise ConfigError(
                "record_messages forces per-message dispatch, which the "
                "sharded executor cannot run"
            )
        if vectorized is False:
            raise ConfigError(
                "the sharded executor runs the vectorized fast path; "
                "vectorized=False cannot be honored"
            )
    elif num_shards is not None:
        raise ConfigError(
            f"num_shards is only valid with executor='sharded' "
            f"(got executor={executor!r})"
        )
    lossy = faults is not None and not faults.is_trivial
    # Under the async executor the synchronizer's transport handles all
    # loss below the round abstraction; the protocol itself runs in its
    # plain (non-reliable) shape and never observes a fault.  The
    # sharded executor is the same lock-step scheduler as "sync", so it
    # keeps the protocol-level reliable mode.
    reliable = lossy and executor != "async"
    if executor == "async":
        if record_messages:
            raise ConfigError(
                "record_messages is not supported by the async executor"
            )
        if tracer is not None:
            raise ConfigError(
                "tracer taps are not supported by the async executor"
            )
        if vectorized:
            raise ConfigError(
                "the async executor is event-driven per message; "
                "vectorized=True cannot be honored"
            )
    config = ProtocolConfig(
        length=parameters.length,
        walks_per_source=parameters.walks_per_source,
        policy=policy,
        walk_budget=walk_budget,
        count_initial=count_initial,
        include_endpoints=include_endpoints,
        normalized=normalized,
        survival_alpha=survival_alpha,
        split_sampling=split_sampling,
        reliable=reliable,
        instruments=(
            telemetry.instruments if telemetry is not None else None
        ),
    )
    if reliable:
        _validate_crash_windows(faults, n, config.setup_slack)
    if bandwidth is None:
        # Reliable mode needs two extra per-edge slots: one for the ack
        # and one so token retransmissions plus control retransmissions
        # fit alongside the fresh traffic of a congested round.
        extra = 4 if reliable else 2
        bandwidth = BandwidthPolicy(n=n, messages_per_edge=walk_budget + extra)
    if executor == "async":
        simulator = AsyncSimulator(
            relabeled,
            make_protocol_factory(config),
            policy=bandwidth,
            seed=seed,
            max_delay=max_delay,
            max_rounds=max_rounds
            or default_max_rounds(n, parameters, lossy, config.setup_slack),
            faults=faults,
            telemetry=telemetry,
        )
    else:
        simulator = Simulator(
            relabeled,
            make_protocol_factory(config),
            policy=bandwidth,
            seed=seed,
            max_rounds=max_rounds
            or default_max_rounds(n, parameters, reliable, config.setup_slack),
            record_messages=record_messages,
            vectorized=vectorized,
            num_shards=num_shards,
            faults=faults,
            telemetry=telemetry,
            tracer=tracer,
        )
    result = simulator.run()

    programs = result.programs
    any_program = programs[0]
    phase_rounds = _phase_breakdown(any_program, result.metrics.rounds)
    betweenness = {
        inverse[index]: programs[index].betweenness for index in range(n)
    }
    counts = {inverse[index]: programs[index].counts for index in range(n)}
    edge_values: dict = {}
    for index in range(n):
        for neighbor, value in programs[index].edge_betweenness.items():
            key = (inverse[min(index, neighbor)], inverse[max(index, neighbor)])
            # Both endpoints computed the same quantity; average to fold
            # float noise.
            edge_values[key] = edge_values.get(key, 0.0) + value / 2.0
    debiased = None
    floor = None
    if split_sampling:
        debiased = {
            inverse[index]: programs[index].betweenness_debiased
            for index in range(n)
        }
        floor = {
            inverse[index]: programs[index].noise_floor
            for index in range(n)
        }
    recovery = None
    if reliable:
        recovery = {"retransmissions": 0, "acks_sent": 0,
                    "duplicates_rejected": 0}
        for index in range(n):
            stats = programs[index]._channel.stats
            recovery["retransmissions"] += stats.retransmissions
            recovery["acks_sent"] += stats.acks_sent
            recovery["duplicates_rejected"] += stats.duplicates_rejected
    elif executor == "async" and lossy:
        # Recovery happened in the synchronizer's transport, not in the
        # protocol; report its counters in the same slot.
        recovery = result.metrics.recovery_summary()
    if executor == "async":
        message_log = None
        fallback_reasons = ("async executor (event-driven per-message)",)
    else:
        message_log = result.message_log
        fallback_reasons = result.fallback_reasons
    return DistributedRWBCResult(
        betweenness=betweenness,
        target=inverse[any_program.target],
        parameters=parameters,
        metrics=result.metrics,
        phase_rounds=phase_rounds,
        counts=counts,
        betweenness_debiased=debiased,
        noise_floor=floor,
        edge_betweenness=edge_values,
        message_log=message_log,
        recovery=recovery,
        fallback_reasons=fallback_reasons,
        telemetry=telemetry,
    )


def _validate_crash_windows(
    plan: FaultPlan, n: int, setup_slack: int
) -> None:
    """Reject crash schedules the protocol cannot survive.

    The counting phase launches globally at round ``2 * setup_slack * n``
    from the frozen flood tree.  A node crashed *through* that round
    launches late on recovery (the per-message path supports this), but
    the vectorized engine requires all ``n`` nodes at its one-shot
    finalization, and a node that never recovers can never launch its
    walks or certify their deaths - the expected global death count is
    then unreachable.  Both shapes are configuration errors, caught here
    rather than as a round-limit timeout deep into the run.
    """
    launch_round = 2 * setup_slack * n
    for window in plan.crashes:
        if window.end is None:
            raise FaultInjectionError(
                f"crash-stop window on node {window.node} never ends: the "
                "protocol needs every node back to count its walk deaths "
                "(use a finite end for crash-recover)"
            )
        if window.covers(launch_round):
            raise FaultInjectionError(
                f"crash window [{window.start}, {window.end}) on node "
                f"{window.node} covers the counting launch round "
                f"{launch_round}; shift the window or adjust setup_slack"
            )


def estimate_alpha_cfbc_distributed(
    graph: Graph,
    alpha: float = 0.8,
    walks_per_source: int | None = None,
    epsilon: float = 0.01,
    seed: int | None = None,
    **kwargs,
) -> DistributedRWBCResult:
    """Distributed alpha-current-flow betweenness (section II-C).

    Runs the same protocol machinery as :func:`estimate_rwbc_distributed`
    in damped mode: no absorbing target, hops survive with probability
    ``alpha``, walks truncated at ``O(log(1/epsilon) / (1 - alpha))``
    hops - realizing the section's ``O(log n / (1 - alpha))`` round
    claim on the simulator.  Output convention matches
    :func:`repro.baselines.alpha_cfbc.alpha_current_flow_betweenness`.
    """
    from repro.core.parameters import alpha_length, default_walks

    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    if walks_per_source is None:
        walks_per_source = default_walks(graph.num_nodes)
    parameters = WalkParameters(
        length=alpha_length(alpha, epsilon),
        walks_per_source=walks_per_source,
    )
    return estimate_rwbc_distributed(
        graph,
        parameters,
        seed=seed,
        survival_alpha=alpha,
        **kwargs,
    )


def _phase_breakdown(program, total_rounds: int) -> dict[str, int]:
    """Split the run into setup / counting / exchange round counts."""
    counting_start = program.counting_start_round
    exchange_start = program.exchange_start_round
    finish = program.finish_round
    if None in (counting_start, exchange_start, finish):
        raise GraphError("protocol finished without phase markers")
    return {
        "setup": counting_start,
        "counting": exchange_start - counting_start,
        "exchange": finish - exchange_start,
        "total": total_rounds,
    }
