"""High-level entry points: one call from graph to betweenness.

``estimate_rwbc_distributed`` runs the faithful CONGEST protocol;
``estimate_rwbc_montecarlo`` (re-exported) runs the same sampling
centrally; ``rwbc_exact`` (re-exported) is the matrix solver.  All three
share conventions, so their outputs are directly comparable.
"""

from __future__ import annotations

from repro.congest.scheduler import Simulator
from repro.congest.transport import BandwidthPolicy
from repro.core.montecarlo import estimate_rwbc_montecarlo
from repro.core.exact import rwbc_exact
from repro.core.parameters import WalkParameters, default_parameters
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.core.result import DistributedRWBCResult
from repro.core.walk_manager import TransportPolicy
from repro.graphs.graph import Graph, GraphError

__all__ = [
    "estimate_alpha_cfbc_distributed",
    "estimate_rwbc_distributed",
    "estimate_rwbc_montecarlo",
    "rwbc_exact",
    "default_max_rounds",
]


def default_max_rounds(n: int, parameters: WalkParameters) -> int:
    """A generous round limit: setup + congestion-inflated counting +
    exchange, with slack.  Exceeding it indicates a protocol bug, not a
    slow run."""
    counting_bound = 40 * (
        parameters.walks_per_source * n + parameters.length
    )
    return 1000 + 4 * n + counting_bound


def estimate_rwbc_distributed(
    graph: Graph,
    parameters: WalkParameters | None = None,
    seed: int | None = None,
    policy: TransportPolicy = TransportPolicy.QUEUE,
    walk_budget: int = 2,
    bandwidth: BandwidthPolicy | None = None,
    include_endpoints: bool = True,
    normalized: bool = True,
    count_initial: bool = True,
    max_rounds: int | None = None,
    record_messages: bool = False,
    survival_alpha: float | None = None,
    split_sampling: bool = False,
    vectorized: bool | None = None,
) -> DistributedRWBCResult:
    """Run the paper's full distributed algorithm on the CONGEST simulator.

    The graph may use any hashable labels; it is relabeled to ``0..n-1``
    internally and results are mapped back.

    Parameters
    ----------
    graph:
        Connected graph with n >= 2.
    parameters:
        ``(l, K)``; defaults to the Theorem 1/3 schedules.
    seed:
        Master seed (drives node ranks, hence the random target, and all
        walk randomness).
    policy, walk_budget:
        Walk transport behaviour (experiment E12 compares policies).
    bandwidth:
        CONGEST constants; default allows walk_budget + control messages.
    include_endpoints, normalized, count_initial:
        Semantics switches shared with the other engines.
    record_messages:
        Keep the full message log (for cut-bit analyses).
    vectorized:
        Fast-path selection, forwarded to :class:`Simulator`: ``None``
        auto-selects the vectorized scheduler loop (the default; it
        falls back to per-message dispatch when ``record_messages`` is
        set), ``False`` forces per-message dispatch, ``True`` requires
        the fast path.  Same seed, same result either way.
    """
    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    relabeled, mapping = graph.relabeled()
    inverse = {index: node for node, index in mapping.items()}
    n = relabeled.num_nodes
    if parameters is None:
        parameters = default_parameters(n)
    config = ProtocolConfig(
        length=parameters.length,
        walks_per_source=parameters.walks_per_source,
        policy=policy,
        walk_budget=walk_budget,
        count_initial=count_initial,
        include_endpoints=include_endpoints,
        normalized=normalized,
        survival_alpha=survival_alpha,
        split_sampling=split_sampling,
    )
    if bandwidth is None:
        bandwidth = BandwidthPolicy(n=n, messages_per_edge=walk_budget + 2)
    simulator = Simulator(
        relabeled,
        make_protocol_factory(config),
        policy=bandwidth,
        seed=seed,
        max_rounds=max_rounds or default_max_rounds(n, parameters),
        record_messages=record_messages,
        vectorized=vectorized,
    )
    result = simulator.run()

    programs = result.programs
    any_program = programs[0]
    phase_rounds = _phase_breakdown(any_program, result.metrics.rounds)
    betweenness = {
        inverse[index]: programs[index].betweenness for index in range(n)
    }
    counts = {inverse[index]: programs[index].counts for index in range(n)}
    edge_values: dict = {}
    for index in range(n):
        for neighbor, value in programs[index].edge_betweenness.items():
            key = (inverse[min(index, neighbor)], inverse[max(index, neighbor)])
            # Both endpoints computed the same quantity; average to fold
            # float noise.
            edge_values[key] = edge_values.get(key, 0.0) + value / 2.0
    debiased = None
    floor = None
    if split_sampling:
        debiased = {
            inverse[index]: programs[index].betweenness_debiased
            for index in range(n)
        }
        floor = {
            inverse[index]: programs[index].noise_floor
            for index in range(n)
        }
    return DistributedRWBCResult(
        betweenness=betweenness,
        target=inverse[any_program.target],
        parameters=parameters,
        metrics=result.metrics,
        phase_rounds=phase_rounds,
        counts=counts,
        betweenness_debiased=debiased,
        noise_floor=floor,
        edge_betweenness=edge_values,
        message_log=result.message_log,
    )


def estimate_alpha_cfbc_distributed(
    graph: Graph,
    alpha: float = 0.8,
    walks_per_source: int | None = None,
    epsilon: float = 0.01,
    seed: int | None = None,
    **kwargs,
) -> DistributedRWBCResult:
    """Distributed alpha-current-flow betweenness (section II-C).

    Runs the same protocol machinery as :func:`estimate_rwbc_distributed`
    in damped mode: no absorbing target, hops survive with probability
    ``alpha``, walks truncated at ``O(log(1/epsilon) / (1 - alpha))``
    hops - realizing the section's ``O(log n / (1 - alpha))`` round
    claim on the simulator.  Output convention matches
    :func:`repro.baselines.alpha_cfbc.alpha_current_flow_betweenness`.
    """
    from repro.core.parameters import alpha_length, default_walks

    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    if walks_per_source is None:
        walks_per_source = default_walks(graph.num_nodes)
    parameters = WalkParameters(
        length=alpha_length(alpha, epsilon),
        walks_per_source=walks_per_source,
    )
    return estimate_rwbc_distributed(
        graph,
        parameters,
        seed=seed,
        survival_alpha=alpha,
        **kwargs,
    )


def _phase_breakdown(program, total_rounds: int) -> dict[str, int]:
    """Split the run into setup / counting / exchange round counts."""
    counting_start = program.counting_start_round
    exchange_start = program.exchange_start_round
    finish = program.finish_round
    if None in (counting_start, exchange_start, finish):
        raise GraphError("protocol finished without phase markers")
    return {
        "setup": counting_start,
        "counting": exchange_start - counting_start,
        "exchange": finish - exchange_start,
        "total": total_rounds,
    }
