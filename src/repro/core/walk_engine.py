"""Network-wide walk engine: the counting phase as one batched kernel.

On the scheduler's fast path, every node's :class:`RWBCNodeProgram`
registers its :class:`~repro.core.walk_manager.WalkManager` with one
shared :class:`CountingWalkEngine` (a fast-path *driver*, see
:class:`~repro.congest.node.SharedFastPathState`).  The engine claims
the walk message kinds, so each round the scheduler hands it the entire
network's in-flight walk traffic as four flat arrays; the engine then
runs the whole round - visit counting, absorption/expiry/thinning,
next-hop sampling, per-edge budgeted emission, and the death-counter
convergecast sends - with one pass of vectorized kernels instead of
``n`` per-node calls.

Equivalence with per-node processing is by construction, not luck:

* arrivals are canonicalized network-wide by
  :func:`~repro.walks.batched.aggregate_network_groups`, whose per-node
  segments are exactly the canonical group order
  :func:`~repro.walks.batched.aggregate_groups` yields node-by-node;
* randomness stays attributed: each node's segment is thinned/routed
  with *that node's own generator*, with the same calls in the same
  per-node order as :meth:`WalkManager.receive_group_arrays` - and
  since the generators are independent, the cross-node interleaving is
  immaterial;
* the managers' launch-time per-edge FIFO queues are adopted verbatim
  into one pending-token table ordered by (edge, arrival sequence), and
  the engine's segmented-cumsum emission takes tokens per edge in
  exactly the slow path's head-of-queue/budget-splitting order, so
  which token moves when under the bandwidth budget is bit-identical;
* emission ships the same per-message fields through
  :meth:`BulkOutbox.push_rows`, which charges the same bits and counts
  the per-message path would.

The tested guarantee (``tests/test_walks_batched.py``): same seed in,
identical tallies, estimates, round counts, and traffic accounting out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.core.termination import KIND_TERM, DeathCounterLogic
from repro.core.walk_manager import (
    KIND_WALK,
    KIND_WALK_BATCH,
    TransportPolicy,
    WalkManager,
)
from repro.walks.batched import aggregate_network_groups

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.node import BulkRoundContext, NodeProgram
    from repro.congest.transport import BulkOutbox, RoundOutbox

#: Claimed traffic of one kind: (senders, receivers, fields, multiplicity).
ClaimedKind = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]


class CountingWalkEngine:
    """One counting phase for the whole network, as a fast-path driver.

    Lifecycle: the first node to finish setup creates the engine in
    ``ctx.shared`` and registers it as a driver; every node then calls
    :meth:`register` *before* launching its walks (so the manager's
    count slab becomes a view into the engine's global tensor) and
    :meth:`touch` each counting round it is woken for control mail.
    The scheduler calls :meth:`end_round` once per round after the
    per-node loop; on its first call the engine adopts every manager's
    launch-time queues and takes over all walk movement from there.
    """

    claimed_kinds = frozenset({KIND_WALK, KIND_WALK_BATCH})

    def __init__(self, n: int) -> None:
        self.n = n
        # xi tensors and per-node aggregates; managers hold views into
        # ``counts`` so both access paths see the same numbers.
        self.counts = np.zeros((n, 2, n), dtype=np.int64)
        self.held = np.zeros(n, dtype=np.int64)
        self.deaths = np.zeros(n, dtype=np.int64)
        self._round_deaths = np.zeros(n, dtype=np.int64)
        self._programs: dict[int, NodeProgram] = {}
        self._managers: dict[int, WalkManager] = {}
        self._counters: dict[int, DeathCounterLogic] = {}
        self._contexts: dict[int, BulkRoundContext] = {}
        self._rngs: dict[int, np.random.Generator] = {}
        self._touched: set[int] = set()
        # Pending-token table, one row per queued group:
        # (edge id, arrival seq, source, remaining_here, half, count).
        # Rows with equal edge id in ascending seq order ARE that
        # directed edge's FIFO queue; ``_emit`` keeps it that way.
        self._pending = np.empty((0, 6), dtype=np.int64)
        self._seq = 0
        self._finalized = False
        # Filled at finalize (from the registered managers).
        self._offsets: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._degrees: np.ndarray | None = None
        self._edge_src: np.ndarray | None = None
        self._max_degree = 1
        self._policy: TransportPolicy = TransportPolicy.QUEUE
        self._budget = 1
        self._alpha: float | None = None
        self._absorbing_target = -1

    # ------------------------------------------------------------------
    # Per-node hooks (called from the node programs)
    # ------------------------------------------------------------------
    def register(
        self,
        program: "NodeProgram",
        manager: WalkManager,
        counter: DeathCounterLogic,
        ctx: "BulkRoundContext",
    ) -> None:
        """Adopt one node.  Must run before the manager launches its
        walks: the manager's count slab is replaced by a view into the
        engine's global tensor, so launch-time visits land there."""
        node = manager.node_id
        if node in self._managers:
            raise ProtocolError(
                f"node {node} registered twice with the walk engine"
            )
        manager.half_counts = self.counts[node]
        manager.attach_engine(self)
        self._programs[node] = program
        self._managers[node] = manager
        self._counters[node] = counter
        self._contexts[node] = ctx
        self._rngs[node] = manager.rng

    def touch(self, node: int) -> None:
        """Mark a node as active this round (it ran for control mail),
        so the post-round pass considers its termination reporting."""
        self._touched.add(node)

    # ------------------------------------------------------------------
    # Driver hook (called by the scheduler, once per round)
    # ------------------------------------------------------------------
    def end_round(
        self,
        round_number: int,
        claimed: dict[str, ClaimedKind],
        outbox: "RoundOutbox",
        bulk_outbox: "BulkOutbox",
    ) -> None:
        if not self._finalized:
            self._finalize()
        if claimed:
            dead = self._process_arrivals(claimed)
        else:
            dead = ()
        if self._touched or len(dead):
            self._post_round(round_number, outbox, dead)
        if len(self._pending):
            self._emit(bulk_outbox)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        """First end_round: adopt launch state from every manager."""
        if len(self._managers) != self.n:
            raise ProtocolError(
                f"walk engine started with {len(self._managers)}/{self.n} "
                "nodes registered"
            )
        first = self._managers[0]
        self._policy = first.policy
        self._budget = first.walk_budget
        self._alpha = first.survival_alpha
        self._absorbing_target = first.target
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        targets: list[int] = []
        adopted: list[tuple[int, int, int, int, int, int]] = []
        seq = 0
        for node in range(self.n):
            manager = self._managers[node]
            base = len(targets)
            targets.extend(manager.neighbors)
            offsets[node + 1] = len(targets)
            # Adopt the managers' launch-time queues verbatim: per-edge
            # FIFO order is part of the random-stream contract.
            for port, neighbor in enumerate(manager.neighbors):
                for group in manager._queues[neighbor]:
                    adopted.append(
                        (base + port, seq, group[0], group[1], group[2],
                         group[3])
                    )
                    seq += 1
            self.held[node] = manager._held
            manager._held = 0
        if adopted:
            self._pending = np.array(adopted, dtype=np.int64)
        self._seq = seq
        self._offsets = offsets
        self._targets = np.array(targets, dtype=np.int64)
        self._degrees = np.diff(offsets)
        self._edge_src = np.repeat(
            np.arange(self.n, dtype=np.int64), self._degrees
        )
        self._max_degree = int(self._degrees.max())
        self._finalized = True

    def _process_arrivals(
        self, claimed: dict[str, ClaimedKind]
    ) -> np.ndarray:
        """One round of Algorithm 1 lines 7-15 for the whole network.

        Returns the nodes whose death count changed this round."""
        parts: list[tuple[np.ndarray, ...]] = []
        walk = claimed.get(KIND_WALK)
        if walk is not None:
            _, receivers, fields, multiplicity = walk
            parts.append(
                (receivers, fields[:, 0], fields[:, 1], fields[:, 2],
                 multiplicity)
            )
        batch = claimed.get(KIND_WALK_BATCH)
        if batch is not None:
            _, receivers, fields, multiplicity = batch
            parts.append(
                (receivers, fields[:, 0], fields[:, 1], fields[:, 2],
                 fields[:, 3] * multiplicity)
            )
        if not parts:
            return self._round_deaths[:0]
        if len(parts) == 1:
            raw = parts[0]
        else:
            raw = tuple(
                np.concatenate([part[i] for part in parts]) for i in range(5)
            )
        nodes, sources, remainings, halves, counts = (
            aggregate_network_groups(*raw)
        )
        deaths = self._round_deaths
        if self._alpha is not None:
            # Damped mode: per node, one binomial over its canonical
            # segment - the same single thin_groups call the slow path
            # makes with the same generator.
            starts, ends = _segments(nodes)
            survivors = np.empty_like(counts)
            for i in range(len(starts)):
                a, b = starts[i], ends[i]
                survivors[a:b] = self._rngs[int(nodes[a])].binomial(
                    counts[a:b], self._alpha
                )
            np.add.at(deaths, nodes, counts - survivors)
            alive = survivors > 0
            if not alive.all():
                nodes = nodes[alive]
                sources = sources[alive]
                remainings = remainings[alive]
                halves = halves[alive]
                counts = survivors[alive]
            else:
                counts = survivors
        else:
            # Absorbing mode: arrivals at t die without counting the
            # visit (Eq. 3's removed row).
            absorbed = nodes == self._absorbing_target
            if absorbed.any():
                deaths[self._absorbing_target] += int(counts[absorbed].sum())
                keep = ~absorbed
                nodes = nodes[keep]
                sources = sources[keep]
                remainings = remainings[keep]
                halves = halves[keep]
                counts = counts[keep]
        if len(nodes):
            np.add.at(self.counts, (nodes, halves, sources), counts)
            expired = remainings == 0
            if expired.any():
                np.add.at(deaths, nodes[expired], counts[expired])
                live = ~expired
                nodes = nodes[live]
                sources = sources[live]
                remainings = remainings[live]
                halves = halves[live]
                counts = counts[live]
        if len(nodes):
            self._route(nodes, sources, remainings, halves, counts)
        return np.nonzero(deaths)[0]

    def _route(
        self,
        nodes: np.ndarray,
        sources: np.ndarray,
        remainings: np.ndarray,
        halves: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Sample next hops (one uniform draw per node, from that node's
        own generator over its canonical segment - identical stream to
        :func:`~repro.walks.batched.route_groups`) and append the
        resulting per-edge groups to the pending table.

        The only per-node work left is the generator call itself (the
        random-stream contract pins one ``integers`` call per node per
        round); expansion, histogramming, and queueing are one batch
        over the whole network."""
        np.add.at(self.held, nodes, counts)
        groups = len(nodes)
        token_group = np.repeat(
            np.arange(groups, dtype=np.int64), counts
        )
        bounds = np.empty(groups + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(counts, out=bounds[1:])
        draws = np.empty(len(token_group), dtype=np.int64)
        starts, ends = _segments(nodes)
        rngs = self._rngs
        degrees = self._degrees
        for i in range(len(starts)):
            node = int(nodes[starts[i]])
            lo, hi = bounds[starts[i]], bounds[ends[i]]
            draws[lo:hi] = rngs[node].integers(
                0, int(degrees[node]), size=int(hi - lo)
            )
        # Histogram tokens into (group, chosen port) cells.  Ascending
        # cell index is group-major: for any fixed edge, groups enter
        # the pending table in ascending canonical order - the same
        # per-edge FIFO order the per-node path produces.
        dmax = self._max_degree
        flat = np.bincount(
            token_group * dmax + draws, minlength=groups * dmax
        )
        cells = np.nonzero(flat)[0]
        group_of = cells // dmax
        port = cells - group_of * dmax
        g_nodes = nodes[group_of]
        entries = np.empty((len(cells), 6), dtype=np.int64)
        entries[:, 0] = self._offsets[g_nodes] + port
        entries[:, 1] = np.arange(
            self._seq, self._seq + len(cells), dtype=np.int64
        )
        self._seq += len(cells)
        entries[:, 2] = sources[group_of]
        entries[:, 3] = remainings[group_of]
        entries[:, 4] = halves[group_of]
        entries[:, 5] = flat[cells]
        if len(self._pending):
            self._pending = np.concatenate((self._pending, entries))
        else:
            self._pending = entries

    def _post_round(
        self,
        round_number: int,
        outbox: "RoundOutbox",
        dead: np.ndarray | tuple,
    ) -> None:
        """The non-walk tail of each node's counting round: fold this
        round's deaths into the convergecast, send changed subtree
        totals, and let the root start the done wave on detection."""
        post = self._touched
        if len(dead):
            post = post | {int(node) for node in dead}
        for node in sorted(post):
            counter = self._counters[node]
            delta = int(self._round_deaths[node])
            if delta:
                self._round_deaths[node] = 0
                self.deaths[node] += delta
                counter.record_deaths(delta)
            if counter.stopped:
                continue
            if counter.parent is None:
                if counter.root_detects_completion:
                    done_round = round_number + self.n + 2
                    self._programs[node]._begin_done_wave(
                        self._contexts[node], done_round
                    )
            else:
                total = counter.pop_report()
                if total is not None:
                    outbox.push(
                        Message(
                            sender=node,
                            receiver=counter.parent,
                            kind=KIND_TERM,
                            fields=(total,),
                        )
                    )
        self._touched = set()

    def _emit(self, bulk_outbox: "BulkOutbox") -> None:
        """Dequeue every edge's sendable tokens under the per-edge
        budget (same head-splitting / whole-group rules as
        :meth:`WalkManager.emit_round`) and ship the whole round as one
        aggregate push.

        QUEUE charges the budget per *token* and may split the group at
        the queue head; BATCH charges it per *group message*.  Both are
        computed for all edges at once: sort the pending table by
        (edge, seq) and a segmented cumulative sum yields each group's
        take under its edge's budget - exactly the decisions the
        per-edge head-of-queue loop would make."""
        pending = self._pending
        order = np.lexsort((pending[:, 1], pending[:, 0]))
        pending = pending[order]
        edges = pending[:, 0]
        counts = pending[:, 5]
        starts, ends = _segments(edges)
        lengths = ends - starts
        budget = self._budget
        if self._policy is TransportPolicy.QUEUE:
            prior = np.cumsum(counts) - counts
            prior_within = prior - np.repeat(prior[starts], lengths)
            take = np.clip(budget - prior_within, 0, counts)
        else:
            rank = np.arange(len(edges), dtype=np.int64) - np.repeat(
                starts, lengths
            )
            take = np.where(rank < budget, counts, 0)
        sendable = take > 0
        sent = pending[sendable]
        taken = take[sendable]
        edge_ids = sent[:, 0]
        senders = self._edge_src[edge_ids]
        np.subtract.at(self.held, senders, taken)
        fields = np.empty(
            (len(sent), 3 if self._policy is TransportPolicy.QUEUE else 4),
            dtype=np.int64,
        )
        fields[:, 0] = sent[:, 2]
        fields[:, 1] = sent[:, 3] - 1
        fields[:, 2] = sent[:, 4]
        if self._policy is TransportPolicy.QUEUE:
            bulk_outbox.push_rows(
                KIND_WALK,
                senders,
                self._targets[edge_ids],
                fields,
                taken,
            )
        else:
            fields[:, 3] = taken
            bulk_outbox.push_rows(
                KIND_WALK_BATCH,
                senders,
                self._targets[edge_ids],
                fields,
            )
        left = counts - take
        waiting = left > 0
        if waiting.any():
            kept = pending[waiting]
            kept[:, 5] = left[waiting]
            self._pending = kept
        else:
            self._pending = pending[:0]


def _segments(nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start/end index pairs of the equal-node runs of a sorted array."""
    boundary = np.empty(len(nodes), dtype=bool)
    boundary[0] = True
    np.not_equal(nodes[1:], nodes[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], len(nodes))
    return starts, ends
