"""Network-wide walk engine: the counting phase as one batched kernel.

On the scheduler's fast path, every node's :class:`RWBCNodeProgram`
registers its :class:`~repro.core.walk_manager.WalkManager` with one
shared :class:`CountingWalkEngine` (a fast-path *driver*, see
:class:`~repro.congest.node.SharedFastPathState`).  The engine claims
the walk message kinds, so each round the scheduler hands it the entire
network's in-flight walk traffic as four flat arrays; the engine then
runs the whole round - visit counting, absorption/expiry/thinning,
next-hop sampling, per-edge budgeted emission, and the death-counter
convergecast sends - with one pass of vectorized kernels instead of
``n`` per-node calls.

Equivalence with per-node processing is by construction, not luck:

* arrivals are canonicalized network-wide by
  :func:`~repro.walks.batched.aggregate_network_groups`, whose per-node
  segments are exactly the canonical group order
  :func:`~repro.walks.batched.aggregate_groups` yields node-by-node;
* randomness stays attributed: each node's segment is thinned/routed
  with *that node's own generator*, with the same calls in the same
  per-node order as :meth:`WalkManager.receive_group_arrays` - and
  since the generators are independent, the cross-node interleaving is
  immaterial;
* the managers' launch-time per-edge FIFO queues are adopted verbatim
  into one pending-token table ordered by (edge, arrival sequence), and
  the engine's segmented-cumsum emission takes tokens per edge in
  exactly the slow path's head-of-queue/budget-splitting order, so
  which token moves when under the bandwidth budget is bit-identical;
* emission ships the same per-message fields through
  :meth:`BulkOutbox.push_rows`, which charges the same bits and counts
  the per-message path would.

The tested guarantee (``tests/test_walks_batched.py``): same seed in,
identical tallies, estimates, round counts, and traffic accounting out.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.congest.reliable import InLinkFlatState
from repro.obs.spans import NULL_PROFILER
from repro.core.termination import KIND_TERM, DeathCounterLogic
from repro.core.walk_manager import (
    KIND_WALK,
    KIND_WALK_BATCH,
    TransportPolicy,
    WalkManager,
    sequence_block,
)
from repro.walks.batched import aggregate_network_groups

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.node import BulkRoundContext, NodeProgram
    from repro.congest.transport import BulkOutbox, RoundOutbox

#: Claimed traffic of one kind: (senders, receivers, fields, multiplicity).
ClaimedKind = tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]

_EMPTY = np.zeros(0, dtype=np.int64)


def counting_round_kernel(
    nodes: np.ndarray,
    sources: np.ndarray,
    remainings: np.ndarray,
    halves: np.ndarray,
    counts: np.ndarray,
    rngs,
    alpha: float | None,
    absorbing_target: int,
    count_tensor: np.ndarray,
    degrees: np.ndarray,
    offsets: np.ndarray,
    max_degree: int,
    seq_start: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """One round of Algorithm 1 lines 7-15 over a canonical group array.

    The node-local half of the counting round: thin (damped mode) or
    absorb (absorbing mode), tally visits into ``count_tensor``, expire
    zero-remaining tokens, and sample next hops into pending-table
    entries.  Pure function of its inputs plus the per-node generators
    in ``rngs`` - which is what makes it the unit of sharding: a worker
    process that owns a contiguous node range runs this verbatim on its
    slice of the canonical arrays, with the same generators in the same
    per-node order, and necessarily produces the parent's byte-exact
    results (``repro.congest.sharded``).

    ``nodes`` must be sorted ascending (the canonical order from
    :func:`~repro.walks.batched.aggregate_network_groups`).  Returns
    ``(entries, death_nodes, death_counts, next_seq)``: pending-table
    rows ``(edge id, seq, source, remaining_here, half, count)``, the
    death deltas to fold into the convergecast (unaggregated pairs; the
    caller ``np.add.at``s them), and the advanced sequence counter.
    """
    death_node_parts: list[np.ndarray] = []
    death_count_parts: list[np.ndarray] = []
    if alpha is not None:
        # Damped mode: per node, one binomial over its canonical
        # segment - the same single thin_groups call the slow path
        # makes with the same generator.
        starts, ends = _segments(nodes)
        survivors = np.empty_like(counts)
        for i in range(len(starts)):
            a, b = starts[i], ends[i]
            survivors[a:b] = rngs[int(nodes[a])].binomial(
                counts[a:b], alpha
            )
        death_node_parts.append(nodes)
        death_count_parts.append(counts - survivors)
        alive = survivors > 0
        if not alive.all():
            nodes = nodes[alive]
            sources = sources[alive]
            remainings = remainings[alive]
            halves = halves[alive]
            counts = survivors[alive]
        else:
            counts = survivors
    else:
        # Absorbing mode: arrivals at t die without counting the
        # visit (Eq. 3's removed row).
        absorbed = nodes == absorbing_target
        if absorbed.any():
            death_node_parts.append(
                np.array([absorbing_target], dtype=np.int64)
            )
            death_count_parts.append(
                np.array([int(counts[absorbed].sum())], dtype=np.int64)
            )
            keep = ~absorbed
            nodes = nodes[keep]
            sources = sources[keep]
            remainings = remainings[keep]
            halves = halves[keep]
            counts = counts[keep]
    if len(nodes):
        np.add.at(count_tensor, (nodes, halves, sources), counts)
        expired = remainings == 0
        if expired.any():
            death_node_parts.append(nodes[expired])
            death_count_parts.append(counts[expired])
            live = ~expired
            nodes = nodes[live]
            sources = sources[live]
            remainings = remainings[live]
            halves = halves[live]
            counts = counts[live]
    if len(nodes):
        # Sample next hops: one uniform draw per node, from that node's
        # own generator over its canonical segment - identical stream
        # to :func:`~repro.walks.batched.route_groups`.  Expansion,
        # histogramming, and entry building are one batch over the
        # whole slice.
        groups = len(nodes)
        token_group = np.repeat(np.arange(groups, dtype=np.int64), counts)
        bounds = np.empty(groups + 1, dtype=np.int64)
        bounds[0] = 0
        np.cumsum(counts, out=bounds[1:])
        draws = np.empty(len(token_group), dtype=np.int64)
        starts, ends = _segments(nodes)
        for i in range(len(starts)):
            node = int(nodes[starts[i]])
            lo, hi = bounds[starts[i]], bounds[ends[i]]
            draws[lo:hi] = rngs[node].integers(
                0, int(degrees[node]), size=int(hi - lo)
            )
        # Histogram tokens into (group, chosen port) cells.  Ascending
        # cell index is group-major: for any fixed edge, groups enter
        # the pending table in ascending canonical order - the same
        # per-edge FIFO order the per-node path produces.
        flat = np.bincount(
            token_group * max_degree + draws, minlength=groups * max_degree
        )
        cells = np.nonzero(flat)[0]
        group_of = cells // max_degree
        port = cells - group_of * max_degree
        g_nodes = nodes[group_of]
        entries = np.empty((len(cells), 6), dtype=np.int64)
        entries[:, 0] = offsets[g_nodes] + port
        entries[:, 1] = np.arange(
            seq_start, seq_start + len(cells), dtype=np.int64
        )
        seq_start += len(cells)
        entries[:, 2] = sources[group_of]
        entries[:, 3] = remainings[group_of]
        entries[:, 4] = halves[group_of]
        entries[:, 5] = flat[cells]
    else:
        entries = np.empty((0, 6), dtype=np.int64)
    if death_node_parts:
        death_nodes = np.concatenate(death_node_parts)
        death_counts = np.concatenate(death_count_parts)
    else:
        death_nodes = _EMPTY
        death_counts = _EMPTY
    return entries, death_nodes, death_counts, seq_start


class CountingWalkEngine:
    """One counting phase for the whole network, as a fast-path driver.

    Lifecycle: the first node to finish setup creates the engine in
    ``ctx.shared`` and registers it as a driver; every node then calls
    :meth:`register` *before* launching its walks (so the manager's
    count slab becomes a view into the engine's global tensor) and
    :meth:`touch` each counting round it is woken for control mail.
    The scheduler calls :meth:`end_round` once per round after the
    per-node loop; on its first call the engine adopts every manager's
    launch-time queues and takes over all walk movement from there.
    """

    claimed_kinds = frozenset({KIND_WALK, KIND_WALK_BATCH})

    def __init__(self, n: int) -> None:
        self.n = n
        # xi tensors and per-node aggregates; managers hold views into
        # ``counts`` so both access paths see the same numbers.
        self.counts = np.zeros((n, 2, n), dtype=np.int64)
        self.held = np.zeros(n, dtype=np.int64)
        self.deaths = np.zeros(n, dtype=np.int64)
        self._round_deaths = np.zeros(n, dtype=np.int64)
        self._programs: dict[int, NodeProgram] = {}
        self._managers: dict[int, WalkManager] = {}
        self._counters: dict[int, DeathCounterLogic] = {}
        self._contexts: dict[int, BulkRoundContext] = {}
        self._rngs: dict[int, np.random.Generator] = {}
        self._touched: set[int] = set()
        # Reliable-mode state: per-node ARQ channels, fresh walk tokens
        # that arrived as control retransmissions this round, nodes
        # that left the counting phase this round (the engine owes them
        # one last flush), and the run's FaultRuntime for the crashed
        # set.  All stay empty/None on fault-free runs.
        self._channels: dict[int, object] = {}
        self._reliable = False
        # Reliable fast path: directed-edge lookup ((s << 32) | t ->
        # edge id) and the flat numpy mirror of the InLink cursors used
        # for array-level dedup.  Built at finalize in reliable mode.
        self._edge_index: dict[int, int] | None = None
        self._in_state: InLinkFlatState | None = None
        self._control_arrivals: list[tuple[int, int, int, int, int]] = []
        self._transitioned: set[int] = set()
        self._fault_runtime = None
        # Telemetry (observation-only; installed from ctx.shared at
        # register time).  Spans time the engine's kernels; instruments
        # count emitted walk messages.  Never read back by the protocol.
        self._profiler = NULL_PROFILER
        self._instruments = None
        # Pending-token table, one row per queued group:
        # (edge id, arrival seq, source, remaining_here, half, count).
        # Rows with equal edge id in ascending seq order ARE that
        # directed edge's FIFO queue; ``_emit`` keeps it that way.
        self._pending = np.empty((0, 6), dtype=np.int64)
        self._seq = 0
        self._finalized = False
        # Filled at finalize (from the registered managers).
        self._offsets: np.ndarray | None = None
        self._targets: np.ndarray | None = None
        self._degrees: np.ndarray | None = None
        self._edge_src: np.ndarray | None = None
        self._max_degree = 1
        self._policy: TransportPolicy = TransportPolicy.QUEUE
        self._budget = 1
        self._alpha: float | None = None
        self._absorbing_target = -1

    # ------------------------------------------------------------------
    # Per-node hooks (called from the node programs)
    # ------------------------------------------------------------------
    def register(
        self,
        program: "NodeProgram",
        manager: WalkManager,
        counter: DeathCounterLogic,
        ctx: "BulkRoundContext",
        channel=None,
    ) -> None:
        """Adopt one node.  Must run before the manager launches its
        walks: the manager's count slab is replaced by a view into the
        engine's global tensor, so launch-time visits land there.

        ``channel`` is the node's
        :class:`~repro.congest.reliable.ReliableChannel` when the
        protocol runs in reliable mode; the engine then performs the
        node's walk-token dedup, acking, flushing, and
        retransmission-aware emission while the node is counting."""
        node = manager.node_id
        if node in self._managers:
            raise ProtocolError(
                f"node {node} registered twice with the walk engine"
            )
        manager.half_counts = self.counts[node]
        manager.attach_engine(self)
        self._programs[node] = program
        self._managers[node] = manager
        self._counters[node] = counter
        self._contexts[node] = ctx
        self._rngs[node] = manager.rng
        self._channels[node] = channel
        if channel is not None:
            self._reliable = True
        shared = getattr(ctx, "shared", None)
        if shared is not None:
            if self._fault_runtime is None:
                self._fault_runtime = shared.fault_runtime
            self._profiler = shared.profiler
            self._instruments = shared.instruments

    def touch(self, node: int) -> None:
        """Mark a node as active this round (it ran for control mail),
        so the post-round pass considers its termination reporting."""
        self._touched.add(node)

    def deliver_control_walk(
        self, node: int, kind: str, payload: tuple[int, ...]
    ) -> None:
        """Buffer a fresh walk token that arrived as an ordinary control
        message (an ARQ retransmission - fresh emission always travels
        in bulk).  The node's round handler already ran it through the
        channel; the engine folds it into this round's canonical
        grouped receive alongside the claimed bulk arrivals."""
        if kind == KIND_WALK:
            source, remaining, half = payload
            count = 1
        else:
            source, remaining, half, count = payload
        self._control_arrivals.append((node, source, remaining, half, count))

    def note_transition(self, node: int) -> None:
        """A counting node switched to the exchange phase during this
        round's calls; the engine still owes its channel this round's
        flush (from next round the node flushes inline)."""
        self._transitioned.add(node)

    # ------------------------------------------------------------------
    # Driver hook (called by the scheduler, once per round)
    # ------------------------------------------------------------------
    def end_round(
        self,
        round_number: int,
        claimed: dict[str, ClaimedKind],
        outbox: "RoundOutbox",
        bulk_outbox: "BulkOutbox",
    ) -> None:
        if not self._finalized:
            self._finalize()
        profiler = self._profiler
        crashed = (
            self._fault_runtime.crashed(round_number)
            if self._fault_runtime is not None
            else frozenset()
        )
        if self._reliable and claimed:
            with profiler.span("engine.dedup"):
                claimed = self._dedup_claimed(claimed)
        if claimed or self._control_arrivals:
            with profiler.span("engine.arrivals"):
                dead = self._process_arrivals(claimed)
        else:
            dead = ()
        if self._touched or len(dead):
            with profiler.span("engine.post_round"):
                self._post_round(round_number, outbox, dead)
        retransmits = None
        if self._reliable:
            with profiler.span("engine.arq_flush"):
                retransmits = self._flush_channels(
                    round_number, outbox, crashed
                )
        if len(self._pending):
            with profiler.span("engine.emit"):
                self._emit(bulk_outbox, round_number, retransmits, crashed)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _finalize(self) -> None:
        """First end_round: adopt launch state from every manager."""
        if len(self._managers) != self.n:
            raise ProtocolError(
                f"walk engine started with {len(self._managers)}/{self.n} "
                "nodes registered"
            )
        first = self._managers[0]
        self._policy = first.policy
        self._budget = first.walk_budget
        self._alpha = first.survival_alpha
        self._absorbing_target = first.target
        offsets = np.zeros(self.n + 1, dtype=np.int64)
        targets: list[int] = []
        adopted: list[tuple[int, int, int, int, int, int]] = []
        seq = 0
        for node in range(self.n):
            manager = self._managers[node]
            base = len(targets)
            targets.extend(manager.neighbors)
            offsets[node + 1] = len(targets)
            # Adopt the managers' launch-time queues verbatim: per-edge
            # FIFO order is part of the random-stream contract.
            for port, neighbor in enumerate(manager.neighbors):
                for group in manager._queues[neighbor]:
                    adopted.append(
                        (base + port, seq, group[0], group[1], group[2],
                         group[3])
                    )
                    seq += 1
            self.held[node] = manager._held
            manager._held = 0
        if adopted:
            self._pending = np.array(adopted, dtype=np.int64)
        self._seq = seq
        self._offsets = offsets
        self._targets = np.array(targets, dtype=np.int64)
        self._degrees = np.diff(offsets)
        self._edge_src = np.repeat(
            np.arange(self.n, dtype=np.int64), self._degrees
        )
        self._max_degree = int(self._degrees.max())
        if self._reliable:
            self._edge_index = {
                (int(s) << 32) | int(t): edge
                for edge, (s, t) in enumerate(
                    zip(self._edge_src, self._targets)
                )
            }
            self._in_state = InLinkFlatState(len(self._targets))
        self._finalized = True

    def _dedup_claimed(
        self, claimed: dict[str, ClaimedKind]
    ) -> dict[str, ClaimedKind]:
        """Reliable mode: run every claimed walk row through the
        receiver's ARQ before counting.

        Mirrors, row by row, what the per-message loop does with each
        token message: a first-seen seq is fresh (kept, multiplicity
        one - fault duplication cannot double a token), a repeat is
        rejected, and a receiver still in setup leaves the row unacked
        so the sender retransmits it past the launch round.  InLink
        state updates here are order-independent within a round, so the
        slow path's arrival order and this row order agree byte for
        byte."""
        out: dict[str, ClaimedKind] = {}
        flat = self._in_state
        channels = self._channels
        for kind, (senders, receivers, fields, multiplicity) in (
            claimed.items()
        ):
            rows = len(receivers)
            keep = np.zeros(rows, dtype=bool)
            seqs = fields[:, -1]
            recv_list = receivers.tolist()
            send_list = senders.tolist()
            phase_of = {
                node: self._programs[node].phase for node in set(recv_list)
            }
            # Receivers still in setup (crashed through the launch
            # round): no accept, no ack; the sender retries later.
            eligible = np.fromiter(
                (phase_of[node] != "setup" for node in recv_list),
                dtype=bool, count=rows,
            )
            if not eligible.any():
                continue
            positions = np.nonzero(eligible)[0]
            e_senders = senders[positions]
            e_receivers = receivers[positions]
            e_seqs = seqs[positions]
            edge_keys = (e_senders << np.int64(32)) | e_receivers
            # A repeat of an (edge, seq) already seen earlier in this
            # batch is a duplicate; the stable sort keeps the earliest
            # row first in each run.
            sort_order = np.lexsort(
                (np.arange(len(positions)), e_seqs, edge_keys)
            )
            sorted_keys = edge_keys[sort_order]
            sorted_seqs = e_seqs[sort_order]
            repeat = np.zeros(len(positions), dtype=bool)
            repeat[1:] = (sorted_keys[1:] == sorted_keys[:-1]) & (
                sorted_seqs[1:] == sorted_seqs[:-1]
            )
            intra_dup = np.zeros(len(positions), dtype=bool)
            intra_dup[sort_order] = repeat
            unique_keys, first_pos, inverse = np.unique(
                edge_keys, return_index=True, return_inverse=True
            )
            links = [
                channels[node].inn[sender]
                for sender, node in zip(
                    e_senders[first_pos].tolist(),
                    e_receivers[first_pos].tolist(),
                )
            ]
            edge_index = self._edge_index
            edge_ids = [edge_index[key] for key in unique_keys.tolist()]
            # Every touched edge ends the round owing an ack; tell the
            # receiver's channel so its flush visits the edge.
            for sender, node in zip(
                e_senders[first_pos].tolist(),
                e_receivers[first_pos].tolist(),
            ):
                channels[node].mark_active(sender)
            flat.pull(edge_ids, links)
            edge_id_arr = np.fromiter(
                edge_ids, dtype=np.int64, count=len(edge_ids)
            )
            row_edge = edge_id_arr[inverse]
            offsets = e_seqs - flat.cum[row_edge] - 1
            # Rows the uint64 mirror cannot decide (link mask wider
            # than 63 bits, or a seq more than 62 ahead of the cursor)
            # fall back to per-row accepts after the array pass.
            narrow = ~flat.wide[row_edge] & (offsets <= 62)
            in_window = narrow & (offsets >= 0)
            already = np.zeros(len(positions), dtype=bool)
            already[in_window] = (
                (
                    flat.mask[row_edge[in_window]]
                    >> offsets[in_window].astype(np.uint64)
                )
                & np.uint64(1)
            ).astype(bool)
            fresh = in_window & ~already & ~intra_dup
            if fresh.any():
                accepted_edge = inverse[fresh]
                bits = (
                    np.uint64(1) << offsets[fresh].astype(np.uint64)
                )
                acc_order = np.argsort(accepted_edge, kind="stable")
                acc_edges = accepted_edge[acc_order]
                acc_bits = bits[acc_order]
                seg_starts, _ = _segments(acc_edges)
                merged = np.bitwise_or.reduceat(acc_bits, seg_starts)
                touched = edge_id_arr[acc_edges[seg_starts]]
                mask = flat.mask[touched] | merged
                # The run of trailing ones is the contiguous prefix the
                # cursor slides past; its length is the exponent of the
                # lowest zero bit.
                lowest_zero = (mask + np.uint64(1)) & ~mask
                _, exponents = np.frexp(lowest_zero.astype(np.float64))
                advance = (exponents - 1).astype(np.int64)
                flat.cum[touched] += advance
                flat.mask[touched] = mask >> advance.astype(np.uint64)
                keep[positions[fresh]] = True
            # Write the advanced cursors back (and owe the acks every
            # accept - fresh or duplicate - owes).  Wide edges were
            # never mirrored; their rows settle through the fallback.
            pushable = [
                j for j in range(len(edge_ids))
                if not flat.wide[edge_ids[j]]
            ]
            if len(pushable) == len(edge_ids):
                flat.push(edge_ids, links)
            else:
                flat.push(
                    [edge_ids[j] for j in pushable],
                    [links[j] for j in pushable],
                )
            overflow = eligible.copy()
            overflow[positions] = ~narrow
            for row in np.nonzero(overflow)[0].tolist():
                node = recv_list[row]
                link = channels[node].inn[send_list[row]]
                if link.accept(int(seqs[row])):
                    keep[row] = True
            if keep.any():
                bad = keep & np.fromiter(
                    (phase_of[node] != "counting" for node in recv_list),
                    dtype=bool, count=rows,
                )
                if bad.any():
                    row = int(np.nonzero(bad)[0][0])
                    node = recv_list[row]
                    raise ProtocolError(
                        "fresh walk token arrived during "
                        f"{phase_of[node]} at node {node}: recovery "
                        "lost a death"
                    )
            # Every eligible row charges the receiver's dup counter its
            # full multiplicity, minus one when the row survived.
            rejected_copies = np.where(
                eligible, multiplicity - keep.astype(np.int64), 0
            )
            per_receiver = np.bincount(
                receivers, weights=rejected_copies, minlength=self.n
            ).astype(np.int64)
            for node in np.nonzero(per_receiver)[0].tolist():
                channels[node].stats.duplicates_rejected += int(
                    per_receiver[node]
                )
            if keep.any():
                out[kind] = (
                    senders[keep],
                    receivers[keep],
                    fields[keep],
                    np.ones(int(keep.sum()), dtype=np.int64),
                )
        return out

    def _process_arrivals(
        self, claimed: dict[str, ClaimedKind]
    ) -> np.ndarray:
        """One round of Algorithm 1 lines 7-15 for the whole network.

        Returns the nodes whose death count changed this round."""
        parts: list[tuple[np.ndarray, ...]] = []
        walk = claimed.get(KIND_WALK)
        if walk is not None:
            _, receivers, fields, multiplicity = walk
            parts.append(
                (receivers, fields[:, 0], fields[:, 1], fields[:, 2],
                 multiplicity)
            )
        batch = claimed.get(KIND_WALK_BATCH)
        if batch is not None:
            _, receivers, fields, multiplicity = batch
            parts.append(
                (receivers, fields[:, 0], fields[:, 1], fields[:, 2],
                 fields[:, 3] * multiplicity)
            )
        if self._control_arrivals:
            # Retransmitted tokens delivered as control mail this round;
            # they join the same canonical grouping, so where a token
            # arrived from is invisible to the random stream.
            control = np.array(self._control_arrivals, dtype=np.int64)
            self._control_arrivals = []
            parts.append(
                (control[:, 0], control[:, 1], control[:, 2],
                 control[:, 3], control[:, 4])
            )
        if not parts:
            return self._round_deaths[:0]
        if len(parts) == 1:
            raw = parts[0]
        else:
            raw = tuple(
                np.concatenate([part[i] for part in parts]) for i in range(5)
            )
        nodes, sources, remainings, halves, counts = (
            aggregate_network_groups(*raw)
        )
        entries, death_nodes, death_counts, self._seq = self._run_kernel(
            nodes, sources, remainings, halves, counts
        )
        deaths = self._round_deaths
        if len(death_nodes):
            np.add.at(deaths, death_nodes, death_counts)
        if len(entries):
            # Routed tokens are held at the edge's source until they
            # drain through the budgeted outbox - same per-node totals
            # as the pre-routing tally, just grouped by edge.
            np.add.at(
                self.held, self._edge_src[entries[:, 0]], entries[:, 5]
            )
            if len(self._pending):
                self._pending = np.concatenate((self._pending, entries))
            else:
                self._pending = entries
        return np.nonzero(deaths)[0]

    def _run_kernel(
        self,
        nodes: np.ndarray,
        sources: np.ndarray,
        remainings: np.ndarray,
        halves: np.ndarray,
        counts: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
        """Run the counting-round kernel over the canonical arrays.

        The sharded engine overrides this to fan the slice out across
        worker processes by node range."""
        return counting_round_kernel(
            nodes,
            sources,
            remainings,
            halves,
            counts,
            self._rngs,
            self._alpha,
            self._absorbing_target,
            self.counts,
            self._degrees,
            self._offsets,
            self._max_degree,
            self._seq,
        )

    def _post_round(
        self,
        round_number: int,
        outbox: "RoundOutbox",
        dead: np.ndarray | tuple,
    ) -> None:
        """The non-walk tail of each node's counting round: fold this
        round's deaths into the convergecast, send changed subtree
        totals, and let the root start the done wave on detection."""
        post = self._touched
        if len(dead):
            post = post | {int(node) for node in dead}
        for node in sorted(post):
            counter = self._counters[node]
            delta = int(self._round_deaths[node])
            if delta:
                self._round_deaths[node] = 0
                self.deaths[node] += delta
                counter.record_deaths(delta)
            if counter.stopped:
                continue
            if counter.parent is None:
                if counter.root_detects_completion:
                    done_round = round_number + self.n + 2
                    self._programs[node]._begin_done_wave(
                        self._contexts[node], done_round
                    )
            else:
                total = counter.pop_report()
                if total is not None:
                    if self._reliable:
                        # Sequenced and shipped by this round's flush,
                        # exactly like the slow path's queue-then-flush.
                        self._channels[node].queue_latest(
                            counter.parent, KIND_TERM, (total,)
                        )
                    else:
                        outbox.push(
                            Message(
                                sender=node,
                                receiver=counter.parent,
                                kind=KIND_TERM,
                                fields=(total,),
                            )
                        )
        self._touched = set()

    def _flush_channels(
        self,
        round_number: int,
        outbox: "RoundOutbox",
        crashed: frozenset,
    ) -> dict[int, int]:
        """Run the per-round ARQ flush for every node the engine owns
        this round: counting nodes plus the ones that left counting
        during this round's calls.  (Setup/exchange/done nodes flush
        inline in their own handlers; a crashed node flushes nothing,
        same as the per-message loop skipping it.)  Returns the fresh
        token budget debits as an edge-id -> retransmit-count map for
        :meth:`_emit`."""
        retransmits: dict[int, int] = {}
        offsets = self._offsets
        for node in sorted(self._channels):
            if node in crashed:
                continue
            if (
                self._programs[node].phase != "counting"
                and node not in self._transitioned
            ):
                continue
            channel = self._channels[node]
            sent = channel.flush(round_number, outbox.push)
            if sent:
                neighbors = self._managers[node].neighbors
                for neighbor, count in sent.items():
                    retransmits[offsets[node] + neighbors.index(neighbor)] = (
                        count
                    )
        self._transitioned = set()
        return retransmits

    def _emit(
        self,
        bulk_outbox: "BulkOutbox",
        round_number: int = 0,
        retransmits: dict[int, int] | None = None,
        crashed: frozenset = frozenset(),
    ) -> None:
        """Dequeue every edge's sendable tokens under the per-edge
        budget (same head-splitting / whole-group rules as
        :meth:`WalkManager.emit_round`) and ship the whole round as one
        aggregate push.

        QUEUE charges the budget per *token* and may split the group at
        the queue head; BATCH charges it per *group message*.  Both are
        computed for all edges at once: sort the pending table by
        (edge, seq) and a segmented cumulative sum yields each group's
        take under its edge's budget - exactly the decisions the
        per-edge head-of-queue loop would make.

        Under faults the budget becomes per edge: ``retransmits`` debits
        slots the ARQ flush already spent, and edges out of a crashed
        node get zero (the per-message loop skips the node outright, so
        its queues just wait).  In reliable mode every shipped token
        needs its own seq, so QUEUE groups expand to one row per token
        and each row is sequenced through the sender's channel in the
        same per-edge FIFO order the slow path sends in."""
        pending = self._pending
        order = np.lexsort((pending[:, 1], pending[:, 0]))
        pending = pending[order]
        edges = pending[:, 0]
        counts = pending[:, 5]
        starts, ends = _segments(edges)
        lengths = ends - starts
        budget: int | np.ndarray = self._budget
        if retransmits or crashed:
            edge_budget = np.full(
                len(self._targets), self._budget, dtype=np.int64
            )
            if retransmits:
                for edge_id, spent in retransmits.items():
                    edge_budget[edge_id] = max(0, self._budget - spent)
            if crashed:
                edge_budget[
                    np.isin(self._edge_src, np.array(sorted(crashed)))
                ] = 0
            budget = edge_budget[edges]
        if self._policy is TransportPolicy.QUEUE:
            prior = np.cumsum(counts) - counts
            prior_within = prior - np.repeat(prior[starts], lengths)
            take = np.clip(budget - prior_within, 0, counts)
        else:
            rank = np.arange(len(edges), dtype=np.int64) - np.repeat(
                starts, lengths
            )
            take = np.where(rank < budget, counts, 0)
        sendable = take > 0
        sent = pending[sendable]
        taken = take[sendable]
        edge_ids = sent[:, 0]
        senders = self._edge_src[edge_ids]
        np.subtract.at(self.held, senders, taken)
        if self._instruments is not None:
            # Same message-count convention as WalkManager.send_round:
            # QUEUE ships one message per token, BATCH one per group.
            sent_messages = (
                int(taken.sum())
                if self._policy is TransportPolicy.QUEUE
                else len(sent)
            )
            if sent_messages:
                self._instruments.bump_round(
                    "walk_sends", round_number, sent_messages
                )
        if self._reliable:
            self._emit_reliable(
                bulk_outbox, round_number, sent, taken, senders
            )
        elif self._policy is TransportPolicy.QUEUE:
            fields = np.empty((len(sent), 3), dtype=np.int64)
            fields[:, 0] = sent[:, 2]
            fields[:, 1] = sent[:, 3] - 1
            fields[:, 2] = sent[:, 4]
            bulk_outbox.push_rows(
                KIND_WALK,
                senders,
                self._targets[edge_ids],
                fields,
                taken,
            )
        else:
            fields = np.empty((len(sent), 4), dtype=np.int64)
            fields[:, 0] = sent[:, 2]
            fields[:, 1] = sent[:, 3] - 1
            fields[:, 2] = sent[:, 4]
            fields[:, 3] = taken
            bulk_outbox.push_rows(
                KIND_WALK_BATCH,
                senders,
                self._targets[edge_ids],
                fields,
            )
        left = counts - take
        waiting = left > 0
        if waiting.any():
            kept = pending[waiting]
            kept[:, 5] = left[waiting]
            self._pending = kept
        else:
            self._pending = pending[:0]

    def _emit_reliable(
        self,
        bulk_outbox: "BulkOutbox",
        round_number: int,
        sent: np.ndarray,
        taken: np.ndarray,
        senders: np.ndarray,
    ) -> None:
        """Ship this round's emitted tokens with per-token sequencing.

        Rows arrive sorted by (edge, arrival seq), so walking them in
        order assigns each directed edge the same consecutive seqs the
        per-message loop's ``send_round`` would (it also sends
        head-of-queue first).  QUEUE groups expand to multiplicity-one
        rows because each token message carries a distinct seq."""
        if not len(sent):
            return
        targets = self._targets[sent[:, 0]]
        channels = self._channels
        if self._policy is TransportPolicy.QUEUE:
            row_senders = np.repeat(senders, taken)
            row_targets = np.repeat(targets, taken)
            row_edges = np.repeat(sent[:, 0], taken)
            fields = np.empty((len(row_senders), 4), dtype=np.int64)
            fields[:, 0] = np.repeat(sent[:, 2], taken)
            fields[:, 1] = np.repeat(sent[:, 3] - 1, taken)
            fields[:, 2] = np.repeat(sent[:, 4], taken)
            rows_t = list(map(tuple, fields[:, :3].tolist()))
            starts, ends = _segments(row_edges)
            seq_col = fields[:, 3]
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                start_seq = sequence_block(
                    channels[int(row_senders[lo])],
                    int(row_targets[lo]),
                    KIND_WALK,
                    rows_t[lo:hi],
                    round_number,
                )
                seq_col[lo:hi] = np.arange(
                    start_seq, start_seq + (hi - lo)
                )
            bulk_outbox.push_rows(KIND_WALK, row_senders, row_targets, fields)
        else:
            fields = np.empty((len(sent), 5), dtype=np.int64)
            fields[:, 0] = sent[:, 2]
            fields[:, 1] = sent[:, 3] - 1
            fields[:, 2] = sent[:, 4]
            fields[:, 3] = taken
            rows_t = list(map(tuple, fields[:, :4].tolist()))
            starts, ends = _segments(sent[:, 0])
            seq_col = fields[:, 4]
            for lo, hi in zip(starts.tolist(), ends.tolist()):
                start_seq = sequence_block(
                    channels[int(senders[lo])],
                    int(targets[lo]),
                    KIND_WALK_BATCH,
                    rows_t[lo:hi],
                    round_number,
                )
                seq_col[lo:hi] = np.arange(
                    start_seq, start_seq + (hi - lo)
                )
            bulk_outbox.push_rows(
                KIND_WALK_BATCH, senders, targets, fields
            )


def _segments(nodes: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Start/end index pairs of the equal-node runs of a sorted array."""
    boundary = np.empty(len(nodes), dtype=bool)
    boundary[0] = True
    np.not_equal(nodes[1:], nodes[:-1], out=boundary[1:])
    starts = np.nonzero(boundary)[0]
    ends = np.append(starts[1:], len(nodes))
    return starts, ends
