"""Shared fast-path driver for the exchange phase (Algorithm 2).

On the fault-free vectorized fast path every node's exchange behaviour
is fully determined by the shared counting engine's count tensor: in
round ``start + i`` node ``v`` broadcasts column ``i`` of its own half
counts to all neighbors, and at ``start + n`` it combines its neighbors'
columns into potentials (:meth:`RWBCNodeProgram._finish`).  Stepping
``n`` nodes for ``n`` calendar rounds to do this costs O(n^2) Python
dispatch; this driver claims :data:`~repro.core.protocol.KIND_EXCHANGE`
wholesale and replays the phase as one aggregate
:meth:`~repro.congest.transport.BulkOutbox.push_rows` per round.

Byte-identity with the per-node path is structural, not approximate:

* **Traffic.**  Edge ids ascend node-major with ports in each node's
  ``info.neighbors`` order, so one ``push_rows`` over all edges emits
  exactly the rows the per-node loop pushes (node-ascending pushes of
  each node's neighbor fan-out), with the same value-dependent per-row
  bit charges, in the same rounds.  Claimed traffic is recorded into
  :class:`~repro.congest.metrics.RunMetrics` before the driver takes
  it, so counters cannot drift.
* **Results.**  After the counting phase the count tensor is frozen;
  the ``(2, n)`` slab a neighbor would have broadcast column by column
  is exactly ``engine.counts[neighbor]``.  The driver hands each
  program zero-copy views into the tensor and calls ``_finish`` in
  ascending node order - the order the scheduler's sorted step loop
  would have used - so outputs and halting rounds match bit for bit.
* **Random streams.**  The exchange phase draws no randomness; no
  generator is touched.

The driver is only installed when faults are off and the counting
engine ran (``_begin_done_wave``); loss recovery keeps the self-paced
per-node ARQ path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.transport import BulkOutbox, RoundOutbox
    from repro.core.protocol import RWBCNodeProgram
    from repro.core.walk_engine import ClaimedKind, CountingWalkEngine


class ExchangeEngine:
    """Network-wide exchange phase over the shared count tensor.

    Created by the first node to enter the done wave and shared through
    ``SharedFastPathState.slots``; every node registers as its own
    done-wave handler fires.  All ``n`` registrations must land before
    the first broadcast round ``start`` - the done wave gives the flood
    ``n + 2`` rounds of slack, so a missing registration means the wave
    itself is broken and is reported as a :class:`ProtocolError`.
    """

    def __init__(
        self, n: int, start: int, engine: "CountingWalkEngine"
    ) -> None:
        from repro.core.protocol import KIND_EXCHANGE

        self.claimed_kinds = frozenset({KIND_EXCHANGE})
        self._kind = KIND_EXCHANGE
        self.n = n
        self.start = start
        self._engine = engine
        self._programs: dict[int, "RWBCNodeProgram"] = {}
        self._done = False

    def register(self, program: "RWBCNodeProgram") -> None:
        node = program.node_id
        if node in self._programs:
            raise ProtocolError(
                f"node {node} registered twice with the exchange engine"
            )
        self._programs[node] = program

    def end_round(
        self,
        round_number: int,
        claimed: dict[str, "ClaimedKind"],
        outbox: "RoundOutbox",
        bulk_outbox: "BulkOutbox",
    ) -> None:
        # Claimed exchange traffic needs no processing: receivers read
        # their neighbors' columns straight from the count tensor at the
        # finish round.  Taking it still matters - it keeps the rows
        # from being materialized per node.
        if self._done or round_number < self.start:
            return
        n = self.n
        if len(self._programs) != n:
            raise ProtocolError(
                f"exchange engine entered round {round_number} with "
                f"{len(self._programs)}/{n} nodes registered: the done "
                "wave did not reach every node in time"
            )
        engine = self._engine
        if round_number < self.start + n:
            # Round start + i: every node broadcasts count column i.
            source = round_number - self.start
            edge_src = engine._edge_src
            fields = np.empty((len(edge_src), 3), dtype=np.int64)
            fields[:, 0] = source
            fields[:, 1] = engine.counts[edge_src, 0, source]
            fields[:, 2] = engine.counts[edge_src, 1, source]
            bulk_outbox.push_rows(
                self._kind, edge_src, engine._targets, fields
            )
            return
        # Round start + n: all columns have (virtually) arrived; run
        # every node's local computation in ascending node order.
        counts = engine.counts
        for node in sorted(self._programs):
            program = self._programs[node]
            program._neighbor_counts = {
                int(v): counts[int(v)] for v in program.neighbors
            }
            program._finish(round_number)
        self._done = True
