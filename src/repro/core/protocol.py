"""The full distributed RWBC protocol as one phased CONGEST node program.

Timeline (rounds; ``n``, ``K``, ``l`` are common knowledge per the
paper's Algorithm 1 input):

=================  ========================================================
rounds             phase
=================  ========================================================
0 .. n             SETUP: flood-max leader election + BFS tree; the leader
                   (a uniformly random node, since ranks are uniform) *is*
                   the absorbing target ``t`` - implementing Algorithm 1
                   line 2.  Round ``n`` announces parents.
n + 1              tree finalized; nodes exchange degrees with neighbors
                   (Algorithm 2 line 1 divides neighbor counts by
                   *neighbor* degrees).
n + 2              COUNTING starts: launch ``K`` walks per node
                   (Algorithm 1 line 3) and begin walk forwarding.
n + 2 .. R_end     COUNTING (Algorithm 1 lines 4-17): walk messages under
                   the transport policy, plus the monotone death-counter
                   convergecast.  When the root's counter reaches
                   ``(n - 1) K`` it floods ``done(R_end)`` with
                   ``R_end = detection + n + 2``, a common round safely
                   after the wave reaches everyone.
R_end .. R_end+n   EXCHANGE (Algorithm 2 line 2): in subround ``i`` every
                   node sends its count for source ``i`` to all neighbors.
R_end + n          local computation (Algorithm 2 lines 3-4) and halt.
=================  ========================================================

Node labels must be exactly ``0 .. n-1`` (the estimator relabels
arbitrary graphs first); source ids double as count-vector indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.congest.node import (
    NodeInfo,
    RoundContext,
    VectorizedProgram,
)
from repro.congest.primitives.flood import (
    KIND_ADOPT,
    KIND_FLOOD,
    FloodMaxBFS,
    FloodMaxState,
)
from repro.congest.reliable import KIND_ACK, ReliableChannel

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.node import BulkRoundContext
    from repro.congest.transport import BulkInbox
from repro.core.flow_math import betweenness_from_raw_flow, node_raw_flow
from repro.core.termination import KIND_DONE, KIND_TERM, DeathCounterLogic
from repro.core.walk_engine import CountingWalkEngine
from repro.core.walk_manager import (
    KIND_WALK,
    KIND_WALK_BATCH,
    TransportPolicy,
    WalkManager,
)

KIND_DEGREE = "deg"
KIND_EXCHANGE = "xch"

PHASE_SETUP = "setup"
PHASE_COUNTING = "counting"
PHASE_EXCHANGE = "exchange"
PHASE_DONE = "done"


@dataclass(frozen=True)
class ProtocolConfig:
    """Distributed-run parameters shared by every node.

    Attributes
    ----------
    length, walks_per_source:
        The paper's ``l`` and ``K`` (Theorems 1 and 3).
    policy:
        Walk transport policy (see :mod:`repro.core.walk_manager`).
    walk_budget:
        Walk messages allowed per directed edge per round.
    count_initial:
        Count the launch position as a visit (Eq. 3's ``r = 0`` term).
    include_endpoints, normalized:
        Output convention (Newman defaults).
    survival_alpha:
        ``None`` runs the paper's absorbing-walk algorithm (RWBC).  A
        value in (0, 1) runs the damped alpha-CFBC variant of section
        II-C instead: no absorbing target, every hop survives with
        probability alpha, and the output estimates the
        alpha-current-flow betweenness.  Expected walk length drops to
        ``1/(1 - alpha)``, which is where the section's
        ``O(log n / (1 - alpha))`` round claim comes from.
    split_sampling:
        Tag each walk with a half-bit and carry two counts per source in
        the exchange phase, enabling the noise-floor bias correction of
        the E15 experiment (see :mod:`repro.core.bias`).  Costs one bit
        per walk token and one extra integer per exchange message - both
        still ``O(log n)``.  Requires even ``walks_per_source``.  Nodes
        then also expose ``betweenness_debiased`` and ``noise_floor``.
    reliable:
        Run the loss-tolerant variant of the protocol: every control and
        walk message travels through a per-edge ARQ
        (:mod:`repro.congest.reliable`), the setup timeline stretches by
        ``setup_slack`` to absorb retransmission latency, the done wave
        floods over all edges instead of only tree edges, and the
        exchange phase becomes self-paced (each node ships its next
        unsent count column each round and finishes when everything is
        sent, acked, and received).  Requires a bandwidth policy with at
        least ``walk_budget + 4`` messages per edge.  Fault-free
        reliable runs produce the same estimates as unreliable runs up
        to walk-randomness scheduling; under a
        :class:`~repro.congest.faults.FaultPlan` with drops, duplicates,
        delays, or crash-recover windows, the reliable protocol still
        terminates with exact counting (exactly-once token delivery).
    setup_slack:
        Reliable mode only: parents/degrees are announced at round
        ``setup_slack * n`` and walks launch at ``2 * setup_slack * n``,
        giving the flood and adopt waves time to win against message
        loss (a dropped control message retries every
        :data:`~repro.congest.reliable.RETRANSMIT_AFTER` rounds).
    instruments:
        Optional ``repro.obs.InstrumentSet`` shared by every node:
        walk-send counters and the ARQ's window/retransmit/latency
        instruments write into it.  Observation-only - no protocol
        decision ever reads it - and excluded from equality/hash, so
        two configs differing only in telemetry are the same config.
    """

    length: int
    walks_per_source: int
    policy: TransportPolicy = TransportPolicy.QUEUE
    walk_budget: int = 2
    count_initial: bool = True
    include_endpoints: bool = True
    normalized: bool = True
    survival_alpha: float | None = None
    split_sampling: bool = False
    reliable: bool = False
    setup_slack: int = 6
    instruments: object | None = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ProtocolError("length must be >= 1")
        if self.walks_per_source < 1:
            raise ProtocolError("walks_per_source must be >= 1")
        if self.walk_budget < 1:
            raise ProtocolError("walk_budget must be >= 1")
        if self.setup_slack < 2:
            raise ProtocolError("setup_slack must be >= 2")
        if self.survival_alpha is not None and not (
            0.0 < self.survival_alpha < 1.0
        ):
            raise ProtocolError("survival_alpha must be in (0, 1)")
        if self.split_sampling and self.walks_per_source % 2 != 0:
            raise ProtocolError(
                "split_sampling requires an even walks_per_source"
            )

    @property
    def launching_nodes(self) -> str:
        """Documentation helper: who launches walks in this mode."""
        return "all nodes" if self.survival_alpha is not None else "all but t"


class _ReliableCtx:
    """Context adapter that reroutes a primitive's control sends into
    the node's :class:`ReliableChannel` queues.

    The flood/BFS logic is written against the plain ``ctx.send`` /
    ``ctx.broadcast`` surface; in reliable mode its messages must be
    sequenced and retransmitted instead of shipped raw.  Kinds in the
    channel's ``latest_kinds`` (flood waves, monotone counters) use
    ``queue_latest`` so a superseded value never wastes a slot.
    """

    __slots__ = ("_channel", "_neighbors", "round_number")

    def __init__(
        self,
        channel: ReliableChannel,
        neighbors: tuple[int, ...],
        round_number: int,
    ) -> None:
        self._channel = channel
        self._neighbors = neighbors
        self.round_number = round_number

    def send(self, neighbor: int, kind: str, *fields: int) -> None:
        if kind in self._channel.latest_kinds:
            self._channel.queue_latest(neighbor, kind, tuple(fields))
        else:
            self._channel.queue(neighbor, kind, tuple(fields))

    def broadcast(self, kind: str, *fields: int) -> None:
        for neighbor in self._neighbors:
            self.send(neighbor, kind, *fields)


class RWBCNodeProgram(VectorizedProgram):
    """One node of the distributed RWBC algorithm.

    Outputs after the run: ``betweenness`` (this node's estimate),
    ``counts`` (its ``xi`` vector), ``target`` (the elected absorbing
    node), and the phase-boundary rounds ``counting_start_round`` /
    ``exchange_start_round`` / ``finish_round`` for the complexity
    experiments.

    The program is a :class:`VectorizedProgram`: walk and exchange
    traffic can travel as aggregate per-edge counts on the scheduler's
    fast path.  Both paths funnel each round's walk arrivals through one
    grouped :meth:`WalkManager.receive_group_arrays` call, so the random
    stream - and therefore every tally and every message count - is
    identical for the same seed.
    """

    def __init__(
        self, info: NodeInfo, rng: np.random.Generator, config: ProtocolConfig
    ) -> None:
        super().__init__(info, rng)
        if not 0 <= info.node_id < info.n:
            raise ProtocolError(
                f"protocol requires labels 0..n-1, got {info.node_id}"
            )
        self.config = config
        self.phase = PHASE_SETUP
        rank = int(rng.integers(0, max(2, info.n) ** 3))
        self._flood = FloodMaxBFS(info.node_id, rank)
        # Fast path only: the shared exchange driver (non-reliable runs
        # without fault injection).  When set, the whole exchange phase -
        # column broadcasts, neighbor-count collection, and the final
        # local computation - runs inside the driver, and this node is
        # never woken for it.
        self._xch_engine = None
        self._tree: FloodMaxState | None = None
        self._walks: WalkManager | None = None
        self._death_counter: DeathCounterLogic | None = None
        # Fast path only: the shared network-wide counting engine.
        self._engine: CountingWalkEngine | None = None
        self._neighbor_degrees: dict[int, int] = {}
        # One (2, n) half-count slab per neighbor, backed by a single
        # (degree, 2, n) matrix so the fast path can scatter a whole
        # round's exchange arrivals in one vectorized store.  The dict
        # values are views into the matrix - both access paths see the
        # same data.
        self._neighbor_index = np.array(info.neighbors, dtype=np.int64)
        self._neighbor_matrix = np.zeros(
            (info.degree, 2, info.n), dtype=np.int64
        )
        self._neighbor_counts: dict[int, np.ndarray] = {
            neighbor: self._neighbor_matrix[j]
            for j, neighbor in enumerate(info.neighbors)
        }
        self._exchange_start: int | None = None
        # Reliable-mode state (all inert when config.reliable is False).
        self._channel: ReliableChannel | None = None
        self._adopters: set[int] = set()
        self._early_terms: list[tuple[int, int]] = []
        self._announced = False
        self._next_column = 0
        self._xch_received: dict[int, int] = dict.fromkeys(info.neighbors, 0)
        if config.reliable:
            self._channel = ReliableChannel(
                node_id=info.node_id,
                neighbors=info.neighbors,
                token_budget=config.walk_budget,
                token_kinds=frozenset({KIND_WALK, KIND_WALK_BATCH}),
                latest_kinds=frozenset({KIND_FLOOD, KIND_TERM, KIND_DONE}),
                instruments=config.instruments,
            )
        # Outputs.
        self.betweenness: float | None = None
        self.betweenness_debiased: float | None = None
        self.noise_floor: float | None = None
        self.edge_betweenness: dict[int, float] = {}
        self.counts: np.ndarray | None = None
        self.target: int | None = None
        self.counting_start_round: int | None = None
        self.exchange_start_round: int | None = None
        self.finish_round: int | None = None

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_start(self, ctx: RoundContext) -> None:
        if self._channel is None:
            self._flood.start(ctx)
            return
        rctx = _ReliableCtx(self._channel, self.neighbors, ctx.round_number)
        self._flood.start(rctx)
        self._channel.flush(ctx.round_number, ctx.push_message)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        if self.phase == PHASE_SETUP:
            self._setup_round(ctx, inbox)
        elif self.phase == PHASE_COUNTING:
            self._counting_round(ctx, inbox)
        elif self.phase == PHASE_EXCHANGE:
            self._exchange_round(ctx, inbox)
        else:  # PHASE_DONE: ignore stragglers (none are expected
            # fault-free; under recovery, re-ack so peers stop retrying).
            self._done_round(ctx, inbox)

    def on_bulk_round(
        self,
        ctx: BulkRoundContext,
        inbox: list[Message],
        bulk: BulkInbox | None,
    ) -> None:
        if self.phase == PHASE_SETUP:
            # Setup traffic (flood-max, degrees) is lightweight control
            # traffic; it stays per-message on both paths.
            self._setup_round(ctx, inbox)
        elif self.phase == PHASE_COUNTING:
            self._counting_round_engine(ctx, inbox)
        elif self.phase == PHASE_EXCHANGE:
            self._exchange_round(ctx, inbox, bulk)
        else:
            self._done_round(ctx, inbox)

    def _done_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        """A halted node woken by late traffic.  In reliable mode the
        arrivals are peer retransmissions whose acks got lost; running
        them through the channel re-marks the acks due, and the flush
        sends them so the peers can drain and halt too."""
        if self._channel is not None and inbox:
            for message in inbox:
                payload = self._channel.receive(message)
                if payload is not None and message.kind in (
                    KIND_WALK,
                    KIND_WALK_BATCH,
                ):
                    raise ProtocolError(
                        "fresh walk token arrived after finish at node "
                        f"{self.node_id}: recovery lost a death"
                    )
            self._channel.flush(ctx.round_number, ctx.push_message)
        self.halt()

    @property
    def bulk_idle(self) -> bool:
        """Skippable on the fast path: during counting, all walk
        movement and termination reporting runs inside the shared
        :class:`CountingWalkEngine`, so a node only needs a round of its
        own when control mail (term/done) arrives.  Setup and exchange
        rounds are round-number driven, so the node must run every one
        of them."""
        return self.phase == PHASE_COUNTING

    def next_wake(self, round_number: int) -> int | None:
        """Calendar wakes for the fast-path scheduler.

        Mirrors the phase timeline exactly: in non-reliable setup the
        only mail-less rounds that *do* anything are the milestones
        ``n`` (parent announcement), ``n + 1`` (degree broadcast) and
        ``n + 2`` (launch) - between floods the ``FloodMaxBFS.step``
        with an empty inbox is a strict no-op, so sleeping until the
        next milestone is safe.  Reliable mode is timer-driven (ARQ
        retransmits), so it keeps the historical every-round stepping.
        Counting is mail-only (the engine does the work).  Exchange is
        calendar-driven from ``_exchange_start`` unless the shared
        exchange driver owns it, in which case the node sleeps forever
        and the driver finishes it."""
        if self.phase == PHASE_SETUP:
            if self._channel is not None:
                return round_number + 1
            n = self.info.n
            return n if round_number < n else round_number + 1
        if self.phase == PHASE_COUNTING:
            return None
        if self.phase == PHASE_EXCHANGE:
            if self._xch_engine is not None:
                return None
            if self._channel is not None:
                return round_number + 1
            start = self._exchange_start
            return start if round_number < start else round_number + 1
        return None  # PHASE_DONE: only late mail matters

    # ------------------------------------------------------------------
    # Phase 1: setup (leader election, tree, degrees)
    # ------------------------------------------------------------------
    def _setup_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        if self._channel is not None:
            self._setup_round_reliable(ctx, inbox)
            return
        n = self.info.n
        r = ctx.round_number
        if r <= n:
            self._flood.step(ctx, inbox)
            if r == n:
                self._flood.announce_parent(ctx)
            return
        if r == n + 1:
            self._tree = self._flood.finish(inbox)
            self.target = self._tree.leader_id
            ctx.broadcast(KIND_DEGREE, self.degree)
            return
        # r == n + 2: learn neighbor degrees, launch walks, start counting.
        for message in inbox:
            if message.kind == KIND_DEGREE:
                (degree,) = message.fields
                self._neighbor_degrees[message.sender] = degree
        if len(self._neighbor_degrees) != self.degree:
            raise ProtocolError(
                f"node {self.node_id}: expected {self.degree} degree "
                f"reports, got {len(self._neighbor_degrees)}"
            )
        self._launch_counting(ctx, r)

    def _setup_round_reliable(
        self, ctx: RoundContext, inbox: list[Message]
    ) -> None:
        """Loss-tolerant setup: same flood/adopt/degree dance, but every
        control message rides the ARQ and the timeline is stretched -
        parents and degrees go out at ``setup_slack * n`` and walks
        launch at ``2 * setup_slack * n``, leaving every wave
        ``RETRANSMIT_AFTER``-round retries worth of slack.  A node that
        was crashed through one of the milestone rounds performs the
        missed step on its first live round after it (its own control
        messages were queued, not lost, and arriving floods were held
        unacked by the ARQ until delivered)."""
        n = self.info.n
        r = ctx.round_number
        announce = self.config.setup_slack * n
        launch = 2 * announce
        flood_mail: list[Message] = []
        for message in inbox:
            kind = message.kind
            if kind == KIND_ACK:
                self._channel.receive(message)
                continue
            if kind in (KIND_WALK, KIND_WALK_BATCH):
                # Not launched yet: leave the token unacked so the
                # sender keeps retransmitting; it lands once this node
                # reaches the counting phase.
                continue
            payload = self._channel.receive(message)
            if payload is None:
                continue
            if kind == KIND_FLOOD:
                flood_mail.append(
                    Message(message.sender, self.node_id, KIND_FLOOD, payload)
                )
            elif kind == KIND_ADOPT:
                self._adopters.add(message.sender)
            elif kind == KIND_DEGREE:
                self._neighbor_degrees[message.sender] = payload[0]
            elif kind == KIND_TERM:
                # Possible only when this node was crashed through the
                # launch round: a tree child is already counting and
                # reporting.  The counter does not exist yet - hold the
                # report and replay it at launch.
                self._early_terms.append((message.sender, payload[0]))
            # done/xch cannot arrive while this node is in setup: the
            # done wave needs every launched walk dead, which cannot
            # happen before this node launches its own.
        rctx = _ReliableCtx(self._channel, self.neighbors, r)
        if not self._announced:
            self._flood.step(rctx, flood_mail)
            if r >= announce:
                # Normally exactly round ``announce``; later only when
                # this node was crashed through it.
                self._flood.announce_parent(rctx)
                for neighbor in self.neighbors:
                    self._channel.queue(neighbor, KIND_DEGREE, (self.degree,))
                self._announced = True
        if r >= launch:
            # Freeze the tree from the stabilized flood state.  Missing
            # adopters (their announcement still in retransmission) are
            # auto-adopted by the non-strict death counter on their
            # first report; missing degrees arrive before the exchange
            # phase can finish.
            self._tree = FloodMaxState(
                leader_id=self._flood.best_id,
                leader_rank=self._flood.best_rank,
                distance=self._flood.distance,
                parent=self._flood.parent,
                children=tuple(sorted(self._adopters)),
            )
            self.target = self._tree.leader_id
            self._launch_counting(ctx, r)
            return
        self._channel.flush(r, ctx.push_message)

    def _launch_counting(self, ctx: RoundContext, r: int) -> None:
        """Build the walk manager and death counter, join the fast-path
        engine when one is available, and launch this node's walks."""
        n = self.info.n
        self._walks = WalkManager(
            node_id=self.node_id,
            neighbors=self.neighbors,
            n=n,
            target=self.target,
            walks_per_source=self.config.walks_per_source,
            length=self.config.length,
            rng=self.rng,
            policy=self.config.policy,
            walk_budget=self.config.walk_budget,
            count_initial=self.config.count_initial,
            survival_alpha=self.config.survival_alpha,
            split_sampling=self.config.split_sampling,
        )
        # In damped mode every node launches K walks; in absorbing mode
        # the target sits out (its walks would die at birth).
        launchers = n if self.config.survival_alpha is not None else n - 1
        self._death_counter = DeathCounterLogic(
            node_id=self.node_id,
            parent=self._tree.parent,
            children=self._tree.children,
            expected_total=launchers * self.config.walks_per_source,
            strict=not self.config.reliable,
        )
        for sender, total in self._early_terms:
            self._death_counter.receive_report(sender, total)
        self._early_terms = []
        shared = getattr(ctx, "shared", None)
        if shared is not None:
            # Fast path: join (or create) the network-wide engine.  This
            # must precede launch() so the launch visits land in the
            # engine's global count tensor.
            engine = shared.slots.get("walk_engine")
            if engine is None:
                num_shards = getattr(shared, "num_shards", None)
                if num_shards:
                    from repro.congest.sharded import ShardedWalkEngine

                    engine = ShardedWalkEngine(n, num_shards)
                else:
                    engine = CountingWalkEngine(n)
                shared.slots["walk_engine"] = engine
                shared.register_driver(engine)
            engine.register(
                self, self._walks, self._death_counter, ctx, self._channel
            )
            self._engine = engine
        self.phase = PHASE_COUNTING
        self.counting_start_round = r
        self._walks.launch()
        self._death_counter.record_deaths(self._collect_immediate_deaths())
        if self._engine is not None:
            # The engine adopts the launch queues at end of this round
            # and performs the sends (walks and initial term report).
            self._engine.touch(self.node_id)
        elif self._channel is None:
            self._counting_sends(ctx)
        else:
            self._reliable_counting_sends(ctx)

    def _collect_immediate_deaths(self) -> int:
        """Deaths at launch time: none with length >= 1 (enforced), but
        kept explicit so the accounting is visibly complete."""
        return 0

    # ------------------------------------------------------------------
    # Phase 2: counting (Algorithm 1)
    # ------------------------------------------------------------------
    def _counting_round_engine(
        self, ctx: BulkRoundContext, inbox: list[Message]
    ) -> None:
        """Fast-path counting round: only control mail reaches the node
        (walk traffic is claimed by the engine), so this just folds in
        term reports, reacts to the done wave, and tells the engine the
        node was active so the post-round pass re-examines its
        reporting state.

        In reliable mode the control mail additionally includes acks
        and retransmitted walk tokens; fresh tokens are handed to the
        engine's control-arrival buffer so they join the same
        canonical grouped receive as the claimed bulk traffic.  The
        engine owns this node's flush while it is counting, so none
        happens here."""
        done_round: int | None = None
        if self._channel is not None:
            for message in inbox:
                kind = message.kind
                if kind == KIND_ACK:
                    self._channel.receive(message)
                    continue
                payload = self._channel.receive(message)
                if payload is None:
                    continue
                if kind in (KIND_WALK, KIND_WALK_BATCH):
                    self._engine.deliver_control_walk(
                        self.node_id, kind, payload
                    )
                elif kind == KIND_TERM:
                    self._death_counter.receive_report(
                        message.sender, payload[0]
                    )
                elif kind == KIND_DONE:
                    done_round = payload[0]
                elif kind == KIND_EXCHANGE:
                    self._store_exchange(message.sender, payload)
                elif kind == KIND_DEGREE:
                    self._neighbor_degrees[message.sender] = payload[0]
        else:
            for message in inbox:
                if message.kind == KIND_TERM:
                    (total,) = message.fields
                    self._death_counter.receive_report(message.sender, total)
                elif message.kind == KIND_DONE:
                    (done_round,) = message.fields
        if done_round is not None:
            self._begin_done_wave(ctx, done_round)
            return
        self._engine.touch(self.node_id)

    def _counting_round(
        self, ctx: RoundContext, inbox: list[Message]
    ) -> None:
        walks = self._walks
        deaths_before = walks.deaths
        done_round: int | None = None
        sources: list[int] = []
        remainings: list[int] = []
        halves: list[int] = []
        counts: list[int] = []
        if self._channel is not None:
            for message in inbox:
                kind = message.kind
                if kind == KIND_ACK:
                    self._channel.receive(message)
                    continue
                payload = self._channel.receive(message)
                if payload is None:
                    continue
                if kind == KIND_WALK:
                    sources.append(payload[0])
                    remainings.append(payload[1])
                    halves.append(payload[2])
                    counts.append(1)
                elif kind == KIND_WALK_BATCH:
                    sources.append(payload[0])
                    remainings.append(payload[1])
                    halves.append(payload[2])
                    counts.append(payload[3])
                elif kind == KIND_TERM:
                    self._death_counter.receive_report(
                        message.sender, payload[0]
                    )
                elif kind == KIND_DONE:
                    done_round = payload[0]
                elif kind == KIND_EXCHANGE:
                    # A neighbor reached the exchange phase before this
                    # node's done arrival; its columns are valid now.
                    self._store_exchange(message.sender, payload)
                elif kind == KIND_DEGREE:
                    self._neighbor_degrees[message.sender] = payload[0]
        else:
            for message in inbox:
                if message.kind == KIND_WALK:
                    source, remaining, half = message.fields
                    sources.append(source)
                    remainings.append(remaining)
                    halves.append(half)
                    counts.append(1)
                elif message.kind == KIND_WALK_BATCH:
                    source, remaining, half, count = message.fields
                    sources.append(source)
                    remainings.append(remaining)
                    halves.append(half)
                    counts.append(count)
                elif message.kind == KIND_TERM:
                    (total,) = message.fields
                    self._death_counter.receive_report(message.sender, total)
                elif message.kind == KIND_DONE:
                    (done_round,) = message.fields
        if sources:
            # One grouped call per round: the randomness consumed depends
            # only on the multiset of arrivals, never on message order.
            walks.receive_group_arrays(
                np.array(sources, dtype=np.int64),
                np.array(remainings, dtype=np.int64),
                np.array(halves, dtype=np.int64),
                np.array(counts, dtype=np.int64),
            )
        self._death_counter.record_deaths(walks.deaths - deaths_before)

        if done_round is None and self._death_counter.root_detects_completion:
            # Root: schedule the common phase switch and start the wave.
            done_round = ctx.round_number + self.info.n + 2
        if done_round is not None:
            self._begin_done_wave(ctx, done_round)
            if self._channel is not None:
                # Ship the queued done wave (and any owed acks) now;
                # from next round the exchange handler flushes.
                self._channel.flush(ctx.round_number, ctx.push_message)
            return
        if self._channel is not None:
            self._reliable_counting_sends(ctx)
        else:
            self._counting_sends(ctx)

    def _counting_sends(self, ctx: RoundContext) -> None:
        self._walks.send_round(ctx, instruments=self.config.instruments)
        self._death_counter.maybe_report(ctx)

    def _reliable_counting_sends(self, ctx: RoundContext) -> None:
        """Per-message-loop counting sends under recovery: queue the
        term report, flush the ARQ (retransmissions claim edge slots
        first), then emit fresh walk tokens into what remains."""
        total = self._death_counter.pop_report()
        if total is not None:
            self._channel.queue_latest(
                self._death_counter.parent, KIND_TERM, (total,)
            )
        retransmits = self._channel.flush(ctx.round_number, ctx.push_message)
        budgets = {
            neighbor: self.config.walk_budget - retransmits.get(neighbor, 0)
            for neighbor in self.neighbors
        }
        self._walks.send_round(
            ctx, self._channel, budgets,
            instruments=self.config.instruments,
        )

    def _store_exchange(self, sender: int, payload: tuple[int, ...]) -> None:
        """Fold one fresh (deduplicated) exchange column from a
        neighbor; reliable mode only."""
        source, count_a, count_b = payload
        slab = self._neighbor_counts[sender]
        slab[0, source] = count_a
        slab[1, source] = count_b
        self._xch_received[sender] += 1

    def _begin_done_wave(self, ctx: RoundContext, done_round: int) -> None:
        self._exchange_start = done_round
        self._death_counter.stop()
        if self._walks.held_walks:
            raise ProtocolError(
                f"node {self.node_id} still holds walks at the done wave; "
                "termination detection is broken"
            )
        if self._channel is not None:
            # Under loss the tree is not a safe broadcast overlay (an
            # adopt may still be in flight), so the done wave floods
            # over every edge; duplicates are cheap and dedup is free.
            for neighbor in self.neighbors:
                self._channel.queue_latest(neighbor, KIND_DONE, (done_round,))
            if self._engine is not None:
                # The engine owns this node's flush for the transition
                # round (its per-node call already happened).
                self._engine.note_transition(self.node_id)
        else:
            for child in self._tree.children:
                ctx.send(child, KIND_DONE, done_round)
        self.phase = PHASE_EXCHANGE
        self.exchange_start_round = done_round
        shared = getattr(ctx, "shared", None)
        if shared is not None and self._channel is not None:
            # Reliable mode: the exchange is self-paced, one step every
            # round from the next one on.  When this transition fired
            # inside the engine's end-of-round pass (the root's
            # detection) the scheduler saw no step to query, so file an
            # ASAP wake (target 0 clamps to the next round).  Redundant
            # after a normal mail-driven step; the scheduler dedups.
            shared.request_wake(self.node_id, 0)
        elif shared is not None:
            if self._engine is not None and shared.fault_runtime is None:
                # Fault-free fast path: hand the whole exchange phase to
                # the shared driver.  It broadcasts every node's columns
                # as one aggregate push per round (byte-identical
                # traffic) and runs the final local computation directly
                # on the engine's count tensor.
                from repro.core.exchange_engine import ExchangeEngine

                xch = shared.slots.get("exchange_engine")
                if xch is None:
                    xch = ExchangeEngine(
                        self.info.n, done_round, self._engine
                    )
                    shared.slots["exchange_engine"] = xch
                    shared.register_driver(xch)
                xch.register(self)
                self._xch_engine = xch
            else:
                # No driver: this transition may have happened inside
                # the engine's end-of-round pass (the root's detection),
                # where the scheduler cannot observe the phase change -
                # file the calendar wake for the first exchange round
                # explicitly.  Redundant with the post-step next_wake
                # query when the transition happened in a normal step;
                # the scheduler dedups.
                shared.request_wake(self.node_id, done_round)

    # ------------------------------------------------------------------
    # Phase 3: exchange (Algorithm 2) + local computation
    # ------------------------------------------------------------------
    def _exchange_round(
        self,
        ctx: RoundContext,
        inbox: list[Message],
        bulk: BulkInbox | None = None,
    ) -> None:
        if self._channel is not None:
            self._exchange_round_reliable(ctx, inbox)
            return
        n = self.info.n
        r = ctx.round_number
        for message in inbox:
            if message.kind == KIND_EXCHANGE:
                source, count_a, count_b = message.fields
                self._neighbor_counts[message.sender][0, source] = count_a
                self._neighbor_counts[message.sender][1, source] = count_b
            elif message.kind in (KIND_TERM, KIND_DONE):
                continue  # stragglers from the counting phase
            elif message.kind in (KIND_WALK, KIND_WALK_BATCH):
                raise ProtocolError(
                    "walk message arrived during exchange at node "
                    f"{self.node_id}: termination detection is broken"
                )
        if bulk:
            if KIND_WALK in bulk or KIND_WALK_BATCH in bulk:
                raise ProtocolError(
                    "walk message arrived during exchange at node "
                    f"{self.node_id}: termination detection is broken"
                )
            exchange = bulk.get(KIND_EXCHANGE)
            if exchange is not None:
                rows = np.searchsorted(
                    self._neighbor_index, exchange.senders
                )
                source_column = exchange.fields[:, 0]
                self._neighbor_matrix[rows, 0, source_column] = (
                    exchange.fields[:, 1]
                )
                self._neighbor_matrix[rows, 1, source_column] = (
                    exchange.fields[:, 2]
                )
        if self._xch_engine is not None:
            # The shared driver broadcasts this node's columns and calls
            # ``_finish``; this step only happened because of straggler
            # control mail, and sending here would double the traffic.
            return
        start = self._exchange_start
        if start <= r < start + n:
            source = r - start
            count_a = int(self._walks.half_counts[0, source])
            count_b = int(self._walks.half_counts[1, source])
            bulk_outbox = getattr(ctx, "bulk", None)
            if bulk_outbox is not None:
                # Same broadcast, shipped as one aggregate push.  The
                # receivers are exactly this node's neighbors, so the
                # send_bulk adjacency check would be redundant.
                fields = np.empty((self.degree, 3), dtype=np.int64)
                fields[:, 0] = source
                fields[:, 1] = count_a
                fields[:, 2] = count_b
                bulk_outbox.push(
                    self.node_id, KIND_EXCHANGE, self._neighbor_index, fields
                )
            else:
                ctx.broadcast(KIND_EXCHANGE, source, count_a, count_b)
        elif r >= start + n:
            self._finish(r)

    def _exchange_round_reliable(
        self, ctx: RoundContext, inbox: list[Message]
    ) -> None:
        """Self-paced exchange under recovery (Algorithm 2, lossy form).

        The fault-free protocol synchronizes subrounds by the calendar
        (column ``i`` travels in round ``R_end + i``); loss breaks any
        fixed schedule, so instead each node ships its next unsent
        count column every round through the ARQ and finishes when all
        ``n`` columns are sent *and acked*, all ``n`` columns have
        arrived from every neighbor, every neighbor degree is known,
        and the channel is drained.  Fault-free this sends exactly the
        same n columns in the same n rounds as the calendar schedule.
        """
        n = self.info.n
        r = ctx.round_number
        for message in inbox:
            kind = message.kind
            if kind == KIND_ACK:
                self._channel.receive(message)
                continue
            payload = self._channel.receive(message)
            if payload is None:
                continue
            if kind == KIND_EXCHANGE:
                self._store_exchange(message.sender, payload)
            elif kind == KIND_TERM:
                # A child's report whose first copy was lost; fold it
                # in (monotone) so the ack stops its retransmission.
                self._death_counter.receive_report(message.sender, payload[0])
            elif kind == KIND_DONE:
                pass  # the done wave floods every edge; we already know
            elif kind == KIND_DEGREE:
                self._neighbor_degrees[message.sender] = payload[0]
            elif kind in (KIND_WALK, KIND_WALK_BATCH):
                raise ProtocolError(
                    "fresh walk token arrived during exchange at node "
                    f"{self.node_id}: recovery lost a death"
                )
        if self._next_column < n:
            source = self._next_column
            count_a = int(self._walks.half_counts[0, source])
            count_b = int(self._walks.half_counts[1, source])
            for neighbor in self.neighbors:
                self._channel.queue(
                    neighbor, KIND_EXCHANGE, (source, count_a, count_b)
                )
            self._next_column += 1
        self._channel.flush(r, ctx.push_message)
        if (
            self._next_column >= n
            and len(self._neighbor_degrees) == self.degree
            and all(self._xch_received[v] >= n for v in self.neighbors)
            and self._channel.drained
        ):
            self._finish(r)

    def _finish(self, round_number: int) -> None:
        n = self.info.n
        self.counts = self._walks.counts.copy()
        own_potential = self.counts / self.degree
        neighbor_potentials = (
            self._neighbor_counts[neighbor].sum(axis=0)
            / self._neighbor_degrees[neighbor]
            for neighbor in self.neighbors
        )
        raw = node_raw_flow(own_potential, neighbor_potentials, self.node_id)
        # Free by-product of the exchange: each incident edge's
        # current-flow betweenness, estimated from the same potentials
        # (sum over all pairs; no exclusion - edges have no Eq. 7 term).
        from repro.core.flow_math import pair_sum_all

        pairs = 0.5 * n * (n - 1)
        for neighbor in self.neighbors:
            w = (
                own_potential
                - self._neighbor_counts[neighbor].sum(axis=0)
                / self._neighbor_degrees[neighbor]
            )
            self.edge_betweenness[neighbor] = pair_sum_all(w) / (
                pairs * self.config.walks_per_source
            )
        self.betweenness = betweenness_from_raw_flow(
            raw,
            n,
            scale=float(self.config.walks_per_source),
            include_endpoints=self.config.include_endpoints,
            normalized=self.config.normalized,
        )
        if self.config.split_sampling:
            self._finish_split(raw, n)
        self.finish_round = round_number
        self.phase = PHASE_DONE
        self.halt()

    def _finish_split(self, raw_signal: float, n: int) -> None:
        """Noise-floor correction (repro.core.bias, distributed form).

        The antithetic combination ``(A - B) / 2`` of the two walk
        halves is distributed exactly like the estimator noise of
        ``(A + B) / 2`` under a zero true difference, so its pair-sum
        measures the bias floor of the plain estimate.
        """
        own_noise = (
            self._walks.half_counts[0] - self._walks.half_counts[1]
        ) / (2.0 * self.degree)
        half_k = self.config.walks_per_source // 2
        neighbor_noise = (
            (
                self._neighbor_counts[neighbor][0]
                - self._neighbor_counts[neighbor][1]
            )
            / (2.0 * self._neighbor_degrees[neighbor])
            for neighbor in self.neighbors
        )
        raw_noise = node_raw_flow(own_noise, neighbor_noise, self.node_id)
        # The plain estimate uses scale K on summed counts; the noise
        # pair-sum is built from half-count differences at scale K/2.
        floor = betweenness_from_raw_flow(
            raw_noise,
            n,
            scale=float(half_k),
            include_endpoints=False,
            normalized=False,
        )
        if self.config.normalized:
            pairs = (
                0.5 * n * (n - 1)
                if self.config.include_endpoints
                else 0.5 * (n - 1) * (n - 2)
            )
            floor /= pairs
        self.noise_floor = floor
        self.betweenness_debiased = self.betweenness - floor


def make_protocol_factory(config: ProtocolConfig):
    """Program factory binding one :class:`ProtocolConfig`."""

    def factory(info: NodeInfo, rng: np.random.Generator) -> RWBCNodeProgram:
        return RWBCNodeProgram(info, rng, config)

    return factory
