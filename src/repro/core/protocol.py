"""The full distributed RWBC protocol as one phased CONGEST node program.

Timeline (rounds; ``n``, ``K``, ``l`` are common knowledge per the
paper's Algorithm 1 input):

=================  ========================================================
rounds             phase
=================  ========================================================
0 .. n             SETUP: flood-max leader election + BFS tree; the leader
                   (a uniformly random node, since ranks are uniform) *is*
                   the absorbing target ``t`` - implementing Algorithm 1
                   line 2.  Round ``n`` announces parents.
n + 1              tree finalized; nodes exchange degrees with neighbors
                   (Algorithm 2 line 1 divides neighbor counts by
                   *neighbor* degrees).
n + 2              COUNTING starts: launch ``K`` walks per node
                   (Algorithm 1 line 3) and begin walk forwarding.
n + 2 .. R_end     COUNTING (Algorithm 1 lines 4-17): walk messages under
                   the transport policy, plus the monotone death-counter
                   convergecast.  When the root's counter reaches
                   ``(n - 1) K`` it floods ``done(R_end)`` with
                   ``R_end = detection + n + 2``, a common round safely
                   after the wave reaches everyone.
R_end .. R_end+n   EXCHANGE (Algorithm 2 line 2): in subround ``i`` every
                   node sends its count for source ``i`` to all neighbors.
R_end + n          local computation (Algorithm 2 lines 3-4) and halt.
=================  ========================================================

Node labels must be exactly ``0 .. n-1`` (the estimator relabels
arbitrary graphs first); source ids double as count-vector indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.congest.node import (
    NodeInfo,
    RoundContext,
    VectorizedProgram,
)
from repro.congest.primitives.flood import FloodMaxBFS, FloodMaxState

if TYPE_CHECKING:  # pragma: no cover
    from repro.congest.node import BulkRoundContext
    from repro.congest.transport import BulkInbox
from repro.core.flow_math import betweenness_from_raw_flow, node_raw_flow
from repro.core.termination import KIND_DONE, KIND_TERM, DeathCounterLogic
from repro.core.walk_engine import CountingWalkEngine
from repro.core.walk_manager import (
    KIND_WALK,
    KIND_WALK_BATCH,
    TransportPolicy,
    WalkManager,
)

KIND_DEGREE = "deg"
KIND_EXCHANGE = "xch"

PHASE_SETUP = "setup"
PHASE_COUNTING = "counting"
PHASE_EXCHANGE = "exchange"
PHASE_DONE = "done"


@dataclass(frozen=True)
class ProtocolConfig:
    """Distributed-run parameters shared by every node.

    Attributes
    ----------
    length, walks_per_source:
        The paper's ``l`` and ``K`` (Theorems 1 and 3).
    policy:
        Walk transport policy (see :mod:`repro.core.walk_manager`).
    walk_budget:
        Walk messages allowed per directed edge per round.
    count_initial:
        Count the launch position as a visit (Eq. 3's ``r = 0`` term).
    include_endpoints, normalized:
        Output convention (Newman defaults).
    survival_alpha:
        ``None`` runs the paper's absorbing-walk algorithm (RWBC).  A
        value in (0, 1) runs the damped alpha-CFBC variant of section
        II-C instead: no absorbing target, every hop survives with
        probability alpha, and the output estimates the
        alpha-current-flow betweenness.  Expected walk length drops to
        ``1/(1 - alpha)``, which is where the section's
        ``O(log n / (1 - alpha))`` round claim comes from.
    split_sampling:
        Tag each walk with a half-bit and carry two counts per source in
        the exchange phase, enabling the noise-floor bias correction of
        the E15 experiment (see :mod:`repro.core.bias`).  Costs one bit
        per walk token and one extra integer per exchange message - both
        still ``O(log n)``.  Requires even ``walks_per_source``.  Nodes
        then also expose ``betweenness_debiased`` and ``noise_floor``.
    """

    length: int
    walks_per_source: int
    policy: TransportPolicy = TransportPolicy.QUEUE
    walk_budget: int = 2
    count_initial: bool = True
    include_endpoints: bool = True
    normalized: bool = True
    survival_alpha: float | None = None
    split_sampling: bool = False

    def __post_init__(self) -> None:
        if self.length < 1:
            raise ProtocolError("length must be >= 1")
        if self.walks_per_source < 1:
            raise ProtocolError("walks_per_source must be >= 1")
        if self.walk_budget < 1:
            raise ProtocolError("walk_budget must be >= 1")
        if self.survival_alpha is not None and not (
            0.0 < self.survival_alpha < 1.0
        ):
            raise ProtocolError("survival_alpha must be in (0, 1)")
        if self.split_sampling and self.walks_per_source % 2 != 0:
            raise ProtocolError(
                "split_sampling requires an even walks_per_source"
            )

    @property
    def launching_nodes(self) -> str:
        """Documentation helper: who launches walks in this mode."""
        return "all nodes" if self.survival_alpha is not None else "all but t"


class RWBCNodeProgram(VectorizedProgram):
    """One node of the distributed RWBC algorithm.

    Outputs after the run: ``betweenness`` (this node's estimate),
    ``counts`` (its ``xi`` vector), ``target`` (the elected absorbing
    node), and the phase-boundary rounds ``counting_start_round`` /
    ``exchange_start_round`` / ``finish_round`` for the complexity
    experiments.

    The program is a :class:`VectorizedProgram`: walk and exchange
    traffic can travel as aggregate per-edge counts on the scheduler's
    fast path.  Both paths funnel each round's walk arrivals through one
    grouped :meth:`WalkManager.receive_group_arrays` call, so the random
    stream - and therefore every tally and every message count - is
    identical for the same seed.
    """

    def __init__(
        self, info: NodeInfo, rng: np.random.Generator, config: ProtocolConfig
    ) -> None:
        super().__init__(info, rng)
        if not 0 <= info.node_id < info.n:
            raise ProtocolError(
                f"protocol requires labels 0..n-1, got {info.node_id}"
            )
        self.config = config
        self.phase = PHASE_SETUP
        rank = int(rng.integers(0, max(2, info.n) ** 3))
        self._flood = FloodMaxBFS(info.node_id, rank)
        self._tree: FloodMaxState | None = None
        self._walks: WalkManager | None = None
        self._death_counter: DeathCounterLogic | None = None
        # Fast path only: the shared network-wide counting engine.
        self._engine: CountingWalkEngine | None = None
        self._neighbor_degrees: dict[int, int] = {}
        # One (2, n) half-count slab per neighbor, backed by a single
        # (degree, 2, n) matrix so the fast path can scatter a whole
        # round's exchange arrivals in one vectorized store.  The dict
        # values are views into the matrix - both access paths see the
        # same data.
        self._neighbor_index = np.array(info.neighbors, dtype=np.int64)
        self._neighbor_matrix = np.zeros(
            (info.degree, 2, info.n), dtype=np.int64
        )
        self._neighbor_counts: dict[int, np.ndarray] = {
            neighbor: self._neighbor_matrix[j]
            for j, neighbor in enumerate(info.neighbors)
        }
        self._exchange_start: int | None = None
        # Outputs.
        self.betweenness: float | None = None
        self.betweenness_debiased: float | None = None
        self.noise_floor: float | None = None
        self.edge_betweenness: dict[int, float] = {}
        self.counts: np.ndarray | None = None
        self.target: int | None = None
        self.counting_start_round: int | None = None
        self.exchange_start_round: int | None = None
        self.finish_round: int | None = None

    # ------------------------------------------------------------------
    # Round dispatch
    # ------------------------------------------------------------------
    def on_start(self, ctx: RoundContext) -> None:
        self._flood.start(ctx)

    def on_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        if self.phase == PHASE_SETUP:
            self._setup_round(ctx, inbox)
        elif self.phase == PHASE_COUNTING:
            self._counting_round(ctx, inbox)
        elif self.phase == PHASE_EXCHANGE:
            self._exchange_round(ctx, inbox)
        else:  # PHASE_DONE: ignore stragglers (none are expected).
            self.halt()

    def on_bulk_round(
        self,
        ctx: BulkRoundContext,
        inbox: list[Message],
        bulk: BulkInbox | None,
    ) -> None:
        if self.phase == PHASE_SETUP:
            # Setup traffic (flood-max, degrees) is lightweight control
            # traffic; it stays per-message on both paths.
            self._setup_round(ctx, inbox)
        elif self.phase == PHASE_COUNTING:
            self._counting_round_engine(ctx, inbox)
        elif self.phase == PHASE_EXCHANGE:
            self._exchange_round(ctx, inbox, bulk)
        else:
            self.halt()

    @property
    def bulk_idle(self) -> bool:
        """Skippable on the fast path: during counting, all walk
        movement and termination reporting runs inside the shared
        :class:`CountingWalkEngine`, so a node only needs a round of its
        own when control mail (term/done) arrives.  Setup and exchange
        rounds are round-number driven, so the node must run every one
        of them."""
        return self.phase == PHASE_COUNTING

    # ------------------------------------------------------------------
    # Phase 1: setup (leader election, tree, degrees)
    # ------------------------------------------------------------------
    def _setup_round(self, ctx: RoundContext, inbox: list[Message]) -> None:
        n = self.info.n
        r = ctx.round_number
        if r <= n:
            self._flood.step(ctx, inbox)
            if r == n:
                self._flood.announce_parent(ctx)
            return
        if r == n + 1:
            self._tree = self._flood.finish(inbox)
            self.target = self._tree.leader_id
            ctx.broadcast(KIND_DEGREE, self.degree)
            return
        # r == n + 2: learn neighbor degrees, launch walks, start counting.
        for message in inbox:
            if message.kind == KIND_DEGREE:
                (degree,) = message.fields
                self._neighbor_degrees[message.sender] = degree
        if len(self._neighbor_degrees) != self.degree:
            raise ProtocolError(
                f"node {self.node_id}: expected {self.degree} degree "
                f"reports, got {len(self._neighbor_degrees)}"
            )
        self._walks = WalkManager(
            node_id=self.node_id,
            neighbors=self.neighbors,
            n=n,
            target=self.target,
            walks_per_source=self.config.walks_per_source,
            length=self.config.length,
            rng=self.rng,
            policy=self.config.policy,
            walk_budget=self.config.walk_budget,
            count_initial=self.config.count_initial,
            survival_alpha=self.config.survival_alpha,
            split_sampling=self.config.split_sampling,
        )
        # In damped mode every node launches K walks; in absorbing mode
        # the target sits out (its walks would die at birth).
        launchers = n if self.config.survival_alpha is not None else n - 1
        self._death_counter = DeathCounterLogic(
            node_id=self.node_id,
            parent=self._tree.parent,
            children=self._tree.children,
            expected_total=launchers * self.config.walks_per_source,
        )
        shared = getattr(ctx, "shared", None)
        if shared is not None:
            # Fast path: join (or create) the network-wide engine.  This
            # must precede launch() so the launch visits land in the
            # engine's global count tensor.
            engine = shared.slots.get("walk_engine")
            if engine is None:
                engine = CountingWalkEngine(n)
                shared.slots["walk_engine"] = engine
                shared.register_driver(engine)
            engine.register(self, self._walks, self._death_counter, ctx)
            self._engine = engine
        self.phase = PHASE_COUNTING
        self.counting_start_round = r
        self._walks.launch()
        self._death_counter.record_deaths(self._collect_immediate_deaths())
        if self._engine is not None:
            # The engine adopts the launch queues at end of this round
            # and performs the sends (walks and initial term report).
            self._engine.touch(self.node_id)
        else:
            self._counting_sends(ctx)

    def _collect_immediate_deaths(self) -> int:
        """Deaths at launch time: none with length >= 1 (enforced), but
        kept explicit so the accounting is visibly complete."""
        return 0

    # ------------------------------------------------------------------
    # Phase 2: counting (Algorithm 1)
    # ------------------------------------------------------------------
    def _counting_round_engine(
        self, ctx: BulkRoundContext, inbox: list[Message]
    ) -> None:
        """Fast-path counting round: only control mail reaches the node
        (walk traffic is claimed by the engine), so this just folds in
        term reports, reacts to the done wave, and tells the engine the
        node was active so the post-round pass re-examines its
        reporting state."""
        done_round: int | None = None
        for message in inbox:
            if message.kind == KIND_TERM:
                (total,) = message.fields
                self._death_counter.receive_report(message.sender, total)
            elif message.kind == KIND_DONE:
                (done_round,) = message.fields
        if done_round is not None:
            self._begin_done_wave(ctx, done_round)
            return
        self._engine.touch(self.node_id)

    def _counting_round(
        self, ctx: RoundContext, inbox: list[Message]
    ) -> None:
        walks = self._walks
        deaths_before = walks.deaths
        done_round: int | None = None
        sources: list[int] = []
        remainings: list[int] = []
        halves: list[int] = []
        counts: list[int] = []
        for message in inbox:
            if message.kind == KIND_WALK:
                source, remaining, half = message.fields
                sources.append(source)
                remainings.append(remaining)
                halves.append(half)
                counts.append(1)
            elif message.kind == KIND_WALK_BATCH:
                source, remaining, half, count = message.fields
                sources.append(source)
                remainings.append(remaining)
                halves.append(half)
                counts.append(count)
            elif message.kind == KIND_TERM:
                (total,) = message.fields
                self._death_counter.receive_report(message.sender, total)
            elif message.kind == KIND_DONE:
                (done_round,) = message.fields
        if sources:
            # One grouped call per round: the randomness consumed depends
            # only on the multiset of arrivals, never on message order.
            walks.receive_group_arrays(
                np.array(sources, dtype=np.int64),
                np.array(remainings, dtype=np.int64),
                np.array(halves, dtype=np.int64),
                np.array(counts, dtype=np.int64),
            )
        self._death_counter.record_deaths(walks.deaths - deaths_before)

        if done_round is None and self._death_counter.root_detects_completion:
            # Root: schedule the common phase switch and start the wave.
            done_round = ctx.round_number + self.info.n + 2
        if done_round is not None:
            self._begin_done_wave(ctx, done_round)
            return
        self._counting_sends(ctx)

    def _counting_sends(self, ctx: RoundContext) -> None:
        self._walks.send_round(ctx)
        self._death_counter.maybe_report(ctx)

    def _begin_done_wave(self, ctx: RoundContext, done_round: int) -> None:
        self._exchange_start = done_round
        self._death_counter.stop()
        if self._walks.held_walks:
            raise ProtocolError(
                f"node {self.node_id} still holds walks at the done wave; "
                "termination detection is broken"
            )
        for child in self._tree.children:
            ctx.send(child, KIND_DONE, done_round)
        self.phase = PHASE_EXCHANGE
        self.exchange_start_round = done_round

    # ------------------------------------------------------------------
    # Phase 3: exchange (Algorithm 2) + local computation
    # ------------------------------------------------------------------
    def _exchange_round(
        self,
        ctx: RoundContext,
        inbox: list[Message],
        bulk: BulkInbox | None = None,
    ) -> None:
        n = self.info.n
        r = ctx.round_number
        for message in inbox:
            if message.kind == KIND_EXCHANGE:
                source, count_a, count_b = message.fields
                self._neighbor_counts[message.sender][0, source] = count_a
                self._neighbor_counts[message.sender][1, source] = count_b
            elif message.kind in (KIND_TERM, KIND_DONE):
                continue  # stragglers from the counting phase
            elif message.kind in (KIND_WALK, KIND_WALK_BATCH):
                raise ProtocolError(
                    "walk message arrived during exchange at node "
                    f"{self.node_id}: termination detection is broken"
                )
        if bulk:
            if KIND_WALK in bulk or KIND_WALK_BATCH in bulk:
                raise ProtocolError(
                    "walk message arrived during exchange at node "
                    f"{self.node_id}: termination detection is broken"
                )
            exchange = bulk.get(KIND_EXCHANGE)
            if exchange is not None:
                rows = np.searchsorted(
                    self._neighbor_index, exchange.senders
                )
                source_column = exchange.fields[:, 0]
                self._neighbor_matrix[rows, 0, source_column] = (
                    exchange.fields[:, 1]
                )
                self._neighbor_matrix[rows, 1, source_column] = (
                    exchange.fields[:, 2]
                )
        start = self._exchange_start
        if start <= r < start + n:
            source = r - start
            count_a = int(self._walks.half_counts[0, source])
            count_b = int(self._walks.half_counts[1, source])
            bulk_outbox = getattr(ctx, "bulk", None)
            if bulk_outbox is not None:
                # Same broadcast, shipped as one aggregate push.  The
                # receivers are exactly this node's neighbors, so the
                # send_bulk adjacency check would be redundant.
                fields = np.empty((self.degree, 3), dtype=np.int64)
                fields[:, 0] = source
                fields[:, 1] = count_a
                fields[:, 2] = count_b
                bulk_outbox.push(
                    self.node_id, KIND_EXCHANGE, self._neighbor_index, fields
                )
            else:
                ctx.broadcast(KIND_EXCHANGE, source, count_a, count_b)
        elif r >= start + n:
            self._finish(r)

    def _finish(self, round_number: int) -> None:
        n = self.info.n
        self.counts = self._walks.counts.copy()
        own_potential = self.counts / self.degree
        neighbor_potentials = (
            self._neighbor_counts[neighbor].sum(axis=0)
            / self._neighbor_degrees[neighbor]
            for neighbor in self.neighbors
        )
        raw = node_raw_flow(own_potential, neighbor_potentials, self.node_id)
        # Free by-product of the exchange: each incident edge's
        # current-flow betweenness, estimated from the same potentials
        # (sum over all pairs; no exclusion - edges have no Eq. 7 term).
        from repro.core.flow_math import pair_sum_all

        pairs = 0.5 * n * (n - 1)
        for neighbor in self.neighbors:
            w = (
                own_potential
                - self._neighbor_counts[neighbor].sum(axis=0)
                / self._neighbor_degrees[neighbor]
            )
            self.edge_betweenness[neighbor] = pair_sum_all(w) / (
                pairs * self.config.walks_per_source
            )
        self.betweenness = betweenness_from_raw_flow(
            raw,
            n,
            scale=float(self.config.walks_per_source),
            include_endpoints=self.config.include_endpoints,
            normalized=self.config.normalized,
        )
        if self.config.split_sampling:
            self._finish_split(raw, n)
        self.finish_round = round_number
        self.phase = PHASE_DONE
        self.halt()

    def _finish_split(self, raw_signal: float, n: int) -> None:
        """Noise-floor correction (repro.core.bias, distributed form).

        The antithetic combination ``(A - B) / 2`` of the two walk
        halves is distributed exactly like the estimator noise of
        ``(A + B) / 2`` under a zero true difference, so its pair-sum
        measures the bias floor of the plain estimate.
        """
        own_noise = (
            self._walks.half_counts[0] - self._walks.half_counts[1]
        ) / (2.0 * self.degree)
        half_k = self.config.walks_per_source // 2
        neighbor_noise = (
            (
                self._neighbor_counts[neighbor][0]
                - self._neighbor_counts[neighbor][1]
            )
            / (2.0 * self._neighbor_degrees[neighbor])
            for neighbor in self.neighbors
        )
        raw_noise = node_raw_flow(own_noise, neighbor_noise, self.node_id)
        # The plain estimate uses scale K on summed counts; the noise
        # pair-sum is built from half-count differences at scale K/2.
        floor = betweenness_from_raw_flow(
            raw_noise,
            n,
            scale=float(half_k),
            include_endpoints=False,
            normalized=False,
        )
        if self.config.normalized:
            pairs = (
                0.5 * n * (n - 1)
                if self.config.include_endpoints
                else 0.5 * (n - 1) * (n - 2)
            )
            floor /= pairs
        self.noise_floor = floor
        self.betweenness_debiased = self.betweenness - floor


def make_protocol_factory(config: ProtocolConfig):
    """Program factory binding one :class:`ProtocolConfig`."""

    def factory(info: NodeInfo, rng: np.random.Generator) -> RWBCNodeProgram:
        return RWBCNodeProgram(info, rng, config)

    return factory
