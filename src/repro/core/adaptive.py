"""Adaptive Monte-Carlo estimation: spend walks until values settle.

The paper's fixed ``K = O(log n)`` schedule is blind to the
instance-dependent constants measured in E4/E10/E15 (visit-count
dispersion, absolute-value bias).  This estimator runs the counting
process in doubling batches and stops when successive pooled estimates
agree to a caller-chosen tolerance - a practical stopping rule that
inherits the engine's semantics exactly (pooled counts over all batches
are one big run).

Note on what "converged" means: the stopping rule tracks the *stability*
of the estimate (variance), not its residual bias; at tight tolerances
both shrink together (bias and noise share the ``1/sqrt(K)`` scale - see
E15), and the split-sample diagnostic of :mod:`repro.core.bias` remains
the tool for quantifying bias explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.montecarlo import betweenness_from_counts
from repro.core.parameters import default_length
from repro.graphs.graph import Graph, GraphError
from repro.walks.simulate import simulate_walk_counts


@dataclass(frozen=True)
class AdaptiveResult:
    """Outcome of one adaptive run."""

    betweenness: dict
    walks_per_source: int
    converged: bool
    iterations: int
    history: tuple[float, ...]  # max relative change per doubling


def adaptive_montecarlo(
    graph: Graph,
    target=None,
    tolerance: float = 0.05,
    initial_walks: int = 8,
    max_walks: int = 4096,
    length: int | None = None,
    seed: int | None = None,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> AdaptiveResult:
    """Estimate RWBC with walk doubling until estimates stabilize.

    Stops when the maximum per-node relative change between successive
    pooled estimates drops below ``tolerance``, or when the per-source
    walk budget reaches ``max_walks`` (then ``converged`` is False).
    """
    if graph.num_nodes < 2:
        raise GraphError("need at least 2 nodes")
    if not 0.0 < tolerance < 1.0:
        raise GraphError("tolerance must be in (0, 1)")
    if initial_walks < 1:
        raise GraphError("initial_walks must be >= 1")
    if max_walks < initial_walks:
        raise GraphError("max_walks must be >= initial_walks")
    rng = np.random.default_rng(seed)
    if target is None:
        order = graph.canonical_order()
        target = order[int(rng.integers(len(order)))]
    if length is None:
        length = default_length(graph.num_nodes)

    n = graph.num_nodes
    pooled = np.zeros((n, n), dtype=np.int64)
    total_walks = 0
    batch = initial_walks
    previous: dict | None = None
    history: list[float] = []
    converged = False
    iterations = 0

    while total_walks < max_walks:
        batch = min(batch, max_walks - total_walks)
        result = simulate_walk_counts(
            graph,
            target,
            length=length,
            walks_per_source=batch,
            seed=rng,
        )
        pooled += result.counts
        total_walks += batch
        iterations += 1
        current = betweenness_from_counts(
            graph,
            pooled,
            total_walks,
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
        if previous is not None:
            change = max(
                abs(current[v] - previous[v]) / max(abs(previous[v]), 1e-12)
                for v in current
            )
            history.append(change)
            if change < tolerance:
                converged = True
                previous = current
                break
        previous = current
        batch = total_walks  # double the pool each iteration

    return AdaptiveResult(
        betweenness=previous,
        walks_per_source=total_walks,
        converged=converged,
        iterations=iterations,
        history=tuple(history),
    )
