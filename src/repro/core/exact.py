"""Exact random walk betweenness (Newman 2005; paper section IV).

Two independent implementations:

* :func:`rwbc_exact_pairs` - the literal Eq. 5-8 triple loop over pairs,
  ``O(n^2 m)`` after the ``O(n^3)`` matrix inverse.  Slow and transparent;
  the reference the rest of the library is validated against.
* :func:`rwbc_exact` - the production solver: one grounded inverse, then
  the ``O(m n log n)`` sorted pair-sum accumulation shared with the
  estimators (see :mod:`repro.core.flow_math`).

Both accept any absorbing ``target`` and a test asserts the result is
target-invariant - the formal justification for the paper's single-target
trick (potential *differences* do not depend on which Laplacian row/column
is grounded).
"""

from __future__ import annotations

import numpy as np

from repro.core.flow_math import (
    betweenness_from_raw_flow,
    node_raw_flow,
)
from repro.graphs.graph import Graph, GraphError
from repro.walks.absorbing import grounded_inverse


def _resolve_target(graph: Graph, target):
    if target is None:
        return graph.canonical_order()[0]
    if not graph.has_node(target):
        raise GraphError(f"target {target!r} not in graph")
    return target


def rwbc_exact(
    graph: Graph,
    target=None,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> dict:
    """Exact RWBC of every node, keyed by node label.

    Parameters
    ----------
    graph:
        Connected graph with at least 2 nodes.
    target:
        The grounded/absorbing node; the result does not depend on the
        choice (defaults to the first canonical node).
    include_endpoints, normalized:
        Convention switches; the defaults give Newman's Eq. 8 values.
        ``include_endpoints=False`` matches networkx's convention.
    """
    target = _resolve_target(graph, target)
    potentials = grounded_inverse(graph, target)
    order = graph.canonical_order()
    n = graph.num_nodes
    result = {}
    for i, node in enumerate(order):
        neighbor_rows = (
            potentials[graph.index_of(neighbor)]
            for neighbor in graph.neighbors(node)
        )
        raw = node_raw_flow(potentials[i], neighbor_rows, i)
        result[node] = betweenness_from_raw_flow(
            raw,
            n,
            scale=1.0,
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
    return result


def rwbc_exact_array(
    graph: Graph,
    target=None,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> np.ndarray:
    """:func:`rwbc_exact` as an array in canonical node order."""
    values = rwbc_exact(graph, target, include_endpoints, normalized)
    return np.array([values[node] for node in graph.canonical_order()])


def rwbc_exact_pairs(
    graph: Graph,
    target=None,
    include_endpoints: bool = True,
    normalized: bool = True,
) -> dict:
    """Reference implementation: explicit sum over all (s, t) pairs.

    Follows Eqs. 5-8 verbatim; kept deliberately independent of the
    sorted-accumulation path so the two can cross-check each other.
    """
    target = _resolve_target(graph, target)
    t_matrix = grounded_inverse(graph, target)
    order = graph.canonical_order()
    n = graph.num_nodes
    index = {node: i for i, node in enumerate(order)}
    raw = np.zeros(n)

    for s in range(n):
        for t in range(s + 1, n):
            for node in order:
                i = index[node]
                if i == s or i == t:
                    continue
                # Eq. 6: half the absolute net flow over incident edges.
                flow = 0.0
                v_i = t_matrix[i, s] - t_matrix[i, t]
                for neighbor in graph.neighbors(node):
                    j = index[neighbor]
                    v_j = t_matrix[j, s] - t_matrix[j, t]
                    flow += abs(v_i - v_j)
                raw[i] += 0.5 * flow

    result = {}
    for node in order:
        i = index[node]
        result[node] = betweenness_from_raw_flow(
            raw[i],
            n,
            scale=1.0,
            include_endpoints=include_endpoints,
            normalized=normalized,
        )
    return result
