"""Result records for distributed runs."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.congest.metrics import RunMetrics
from repro.core.parameters import WalkParameters
from repro.graphs.graph import Graph


@dataclass(frozen=True)
class DistributedRWBCResult:
    """Output of one distributed protocol run.

    Attributes
    ----------
    betweenness:
        Node label -> estimated RWBC.
    target:
        The elected absorbing node (in original labels).
    parameters:
        The ``(l, K)`` used.
    metrics:
        Round/message/bit accounting from the simulator.
    phase_rounds:
        Rounds spent in each protocol phase - the observable of the
        Lemma 2 / Lemma 3 / Theorem 5 experiments.
    counts:
        Node label -> its raw ``xi`` count vector (by source id in the
        relabeled 0..n-1 space).
    betweenness_debiased, noise_floor:
        Present only for split-sampling runs: the noise-floor-corrected
        estimates and the measured floor itself (see repro.core.bias).
    edge_betweenness:
        ``(u, v) -> estimated edge current-flow betweenness`` for every
        edge, a free by-product of the exchange phase (each endpoint
        computes it locally; the result averages the two, which are
        equal up to float noise).
    """

    betweenness: dict
    target: object
    parameters: WalkParameters
    metrics: RunMetrics
    phase_rounds: dict[str, int]
    counts: dict
    betweenness_debiased: dict | None = None
    noise_floor: dict | None = None
    edge_betweenness: dict | None = None
    # Full per-round message log (relabeled node ids); populated only
    # when the run was started with record_messages=True.
    message_log: list = None
    # Aggregate ARQ accounting (retransmissions, acks_sent,
    # duplicates_rejected summed over all nodes); None on non-reliable
    # runs.  Injected-fault counts live in metrics.faults.
    recovery: dict | None = None
    # Why the scheduler fell back to per-message dispatch (empty when
    # the vectorized fast path ran).
    fallback_reasons: tuple = ()
    # The repro.obs.Telemetry the run was observed with (spans +
    # instruments), when the caller passed one; None otherwise.  Pure
    # observation - never part of the estimate.
    telemetry: object | None = None

    def as_array(self, graph: Graph) -> np.ndarray:
        """Estimates in the graph's canonical node order."""
        return np.array(
            [self.betweenness[node] for node in graph.canonical_order()]
        )

    @property
    def total_rounds(self) -> int:
        return self.metrics.rounds
