"""Conversions between :class:`repro.graphs.graph.Graph` and networkx.

networkx is used only as an *oracle* (see
:mod:`repro.baselines.networkx_oracle`); all algorithms in this library run
on our own :class:`Graph`.  These converters are the single boundary where
the two representations meet.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.graph import Graph, GraphError


def to_networkx(graph: Graph) -> nx.Graph:
    """Convert to an undirected networkx graph with identical node labels."""
    nx_graph = nx.Graph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


def from_networkx(nx_graph: nx.Graph) -> Graph:
    """Convert from networkx, rejecting directed/multi graphs and self-loops."""
    if nx_graph.is_directed():
        raise GraphError("directed graphs are not supported")
    if nx_graph.is_multigraph():
        raise GraphError("multigraphs are not supported")
    graph = Graph(nodes=nx_graph.nodes())
    for u, v in nx_graph.edges():
        if u == v:
            raise GraphError(f"self-loop at node {u!r} is not supported")
        graph.add_edge(u, v)
    return graph
