"""The paper's lower-bound graph construction (section VIII, Figs. 2-3).

Given an even ``M`` and two families ``X = {X_1..X_N}``, ``Y = {Y_1..Y_N}``
of size-``M/2`` subsets of ``{0..M-1}``, the construction builds:

* ``2M`` "rail" nodes ``L_0..L_{M-1}`` and ``R_0..R_{M-1}`` with an edge
  ``L_i - R_i`` for every ``i``;
* a node ``S_i`` per subset ``X_i``, joined to ``L_j`` for every
  ``j in X_i``;
* a node ``T_i`` per subset ``Y_i``, joined to ``R_j`` for every
  ``j NOT in Y_i`` (the complement trick: ``S_i`` "equals" ``T_j``
  exactly when ``X_i == Y_j`` as encoded sets);
* hub nodes ``A`` (adjacent to ``B`` and to every ``L_j``) and ``B``
  (adjacent to every ``R_j``);
* the probe node ``P``, adjacent to every ``S_i`` and every ``T_i``.

Lemma 4 asserts the random walk betweenness of ``P`` is minimal exactly
when no ``X_i`` equals any ``Y_j`` (i.e. the encoded sets are disjoint).

A note on the cut (measured, not assumed): the paper states the Alice/Bob
cut has ``c_k = M`` edges, but as literally drawn, ``P`` is adjacent to
nodes on both sides, so any bipartition that separates the ``S`` side from
the ``T`` side also cuts either the ``N`` edges ``P - T_i`` or the ``N``
edges ``P - S_i``, plus the ``A - B`` edge - giving ``c_k = M + N + 1``.
We build the graph faithfully and *report* the measured cut; the
discrepancy is recorded in EXPERIMENTS.md (experiment E8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from itertools import combinations

from repro.graphs.graph import Graph, GraphError

SubsetFamily = tuple[frozenset[int], ...]


def _validate_family(
    family: SubsetFamily, m: int, name: str, exact_half: bool
) -> SubsetFamily:
    half = m // 2
    validated = []
    for i, subset in enumerate(family):
        subset = frozenset(subset)
        if exact_half and len(subset) != half:
            raise GraphError(
                f"{name}[{i}] has size {len(subset)}, expected M/2 = {half}"
            )
        if not 1 <= len(subset) <= m - 1:
            raise GraphError(
                f"{name}[{i}] must have between 1 and M-1 elements"
            )
        if not subset <= set(range(m)):
            raise GraphError(f"{name}[{i}] contains elements outside 0..{m - 1}")
        validated.append(subset)
    return tuple(validated)


@dataclass(frozen=True)
class LowerBoundGraph:
    """The constructed graph plus the node-role bookkeeping.

    Attributes
    ----------
    graph:
        The full construction as a :class:`Graph` with integer labels.
    m, n_subsets:
        The construction parameters ``M`` and ``N``.
    x_family, y_family:
        Alice's and Bob's subset families (``Y`` stored as given, before
        complementing).
    """

    graph: Graph
    m: int
    n_subsets: int
    x_family: SubsetFamily
    y_family: SubsetFamily
    _roles: dict[str, int] = field(default_factory=dict, repr=False)

    # -- node accessors -------------------------------------------------
    def l_node(self, j: int) -> int:
        """Label of rail node ``L_j``."""
        self._check_rail(j)
        return j

    def r_node(self, j: int) -> int:
        """Label of rail node ``R_j``."""
        self._check_rail(j)
        return self.m + j

    def s_node(self, i: int) -> int:
        """Label of subset node ``S_i`` (Alice side)."""
        self._check_subset(i)
        return 2 * self.m + i

    def t_node(self, i: int) -> int:
        """Label of subset node ``T_i`` (Bob side)."""
        self._check_subset(i)
        return 2 * self.m + self.n_subsets + i

    @property
    def a_node(self) -> int:
        """Label of hub node ``A``."""
        return 2 * self.m + 2 * self.n_subsets

    @property
    def b_node(self) -> int:
        """Label of hub node ``B``."""
        return 2 * self.m + 2 * self.n_subsets + 1

    @property
    def p_node(self) -> int:
        """Label of the probe node ``P`` whose betweenness encodes DISJ."""
        return 2 * self.m + 2 * self.n_subsets + 2

    def _check_rail(self, j: int) -> None:
        if not 0 <= j < self.m:
            raise GraphError(f"rail index {j} out of range 0..{self.m - 1}")

    def _check_subset(self, i: int) -> None:
        if not 0 <= i < self.n_subsets:
            raise GraphError(
                f"subset index {i} out of range 0..{self.n_subsets - 1}"
            )

    # -- semantics -------------------------------------------------------
    def families_intersect(self) -> bool:
        """True iff some ``X_i`` equals some ``Y_j`` (``X cap Y != emptyset``)."""
        return bool(set(self.x_family) & set(self.y_family))

    def intersection_size(self) -> int:
        """Number of subset values shared between the two families."""
        return len(set(self.x_family) & set(self.y_family))

    def alice_nodes(self, probe_with_alice: bool = True) -> set[int]:
        """Alice's side of the cut: ``{S_i} + L + {A}`` (and ``P`` by default)."""
        side = {self.l_node(j) for j in range(self.m)}
        side |= {self.s_node(i) for i in range(self.n_subsets)}
        side.add(self.a_node)
        if probe_with_alice:
            side.add(self.p_node)
        return side

    def bob_nodes(self, probe_with_alice: bool = True) -> set[int]:
        """Bob's side: the complement of :meth:`alice_nodes`."""
        return set(self.graph.nodes()) - self.alice_nodes(probe_with_alice)

    def cut_edges(self, probe_with_alice: bool = True) -> list[tuple[int, int]]:
        """Edges crossing the Alice/Bob cut, measured from the actual graph."""
        alice = self.alice_nodes(probe_with_alice)
        return [
            (u, v)
            for u, v in self.graph.edges()
            if (u in alice) != (v in alice)
        ]


def required_m(n_subsets: int) -> int:
    """Smallest even ``M`` with ``C(M, M/2) >= N^2``.

    The paper picks ``M = O(log N)`` so each size-``M/2`` subset of ``[M]``
    can encode one of ``N^2`` distinct values.
    """
    if n_subsets < 1:
        raise GraphError("required_m needs n_subsets >= 1")
    m = 2
    while math.comb(m, m // 2) < n_subsets * n_subsets:
        m += 2
    return m


def encode_values_as_subsets(values: list[int], m: int) -> SubsetFamily:
    """Encode integers in ``[0, C(M, M/2))`` as distinct size-``M/2`` subsets.

    Uses the combinatorial number system, so equal values map to equal
    subsets and distinct values to distinct subsets - exactly the property
    the DISJ reduction needs.
    """
    capacity = math.comb(m, m // 2)
    subsets = []
    for value in values:
        if not 0 <= value < capacity:
            raise GraphError(
                f"value {value} out of encodable range 0..{capacity - 1}"
            )
        subsets.append(_unrank_combination(value, m, m // 2))
    return tuple(subsets)


def _unrank_combination(rank: int, m: int, k: int) -> frozenset[int]:
    """The ``rank``-th k-subset of ``{0..m-1}`` in colexicographic order."""
    members = []
    remaining = rank
    for slot in range(k, 0, -1):
        # Largest c with C(c, slot) <= remaining.
        c = slot - 1
        while math.comb(c + 1, slot) <= remaining:
            c += 1
        members.append(c)
        remaining -= math.comb(c, slot)
    return frozenset(members)


def all_half_subsets(m: int) -> list[frozenset[int]]:
    """Every size-``M/2`` subset of ``{0..M-1}`` (small ``M`` only)."""
    return [frozenset(c) for c in combinations(range(m), m // 2)]


def build_lower_bound_graph(
    x_family: SubsetFamily | list[frozenset[int]],
    y_family: SubsetFamily | list[frozenset[int]],
    m: int,
    complement_bob: bool = True,
    exact_half: bool = True,
) -> LowerBoundGraph:
    """Build the Fig. 2 construction from two subset families.

    Parameters
    ----------
    x_family, y_family:
        ``N`` subsets each, of size ``M/2`` drawn from ``{0..M-1}``
        (arbitrary non-trivial sizes with ``exact_half=False``, used for
        the paper's Fig. 3 / Fig. 5 special cases).
    m:
        The rail width ``M`` (must be even, >= 2).
    complement_bob:
        Wire each ``T_i`` to the rails NOT in ``Y_i`` (the paper's
        complement trick).  ``False`` wires ``T_i`` directly to ``Y_i``,
        matching Fig. 3 where ``T_1`` attaches to the single named rail.

    Raises
    ------
    GraphError
        If ``M`` is odd, the families have mismatched sizes, or any subset
        is malformed.
    """
    if m < 2 or m % 2 != 0:
        raise GraphError("M must be an even integer >= 2")
    x_family = _validate_family(tuple(x_family), m, "X", exact_half)
    y_family = _validate_family(tuple(y_family), m, "Y", exact_half)
    if len(x_family) != len(y_family):
        raise GraphError(
            f"family sizes differ: |X| = {len(x_family)}, |Y| = {len(y_family)}"
        )
    if not x_family:
        raise GraphError("families must be non-empty")

    n_subsets = len(x_family)
    construction = LowerBoundGraph(
        graph=Graph(),
        m=m,
        n_subsets=n_subsets,
        x_family=x_family,
        y_family=y_family,
    )
    graph = construction.graph

    # Rails: L_j - R_j.
    for j in range(m):
        graph.add_edge(construction.l_node(j), construction.r_node(j))
    # Hubs: A - B, A - every L, B - every R.
    graph.add_edge(construction.a_node, construction.b_node)
    for j in range(m):
        graph.add_edge(construction.a_node, construction.l_node(j))
        graph.add_edge(construction.b_node, construction.r_node(j))
    # Alice's subset nodes: S_i - L_j for j in X_i.
    for i, subset in enumerate(x_family):
        for j in sorted(subset):
            graph.add_edge(construction.s_node(i), construction.l_node(j))
    # Bob's subset nodes: T_i - R_j for j NOT in Y_i (complement trick),
    # or directly to Y_i's rails in the Fig. 3 special-case wiring.
    for i, subset in enumerate(y_family):
        for j in range(m):
            if (j not in subset) == complement_bob:
                graph.add_edge(construction.t_node(i), construction.r_node(j))
    # The probe node P touches every S_i and T_i.
    for i in range(n_subsets):
        graph.add_edge(construction.p_node, construction.s_node(i))
        graph.add_edge(construction.p_node, construction.t_node(i))

    return construction


def build_from_disjointness_instance(
    alice_values: list[int],
    bob_values: list[int],
    m: int | None = None,
) -> LowerBoundGraph:
    """Build the construction directly from a sparse-DISJ instance.

    ``alice_values`` and ``bob_values`` are the two players' sets of
    integers (paper: ``N`` numbers from ``{1..N^2}``).  ``X cap Y`` is
    non-empty exactly when the value sets intersect.
    """
    if len(alice_values) != len(bob_values):
        raise GraphError("DISJ instance sides must have equal size N")
    n_subsets = len(alice_values)
    if m is None:
        m = required_m(max(n_subsets, 2))
    x_family = encode_values_as_subsets(alice_values, m)
    y_family = encode_values_as_subsets(bob_values, m)
    return build_lower_bound_graph(x_family, y_family, m)
