"""Structural graph properties: connectivity, distances, degrees.

These are the quantities the paper's complexity statements are phrased in
(``n``, ``m``, the diameter ``D``) plus supporting statistics used by the
experiment harness.
"""

from __future__ import annotations

from collections import deque

from repro.graphs.graph import Graph, GraphError, NodeId


def connected_components(graph: Graph) -> list[set[NodeId]]:
    """All connected components, each as a set of nodes."""
    remaining = set(graph.nodes())
    components: list[set[NodeId]] = []
    while remaining:
        start = next(iter(remaining))
        seen = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbor in graph.neighbors(node):
                if neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        components.append(seen)
        remaining -= seen
    return components


def is_connected(graph: Graph) -> bool:
    """True iff the graph has at most one connected component."""
    if graph.num_nodes <= 1:
        return True
    return len(connected_components(graph)) == 1


def bfs_distances(graph: Graph, source: NodeId) -> dict[NodeId, int]:
    """Hop distances from ``source`` to every reachable node."""
    if not graph.has_node(source):
        raise GraphError(f"source {source!r} not in graph")
    distances = {source: 0}
    queue: deque[NodeId] = deque([source])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor not in distances:
                distances[neighbor] = distances[node] + 1
                queue.append(neighbor)
    return distances


def eccentricities(graph: Graph) -> dict[NodeId, int]:
    """Eccentricity of every node.

    Raises
    ------
    GraphError
        If the graph is disconnected (eccentricity is infinite).
    """
    result: dict[NodeId, int] = {}
    n = graph.num_nodes
    for node in graph.nodes():
        distances = bfs_distances(graph, node)
        if len(distances) != n:
            raise GraphError("eccentricities undefined: graph is disconnected")
        result[node] = max(distances.values(), default=0)
    return result


def diameter(graph: Graph) -> int:
    """The diameter ``D``: the largest hop distance between any node pair."""
    if graph.num_nodes == 0:
        raise GraphError("diameter undefined for the empty graph")
    return max(eccentricities(graph).values())


def radius(graph: Graph) -> int:
    """The radius: the smallest eccentricity."""
    if graph.num_nodes == 0:
        raise GraphError("radius undefined for the empty graph")
    return min(eccentricities(graph).values())


def degree_histogram(graph: Graph) -> dict[int, int]:
    """Mapping ``degree -> number of nodes with that degree``."""
    histogram: dict[int, int] = {}
    for node in graph.nodes():
        d = graph.degree(node)
        histogram[d] = histogram.get(d, 0) + 1
    return histogram


def average_degree(graph: Graph) -> float:
    """Mean degree, ``2m / n``."""
    if graph.num_nodes == 0:
        raise GraphError("average degree undefined for the empty graph")
    return 2.0 * graph.num_edges / graph.num_nodes


def density(graph: Graph) -> float:
    """Edge density ``m / C(n, 2)``."""
    n = graph.num_nodes
    if n < 2:
        return 0.0
    return graph.num_edges / (n * (n - 1) / 2.0)


def is_bipartite(graph: Graph) -> bool:
    """Two-colorability check via BFS.

    Bipartite graphs make the simple-random-walk chain periodic, which is
    worth flagging in workloads even though absorbing-walk quantities stay
    well defined.
    """
    color: dict[NodeId, int] = {}
    for start in graph.nodes():
        if start in color:
            continue
        color[start] = 0
        queue: deque[NodeId] = deque([start])
        while queue:
            node = queue.popleft()
            for neighbor in graph.neighbors(node):
                if neighbor not in color:
                    color[neighbor] = 1 - color[node]
                    queue.append(neighbor)
                elif color[neighbor] == color[node]:
                    return False
    return True


def triangles(graph: Graph) -> int:
    """Total number of triangles in the graph."""
    count = 0
    index = graph.index_of
    for u, v in graph.edges():
        common = graph.neighbors(u) & graph.neighbors(v)
        for w in common:
            if index(w) > index(u) and index(w) > index(v):
                count += 1
    return count
