"""Small real-world benchmark graphs.

These classic social networks ship inside networkx (no download needed)
and are converted to our :class:`Graph` at the boundary.  They give the
examples and benchmarks a non-synthetic workload: the karate club is the
canonical community-split network, the Florentine families graph is the
textbook brokerage example (the Medici's betweenness advantage), and Les
Miserables is a larger co-occurrence network with heavy-tailed degrees.
"""

from __future__ import annotations

import networkx as nx

from repro.graphs.convert import from_networkx
from repro.graphs.graph import Graph


def karate_club() -> Graph:
    """Zachary's karate club (n = 34, m = 78).

    Node 0 is the instructor ("Mr. Hi"), node 33 the club president; the
    club's real-world split followed the two leaders, who are also the
    betweenness leaders.
    """
    return from_networkx(nx.karate_club_graph())


def florentine_families() -> Graph:
    """Padgett's Florentine marriage network (n = 15, m = 20).

    The Medici owe their historical brokerage position to betweenness:
    they top every betweenness variant on this graph.
    """
    return from_networkx(nx.florentine_families_graph())


def les_miserables() -> Graph:
    """Character co-occurrence network of Les Miserables (n = 77, m = 254)."""
    return from_networkx(nx.les_miserables_graph())


DATASETS = {
    "karate": karate_club,
    "florentine": florentine_families,
    "lesmis": les_miserables,
}


def load_dataset(name: str) -> Graph:
    """Load a bundled dataset by name (see :data:`DATASETS`)."""
    from repro.graphs.graph import GraphError

    try:
        return DATASETS[name]()
    except KeyError:
        raise GraphError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
