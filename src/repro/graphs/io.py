"""Plain-text edge-list I/O.

Format: one ``u v`` pair per line, ``#`` comments and blank lines ignored,
with an optional ``# nodes: a b c`` header line listing isolated nodes so
that graphs with degree-0 nodes round-trip exactly.  Node labels are parsed
as integers when possible, otherwise kept as strings.
"""

from __future__ import annotations

from pathlib import Path

from repro.graphs.graph import Graph, GraphError


def _parse_label(token: str) -> int | str:
    try:
        return int(token)
    except ValueError:
        return token


def write_edge_list(graph: Graph, path: str | Path) -> None:
    """Write ``graph`` to ``path`` in edge-list format."""
    path = Path(path)
    isolated = [
        node for node in graph.canonical_order() if graph.degree(node) == 0
    ]
    lines = [f"# repro edge list: n={graph.num_nodes} m={graph.num_edges}"]
    if isolated:
        lines.append("# nodes: " + " ".join(str(node) for node in isolated))
    for u, v in graph.edges():
        lines.append(f"{u} {v}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def read_edge_list(path: str | Path) -> Graph:
    """Read a graph previously written by :func:`write_edge_list`.

    Raises
    ------
    GraphError
        On malformed lines (not exactly two tokens) or self-loops.
    """
    path = Path(path)
    graph = Graph()
    for line_number, raw in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            body = line[1:].strip()
            if body.startswith("nodes:"):
                for token in body[len("nodes:") :].split():
                    graph.add_node(_parse_label(token))
            continue
        tokens = line.split()
        if len(tokens) != 2:
            raise GraphError(
                f"{path}:{line_number}: expected 'u v', got {line!r}"
            )
        graph.add_edge(_parse_label(tokens[0]), _parse_label(tokens[1]))
    return graph
