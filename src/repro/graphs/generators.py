"""Graph generators for workloads and tests.

All generators return :class:`repro.graphs.graph.Graph` instances with
integer node labels ``0..n-1`` and accept an explicit ``seed`` (or
``numpy.random.Generator``) where randomness is involved, so that every
experiment in the benchmark harness is reproducible.

The families were chosen to span the structural regimes the paper's proofs
depend on: high-diameter graphs (paths, cycles, grids) where walk truncation
bites hardest, expanders (random regular, dense ER) where absorption is
fast, heavy-tailed graphs (Barabasi-Albert), and the two-community bridge
topology of the paper's Figure 1.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.graphs.graph import Graph, GraphError


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


# ---------------------------------------------------------------------------
# Deterministic families
# ---------------------------------------------------------------------------
def path_graph(n: int) -> Graph:
    """The path ``0 - 1 - ... - (n-1)``."""
    if n < 1:
        raise GraphError("path_graph requires n >= 1")
    graph = Graph(nodes=range(n))
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """The cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError("cycle_graph requires n >= 3")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int) -> Graph:
    """The complete graph ``K_n``."""
    if n < 1:
        raise GraphError("complete_graph requires n >= 1")
    graph = Graph(nodes=range(n))
    for u, v in itertools.combinations(range(n), 2):
        graph.add_edge(u, v)
    return graph


def star_graph(n: int) -> Graph:
    """A star: hub ``0`` joined to leaves ``1..n-1``."""
    if n < 2:
        raise GraphError("star_graph requires n >= 2")
    graph = Graph(nodes=range(n))
    for leaf in range(1, n):
        graph.add_edge(0, leaf)
    return graph


def wheel_graph(n: int) -> Graph:
    """A wheel: hub ``0`` joined to a cycle on ``1..n-1``."""
    if n < 4:
        raise GraphError("wheel_graph requires n >= 4")
    graph = star_graph(n)
    rim = list(range(1, n))
    for i, u in enumerate(rim):
        graph.add_edge(u, rim[(i + 1) % len(rim)])
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """A ``rows x cols`` 2-D lattice with node ``r * cols + c``."""
    if rows < 1 or cols < 1:
        raise GraphError("grid_graph requires rows, cols >= 1")
    graph = Graph(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                graph.add_edge(node, node + 1)
            if r + 1 < rows:
                graph.add_edge(node, node + cols)
    return graph


def barbell_graph(clique_size: int, path_length: int) -> Graph:
    """Two ``K_clique_size`` cliques joined by a path of ``path_length`` nodes.

    A classic worst case for walk-based methods: the bridge path carries
    all cross-community traffic.
    """
    if clique_size < 3:
        raise GraphError("barbell_graph requires clique_size >= 3")
    if path_length < 0:
        raise GraphError("barbell_graph requires path_length >= 0")
    graph = Graph()
    left = list(range(clique_size))
    bridge = list(range(clique_size, clique_size + path_length))
    right = list(
        range(clique_size + path_length, 2 * clique_size + path_length)
    )
    for u, v in itertools.combinations(left, 2):
        graph.add_edge(u, v)
    for u, v in itertools.combinations(right, 2):
        graph.add_edge(u, v)
    chain = [left[-1], *bridge, right[0]]
    for u, v in zip(chain, chain[1:]):
        graph.add_edge(u, v)
    return graph


def lollipop_graph(clique_size: int, path_length: int) -> Graph:
    """A clique with a pendant path (``path_length`` extra nodes)."""
    if clique_size < 3:
        raise GraphError("lollipop_graph requires clique_size >= 3")
    if path_length < 0:
        raise GraphError("lollipop_graph requires path_length >= 0")
    graph = complete_graph(clique_size)
    previous = clique_size - 1
    for node in range(clique_size, clique_size + path_length):
        graph.add_edge(previous, node)
        previous = node
    return graph


def fig1_graph(group_size: int = 5) -> Graph:
    """The motivating topology of the paper's Figure 1.

    Two dense groups are connected by two parallel routes:

    * a two-hop bridge through nodes ``A`` and ``B`` (every shortest path
      between the groups uses it: any left node reaches any right node in
      3 hops via ``A - B``), and
    * a strictly longer detour through ``C1 - C2 - C3`` (4 hops end to
      end, so never on any shortest path).

    Node labels: the left group is ``0..group_size-1``, the right group is
    ``group_size..2*group_size-1``, then ``A``, ``B``, ``C1``, ``C2``,
    ``C3`` are the next five integers.  The paper draws a single node C;
    ``fig1_node_roles`` marks the middle detour node ``C2`` as "C" (it is
    interior to the detour, touching neither group, like the figure's C).
    """
    if group_size < 2:
        raise GraphError("fig1_graph requires group_size >= 2")
    n_group = group_size
    left = list(range(n_group))
    right = list(range(n_group, 2 * n_group))
    node_a = 2 * n_group
    node_b = 2 * n_group + 1
    node_c1 = 2 * n_group + 2
    node_c2 = 2 * n_group + 3
    node_c3 = 2 * n_group + 4
    graph = Graph()
    for u, v in itertools.combinations(left, 2):
        graph.add_edge(u, v)
    for u, v in itertools.combinations(right, 2):
        graph.add_edge(u, v)
    # The shortest route: every left node - A - B - every right node.
    for u in left:
        graph.add_edge(u, node_a)
    for v in right:
        graph.add_edge(node_b, v)
    graph.add_edge(node_a, node_b)
    # The detour: left - C1 - C2 - C3 - right (one hop longer than A-B
    # even for the attachment nodes).
    graph.add_edge(left[0], node_c1)
    graph.add_edge(node_c1, node_c2)
    graph.add_edge(node_c2, node_c3)
    graph.add_edge(node_c3, right[0])
    return graph


def fig1_node_roles(group_size: int = 5) -> dict[str, int]:
    """Role labels for :func:`fig1_graph` nodes.

    ``C`` is the middle detour node (strictly off every shortest path);
    ``C1``/``C3`` are the detour's attachment nodes.
    """
    return {
        "A": 2 * group_size,
        "B": 2 * group_size + 1,
        "C1": 2 * group_size + 2,
        "C": 2 * group_size + 3,
        "C3": 2 * group_size + 4,
        "left": 0,
        "right": group_size,
    }


# ---------------------------------------------------------------------------
# Random families
# ---------------------------------------------------------------------------
def erdos_renyi_graph(
    n: int,
    p: float,
    seed: int | np.random.Generator | None = None,
    ensure_connected: bool = False,
    max_tries: int = 100,
) -> Graph:
    """G(n, p) random graph.

    With ``ensure_connected=True`` the generator redraws (up to
    ``max_tries`` times) until the sample is connected, then raises if it
    never is; this keeps workload code honest about connectivity instead
    of silently patching edges in.
    """
    if n < 1:
        raise GraphError("erdos_renyi_graph requires n >= 1")
    if not 0.0 <= p <= 1.0:
        raise GraphError("erdos_renyi_graph requires 0 <= p <= 1")
    rng = _rng(seed)
    for _ in range(max_tries):
        graph = Graph(nodes=range(n))
        # Vectorized upper-triangle coin flips.
        if n > 1:
            i_idx, j_idx = np.triu_indices(n, k=1)
            mask = rng.random(len(i_idx)) < p
            for u, v in zip(i_idx[mask], j_idx[mask]):
                graph.add_edge(int(u), int(v))
        if not ensure_connected or _is_connected(graph):
            return graph
    raise GraphError(
        f"could not sample a connected G({n}, {p}) in {max_tries} tries"
    )


def barabasi_albert_graph(
    n: int, m: int, seed: int | np.random.Generator | None = None
) -> Graph:
    """Barabasi-Albert preferential attachment with ``m`` edges per new node."""
    if m < 1 or m >= n:
        raise GraphError("barabasi_albert_graph requires 1 <= m < n")
    rng = _rng(seed)
    graph = complete_graph(m + 1)
    # Repeated-endpoint list gives degree-proportional sampling.
    endpoint_pool: list[int] = []
    for u, v in graph.edges():
        endpoint_pool.extend((u, v))
    for new_node in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(int(endpoint_pool[rng.integers(len(endpoint_pool))]))
        for target in targets:
            graph.add_edge(new_node, target)
            endpoint_pool.extend((new_node, target))
    return graph


def watts_strogatz_graph(
    n: int,
    k: int,
    beta: float,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Watts-Strogatz small world: ring lattice with rewiring probability beta."""
    if k < 2 or k % 2 != 0:
        raise GraphError("watts_strogatz_graph requires even k >= 2")
    if k >= n:
        raise GraphError("watts_strogatz_graph requires k < n")
    if not 0.0 <= beta <= 1.0:
        raise GraphError("watts_strogatz_graph requires 0 <= beta <= 1")
    rng = _rng(seed)
    graph = Graph(nodes=range(n))
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            graph.add_edge(node, (node + offset) % n)
    # Rewire each lattice edge with probability beta.
    for node in range(n):
        for offset in range(1, k // 2 + 1):
            neighbor = (node + offset) % n
            if rng.random() < beta and graph.has_edge(node, neighbor):
                candidates = [
                    w
                    for w in range(n)
                    if w != node and not graph.has_edge(node, w)
                ]
                if candidates:
                    new_neighbor = int(
                        candidates[rng.integers(len(candidates))]
                    )
                    graph.remove_edge(node, neighbor)
                    graph.add_edge(node, new_neighbor)
    return graph


def random_regular_graph(
    n: int,
    d: int,
    seed: int | np.random.Generator | None = None,
    max_tries: int = 2000,
) -> Graph:
    """A uniformly-ish random ``d``-regular graph via the pairing model.

    Retries rejected pairings (self-loops / multi-edges) up to
    ``max_tries`` times.
    """
    if d < 1 or d >= n:
        raise GraphError("random_regular_graph requires 1 <= d < n")
    if (n * d) % 2 != 0:
        raise GraphError("random_regular_graph requires n*d even")
    rng = _rng(seed)
    stubs = np.repeat(np.arange(n), d)
    for _ in range(max_tries):
        perm = rng.permutation(stubs)
        pairs = perm.reshape(-1, 2)
        graph = Graph(nodes=range(n))
        ok = True
        for u, v in pairs:
            u, v = int(u), int(v)
            if u == v or graph.has_edge(u, v):
                ok = False
                break
            graph.add_edge(u, v)
        if ok:
            return graph
    raise GraphError(
        f"could not sample a simple {d}-regular graph on {n} nodes "
        f"in {max_tries} tries"
    )


def random_tree(n: int, seed: int | np.random.Generator | None = None) -> Graph:
    """A uniformly random labeled tree, decoded from a Prufer sequence."""
    if n < 1:
        raise GraphError("random_tree requires n >= 1")
    if n == 1:
        return Graph(nodes=[0])
    if n == 2:
        return Graph(edges=[(0, 1)])
    rng = _rng(seed)
    prufer = [int(rng.integers(n)) for _ in range(n - 2)]
    return _tree_from_prufer(prufer, n)


def _tree_from_prufer(prufer: list[int], n: int) -> Graph:
    degree = [1] * n
    for node in prufer:
        degree[node] += 1
    graph = Graph(nodes=range(n))
    import heapq

    leaves = [node for node in range(n) if degree[node] == 1]
    heapq.heapify(leaves)
    for node in prufer:
        leaf = heapq.heappop(leaves)
        graph.add_edge(leaf, node)
        degree[node] -= 1
        if degree[node] == 1:
            heapq.heappush(leaves, node)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    graph.add_edge(u, v)
    return graph


def caveman_pair_graph(
    cave_size: int,
    bridges: int = 1,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Two cliques ("caves") joined by ``bridges`` random cross edges."""
    if cave_size < 3:
        raise GraphError("caveman_pair_graph requires cave_size >= 3")
    if bridges < 1 or bridges > cave_size:
        raise GraphError("caveman_pair_graph requires 1 <= bridges <= cave_size")
    rng = _rng(seed)
    graph = Graph()
    left = list(range(cave_size))
    right = list(range(cave_size, 2 * cave_size))
    for u, v in itertools.combinations(left, 2):
        graph.add_edge(u, v)
    for u, v in itertools.combinations(right, 2):
        graph.add_edge(u, v)
    lefts = rng.choice(left, size=bridges, replace=False)
    rights = rng.choice(right, size=bridges, replace=False)
    for u, v in zip(lefts, rights):
        graph.add_edge(int(u), int(v))
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube (n = 2^d, degree d).

    A classic CONGEST benchmark topology: logarithmic diameter, perfect
    symmetry, n-independent spectral gap per dimension.
    """
    if dimension < 1:
        raise GraphError("hypercube_graph requires dimension >= 1")
    if dimension > 16:
        raise GraphError("hypercube_graph limited to dimension <= 16")
    n = 1 << dimension
    graph = Graph(nodes=range(n))
    for node in range(n):
        for bit in range(dimension):
            neighbor = node ^ (1 << bit)
            if neighbor > node:
                graph.add_edge(node, neighbor)
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}``: parts ``0..a-1`` and ``a..a+b-1``."""
    if a < 1 or b < 1:
        raise GraphError("complete_bipartite_graph requires a, b >= 1")
    graph = Graph(nodes=range(a + b))
    for u in range(a):
        for v in range(a, a + b):
            graph.add_edge(u, v)
    return graph


def caveman_ring_graph(caves: int, cave_size: int) -> Graph:
    """``caves`` cliques arranged in a ring, adjacent caves bridged.

    The connected-caveman model: a multi-community stress test for
    betweenness (every bridge node is a broker).
    """
    if caves < 3:
        raise GraphError("caveman_ring_graph requires caves >= 3")
    if cave_size < 3:
        raise GraphError("caveman_ring_graph requires cave_size >= 3")
    graph = Graph()
    for c in range(caves):
        members = range(c * cave_size, (c + 1) * cave_size)
        for u, v in itertools.combinations(members, 2):
            graph.add_edge(u, v)
    for c in range(caves):
        # Last member of cave c bridges to first member of cave c+1.
        u = c * cave_size + cave_size - 1
        v = ((c + 1) % caves) * cave_size
        graph.add_edge(u, v)
    return graph


def powerlaw_cluster_graph(
    n: int,
    m: int,
    triangle_probability: float,
    seed: int | np.random.Generator | None = None,
) -> Graph:
    """Holme-Kim power-law graph with tunable clustering.

    Barabasi-Albert growth where each preferential attachment is
    followed, with probability ``triangle_probability``, by a
    triad-closing edge to a random neighbor of the new contact.
    """
    if m < 1 or m >= n:
        raise GraphError("powerlaw_cluster_graph requires 1 <= m < n")
    if not 0.0 <= triangle_probability <= 1.0:
        raise GraphError("triangle_probability must be in [0, 1]")
    rng = _rng(seed)
    graph = complete_graph(m + 1)
    endpoint_pool: list[int] = []
    for u, v in graph.edges():
        endpoint_pool.extend((u, v))
    for new_node in range(m + 1, n):
        added = 0
        last_target: int | None = None
        while added < m:
            if (
                last_target is not None
                and rng.random() < triangle_probability
            ):
                # Triad closure: pick a neighbor of the last target.
                candidates = [
                    w
                    for w in graph.neighbors(last_target)
                    if w != new_node and not graph.has_edge(new_node, w)
                ]
                if candidates:
                    target = int(
                        candidates[rng.integers(len(candidates))]
                    )
                    graph.add_edge(new_node, target)
                    endpoint_pool.extend((new_node, target))
                    added += 1
                    continue
            target = int(endpoint_pool[rng.integers(len(endpoint_pool))])
            if target != new_node and not graph.has_edge(new_node, target):
                graph.add_edge(new_node, target)
                endpoint_pool.extend((new_node, target))
                last_target = target
                added += 1
    return graph


# ---------------------------------------------------------------------------
# Internal helpers (duplicated minimally to avoid an import cycle with
# repro.graphs.properties)
# ---------------------------------------------------------------------------
def _is_connected(graph: Graph) -> bool:
    if graph.num_nodes == 0:
        return True
    start = next(iter(graph.nodes()))
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for neighbor in graph.neighbors(node):
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    return len(seen) == graph.num_nodes


def expected_er_edges(n: int, p: float) -> float:
    """Expected edge count of G(n, p); handy for workload documentation."""
    return p * n * (n - 1) / 2.0


def connectivity_threshold_p(n: int, margin: float = 1.5) -> float:
    """A ``p`` safely above the G(n, p) connectivity threshold ``ln n / n``."""
    if n < 2:
        return 1.0
    return min(1.0, margin * math.log(n) / n)
