"""Graph substrate: data structure, generators, properties, and I/O.

This subpackage provides the undirected-graph foundation every other part
of the library builds on.  The :class:`~repro.graphs.graph.Graph` class is a
small, explicit adjacency-set structure (no external dependency); converters
to and from :mod:`networkx` live in :mod:`repro.graphs.convert`.
"""

from repro.graphs.graph import Graph
from repro.graphs.generators import (
    barabasi_albert_graph,
    barbell_graph,
    caveman_pair_graph,
    caveman_ring_graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    fig1_graph,
    grid_graph,
    hypercube_graph,
    lollipop_graph,
    path_graph,
    powerlaw_cluster_graph,
    random_regular_graph,
    random_tree,
    star_graph,
    watts_strogatz_graph,
    wheel_graph,
)
from repro.graphs.datasets import (
    florentine_families,
    karate_club,
    les_miserables,
    load_dataset,
)
from repro.graphs.lowerbound_graph import LowerBoundGraph, build_lower_bound_graph
from repro.graphs.properties import (
    connected_components,
    degree_histogram,
    diameter,
    eccentricities,
    is_connected,
)

__all__ = [
    "Graph",
    "barabasi_albert_graph",
    "barbell_graph",
    "caveman_pair_graph",
    "caveman_ring_graph",
    "complete_bipartite_graph",
    "complete_graph",
    "cycle_graph",
    "erdos_renyi_graph",
    "fig1_graph",
    "florentine_families",
    "grid_graph",
    "hypercube_graph",
    "karate_club",
    "les_miserables",
    "load_dataset",
    "lollipop_graph",
    "path_graph",
    "powerlaw_cluster_graph",
    "random_regular_graph",
    "random_tree",
    "star_graph",
    "watts_strogatz_graph",
    "wheel_graph",
    "LowerBoundGraph",
    "build_lower_bound_graph",
    "connected_components",
    "degree_histogram",
    "diameter",
    "eccentricities",
    "is_connected",
]
