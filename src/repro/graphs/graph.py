"""A small, explicit undirected graph data structure.

The rest of the library needs a predictable graph type with:

* hashable node identifiers (integers in practice, anything hashable in
  principle),
* O(1) adjacency queries backed by sets,
* a stable *canonical ordering* of nodes so that matrix-based code
  (:mod:`repro.core.exact`, :mod:`repro.walks.absorbing`) and the CONGEST
  simulator agree on node indices, and
* cheap structural hashing for caching and testing.

``networkx`` is deliberately not used here: it is reserved for the oracle
baseline (:mod:`repro.baselines.networkx_oracle`), so that agreement between
our solvers and networkx is a genuine cross-check rather than a tautology.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

import numpy as np

NodeId = Hashable


class GraphError(ValueError):
    """Raised for structurally invalid graph operations."""


class Graph:
    """An undirected simple graph backed by adjacency sets.

    Self-loops and parallel edges are rejected: random walk betweenness is
    defined on simple undirected graphs (paper, section III-A).

    Parameters
    ----------
    nodes:
        Optional iterable of initial node identifiers.
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added
        implicitly.

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> g.num_nodes, g.num_edges
    (3, 2)
    >>> sorted(g.neighbors(1))
    [0, 2]
    """

    __slots__ = ("_adj", "_num_edges", "_order_cache", "_index_cache")

    def __init__(
        self,
        nodes: Iterable[NodeId] | None = None,
        edges: Iterable[tuple[NodeId, NodeId]] | None = None,
    ) -> None:
        self._adj: dict[NodeId, set[NodeId]] = {}
        self._num_edges = 0
        self._order_cache: tuple[NodeId, ...] | None = None
        self._index_cache: dict[NodeId, int] | None = None
        if nodes is not None:
            for node in nodes:
                self.add_node(node)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(self, node: NodeId) -> None:
        """Add ``node``; adding an existing node is a no-op."""
        if node not in self._adj:
            self._adj[node] = set()
            self._invalidate()

    def add_edge(self, u: NodeId, v: NodeId) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed.

        Raises
        ------
        GraphError
            If ``u == v`` (self-loop).
        """
        if u == v:
            raise GraphError(f"self-loops are not allowed (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1
            self._invalidate()

    def remove_edge(self, u: NodeId, v: NodeId) -> None:
        """Remove the edge ``{u, v}``.

        Raises
        ------
        GraphError
            If the edge does not exist.
        """
        if not self.has_edge(u, v):
            raise GraphError(f"edge {{{u!r}, {v!r}}} not in graph")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._invalidate()

    def remove_node(self, node: NodeId) -> None:
        """Remove ``node`` and all incident edges.

        Raises
        ------
        GraphError
            If the node does not exist.
        """
        if node not in self._adj:
            raise GraphError(f"node {node!r} not in graph")
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        self._invalidate()

    def _invalidate(self) -> None:
        self._order_cache = None
        self._index_cache = None

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes, ``n`` in the paper's notation."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """Number of undirected edges, ``m`` in the paper's notation."""
        return self._num_edges

    def has_node(self, node: NodeId) -> bool:
        return node in self._adj

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, node: NodeId) -> frozenset[NodeId]:
        """The neighbor set of ``node`` (as an immutable snapshot)."""
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def degree(self, node: NodeId) -> int:
        """``d(node)``: the number of incident edges."""
        try:
            return len(self._adj[node])
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def nodes(self) -> Iterator[NodeId]:
        """Iterate over nodes in insertion order."""
        return iter(self._adj)

    def edges(self) -> Iterator[tuple[NodeId, NodeId]]:
        """Iterate over each undirected edge exactly once.

        Edge endpoints are emitted in canonical-index order so iteration
        order is deterministic for a given graph.
        """
        index = self.index_of
        for u in self.canonical_order():
            for v in self._adj[u]:
                if index(u) < index(v):
                    yield (u, v)

    def __contains__(self, node: object) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"

    # ------------------------------------------------------------------
    # Canonical ordering and matrices
    # ------------------------------------------------------------------
    def canonical_order(self) -> tuple[NodeId, ...]:
        """Nodes in a stable canonical order (sorted when comparable).

        Matrix code and the simulator both use this ordering, so that row
        ``i`` of an adjacency matrix always refers to the same node.
        """
        if self._order_cache is None:
            try:
                ordered = tuple(sorted(self._adj))
            except TypeError:
                # Mixed/unsortable node types: fall back to insertion order.
                ordered = tuple(self._adj)
            self._order_cache = ordered
        return self._order_cache

    def index_of(self, node: NodeId) -> int:
        """Canonical index of ``node`` (inverse of :meth:`canonical_order`)."""
        if self._index_cache is None:
            self._index_cache = {
                node: i for i, node in enumerate(self.canonical_order())
            }
        try:
            return self._index_cache[node]
        except KeyError:
            raise GraphError(f"node {node!r} not in graph") from None

    def adjacency_matrix(self) -> np.ndarray:
        """Dense ``(n, n)`` 0/1 adjacency matrix in canonical order (Eq. 1)."""
        order = self.canonical_order()
        n = len(order)
        index = {node: i for i, node in enumerate(order)}
        matrix = np.zeros((n, n), dtype=float)
        for u in order:
            i = index[u]
            for v in self._adj[u]:
                matrix[i, index[v]] = 1.0
        return matrix

    def degree_vector(self) -> np.ndarray:
        """Vector of node degrees in canonical order."""
        return np.array(
            [len(self._adj[node]) for node in self.canonical_order()], dtype=float
        )

    def laplacian_matrix(self) -> np.ndarray:
        """Graph Laplacian ``L = D - A`` in canonical order."""
        adjacency = self.adjacency_matrix()
        return np.diag(adjacency.sum(axis=1)) - adjacency

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def copy(self) -> "Graph":
        """An independent deep copy."""
        clone = Graph()
        for node in self._adj:
            clone.add_node(node)
        for u, v in self.edges():
            clone.add_edge(u, v)
        return clone

    def subgraph(self, nodes: Iterable[NodeId]) -> "Graph":
        """The induced subgraph on ``nodes``."""
        keep = set(nodes)
        missing = keep - set(self._adj)
        if missing:
            raise GraphError(f"nodes not in graph: {sorted(map(repr, missing))}")
        sub = Graph(nodes=keep)
        for u, v in self.edges():
            if u in keep and v in keep:
                sub.add_edge(u, v)
        return sub

    def relabeled(self) -> tuple["Graph", dict[NodeId, int]]:
        """A copy with nodes relabeled ``0..n-1`` in canonical order.

        Returns the new graph and the old-node -> new-index mapping.
        """
        mapping = {node: i for i, node in enumerate(self.canonical_order())}
        relabeled = Graph(nodes=range(self.num_nodes))
        for u, v in self.edges():
            relabeled.add_edge(mapping[u], mapping[v])
        return relabeled, mapping

    # ------------------------------------------------------------------
    # Hashing helpers (content fingerprint, not Python hash)
    # ------------------------------------------------------------------
    def edge_set(self) -> frozenset[frozenset[NodeId]]:
        """The set of edges as frozensets, useful for structural equality."""
        return frozenset(frozenset((u, v)) for u, v in self.edges())
