"""Text rendering of run artifacts: timeline tables and diffs.

Consumed by the ``repro observe report`` / ``observe diff`` CLI; kept
separate from :mod:`repro.obs.export` so the serialization layer stays
dependency-free of presentation choices.
"""

from __future__ import annotations

from repro.obs.export import Artifact

__all__ = ["render_diff", "render_report", "render_trend"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}" if value else "0"
    if isinstance(value, int) and abs(value) >= 10_000:
        return f"{value:_}"
    return str(value)


def _table(headers: list[str], rows: list[list]) -> list[str]:
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(header), *(len(row[i]) for row in cells)) if cells else len(header)
        for i, header in enumerate(headers)
    ]
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append(
            "  ".join(value.rjust(widths[i]) for i, value in enumerate(row))
        )
    return lines


def render_report(artifact: Artifact) -> str:
    """Full text report: header, per-phase table, spans, instruments."""
    header = artifact.header
    meta = header.get("meta", {})
    lines: list[str] = []
    descriptor = " ".join(
        f"{key}={meta[key]}"
        for key in ("graph", "n", "m", "seed", "faults")
        if key in meta
    )
    path_label = "fast path" if header.get("fast_path") else (
        "per-message loop (" + "; ".join(header.get("fallback_reasons", [])) + ")"
    )
    lines.append(f"observe report · schema {header.get('schema')}")
    if descriptor:
        lines.append(descriptor)
    lines.append(
        f"rounds={header.get('rounds')} target={header.get('target')} "
        f"[{path_label}]"
    )

    metrics = artifact.summary.get("metrics", {})
    lines.append(
        "totals: "
        f"messages={_fmt(metrics.get('total_messages', 0))} "
        f"bits={_fmt(metrics.get('total_bits', 0))} "
        f"max_bits/edge/round={_fmt(metrics.get('max_bits_per_edge_round', 0))}"
    )
    recovery = artifact.summary.get("recovery")
    if recovery:
        lines.append(
            "recovery: "
            + " ".join(f"{key}={_fmt(value)}" for key, value in recovery.items())
        )

    if artifact.phases:
        lines.append("")
        lines.append("per-phase timeline:")
        rows = [
            [
                phase["name"],
                f"{phase['start_round']}-{phase['end_round']}",
                phase["rounds"],
                phase["messages"],
                phase["bits"],
                phase.get("retransmits", 0),
                phase.get("wall_s", 0.0),
            ]
            for phase in artifact.phases
        ]
        lines.extend(
            _table(
                ["phase", "rounds", "#", "messages", "bits", "retransmits",
                 "wall_s"],
                rows,
            )
        )

    if artifact.spans:
        lines.append("")
        lines.append("spans (hottest first):")
        span_rows = sorted(
            artifact.spans.values(), key=lambda span: -span["wall_s"]
        )
        lines.extend(
            _table(
                ["span", "count", "wall_s"],
                [
                    [span["path"], span["count"], span["wall_s"]]
                    for span in span_rows
                ],
            )
        )

    if artifact.instruments:
        lines.append("")
        lines.append("instruments:")
        lines.extend(
            _table(
                ["instrument", "count", "mean", "max"],
                [
                    [
                        name,
                        digest.get("count", 0),
                        round(float(digest.get("mean", 0.0)), 2),
                        digest.get("max", 0),
                    ]
                    for name, digest in sorted(artifact.instruments.items())
                ],
            )
        )

    if artifact.trace_summary is not None:
        lines.append("")
        lines.append(
            f"trace: {artifact.trace_summary.get('events', 0)} events "
            f"({artifact.trace_summary.get('dropped', 0)} dropped)"
        )
    return "\n".join(lines)


#: Metric columns of the trend table, in display order.
_TREND_METRICS = ("rounds", "messages", "bits", "retransmissions", "wall_s")


def render_trend(
    trajectory: dict,
    scenario: str | None = None,
    last: int | None = None,
) -> str:
    """Per-scenario history tables for one trajectory document.

    One table per scenario (or just ``scenario`` when given): one row
    per recorded entry, keyed by short SHA and date, with the tracked
    deterministic counters and wall clock side by side so a metric's
    drift across PRs is visible at a glance.  ``last`` keeps only the
    most recent N entries.
    """
    entries = trajectory.get("entries", [])
    if last is not None:
        entries = entries[-last:]
    lines = [
        f"trajectory · suite {trajectory.get('suite')} · "
        f"{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}"
    ]
    names: list[str] = []
    for entry in entries:
        for name in entry.get("scenarios", {}):
            if name not in names:
                names.append(name)
    if scenario is not None:
        if scenario not in names:
            known = ", ".join(names) or "none"
            return f"{lines[0]}\nscenario {scenario!r} not found ({known})"
        names = [scenario]
    for name in names:
        rows = []
        for entry in entries:
            metrics = entry.get("scenarios", {}).get(name)
            if metrics is None:
                continue
            rows.append(
                [
                    entry.get("sha", "?"),
                    str(entry.get("date", "?"))[:10],
                    *(metrics.get(metric, "-") for metric in _TREND_METRICS),
                ]
            )
        if not rows:
            continue
        lines.append("")
        lines.append(f"scenario {name}:")
        lines.extend(_table(["sha", "date", *_TREND_METRICS], rows))
    return "\n".join(lines)


def render_diff(
    diff: dict, label_a: str = "a", label_b: str = "b"
) -> str:
    """Text rendering of :func:`repro.obs.export.diff_artifacts` output."""
    lines = [f"observe diff · {label_a} -> {label_b}"]
    lines.append("")
    lines.append("summary deltas:")
    lines.extend(
        _table(
            ["metric", label_a, label_b, "delta"],
            [
                [key, a, b, delta]
                for key, (a, b, delta) in diff["summary"].items()
            ],
        )
    )
    if diff["phases"]:
        lines.append("")
        lines.append("per-phase deltas:")
        rows = []
        for name, entries in diff["phases"].items():
            for key, (a, b, delta) in entries.items():
                if a or b:
                    rows.append([f"{name}.{key}", a, b, delta])
        lines.extend(_table(["phase.metric", label_a, label_b, "delta"], rows))
    span_rows = [
        [path, a, b, delta]
        for path, entry in diff.get("spans", {}).items()
        for a, b, delta in [entry["wall_s"]]
        if a or b
    ]
    if span_rows:
        lines.append("")
        lines.append("span wall-clock deltas:")
        lines.extend(_table(["span", label_a, label_b, "delta"], span_rows))
    return "\n".join(lines)
