"""Committed performance trajectories: append / load / validate / compare.

A *trajectory file* (``BENCH_<suite>.json`` at the repo root) is the
durable record of one scenario suite's performance across PRs: a JSON
document with a versioned schema tag and one *entry* per recorded run,
keyed by git SHA and UTC date and stamped with a machine fingerprint.
Each entry maps scenario names to their metric rows as produced by
:mod:`repro.experiments.scenarios`.

Two metric classes are compared very differently:

* **Deterministic counters** (:data:`EXACT_METRICS`: rounds, messages,
  bits, retransmissions) are seeded and machine-independent, so any
  change at all between the committed entry and a fresh run is a
  reportable difference - CI diffs them exactly.
* **Wall clock** (``wall_s``) is machine-specific, so it is only
  compared as a ratio band (fail when ``current > ratio * previous``),
  and by default only between entries whose machine fingerprints match
  (a laptop baseline must not gate a CI runner).

Other row fields (``checksum``, graph shape, configuration echoes) ride
along for triage but are never gated on.

The schema (:data:`TRAJECTORY_SCHEMA`) is versioned like the observe
artifact schema; readers reject other versions via the shared
:class:`~repro.obs.export.SchemaError`.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
from dataclasses import dataclass
from datetime import datetime, timezone

from repro.obs.export import SchemaError

__all__ = [
    "EXACT_METRICS",
    "TRAJECTORY_SCHEMA",
    "WALL_METRIC",
    "Regression",
    "append_entry",
    "compare_entries",
    "git_sha",
    "load_trajectory",
    "machine_fingerprint",
    "new_entry",
    "validate_trajectory",
    "write_trajectory",
]

#: Current trajectory schema; bump the integer on breaking changes.
TRAJECTORY_SCHEMA = "rwbc.trajectory/1"

#: Seeded, machine-independent counters: compared exactly.
EXACT_METRICS = ("rounds", "messages", "bits", "retransmissions")

#: Machine-local timing: compared as a ratio band.
WALL_METRIC = "wall_s"

#: Default wall-clock regression band (current vs previous entry).
DEFAULT_WALL_RATIO = 2.0

#: Minimum absolute wall-clock growth (seconds) before the ratio band
#: applies.  Sub-millisecond scenarios jitter by 5-10x between runs on
#: the same machine; a ratio alone would gate on pure timer noise.
DEFAULT_WALL_FLOOR = 0.1


def machine_fingerprint() -> dict:
    """A small stable identity for the measuring machine."""
    return {
        "system": platform.system(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "cpus": os.cpu_count() or 1,
    }


def git_sha(short: bool = True) -> str:
    """The repo's current commit SHA, or ``"unknown"`` outside git."""
    command = ["git", "rev-parse"] + (["--short"] if short else []) + ["HEAD"]
    try:
        out = subprocess.run(
            command, capture_output=True, text=True, timeout=10, check=False
        )
    except OSError:
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def new_entry(
    rows: list[dict],
    sha: str | None = None,
    date: str | None = None,
    machine: dict | None = None,
) -> dict:
    """Build one trajectory entry from scenario sweep rows."""
    if not rows:
        raise SchemaError("a trajectory entry needs at least one scenario row")
    scenarios: dict[str, dict] = {}
    for row in rows:
        name = row.get("scenario")
        if not name:
            raise SchemaError(f"scenario row without a name: {row!r}")
        if name in scenarios:
            raise SchemaError(f"duplicate scenario {name!r} in entry")
        kept = {
            key: row[key]
            for key in (
                *EXACT_METRICS,
                WALL_METRIC,
                "checksum",
                "n",
                "m",
                "fast_path",
                "variant",
                "executor",
                "shards",
                "fault_profile",
            )
            if key in row and row[key] is not None
        }
        scenarios[name] = kept
    return {
        "sha": sha or git_sha(),
        "date": date
        or datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine or machine_fingerprint(),
        "scenarios": scenarios,
    }


def validate_trajectory(data, source: str = "trajectory") -> dict:
    """Structural validation; returns ``data`` or raises SchemaError."""
    if not isinstance(data, dict):
        raise SchemaError(f"{source}: trajectory must be a JSON object")
    schema = data.get("schema", "")
    if schema != TRAJECTORY_SCHEMA:
        raise SchemaError(
            f"{source}: unsupported schema {schema!r} "
            f"(expected {TRAJECTORY_SCHEMA!r})"
        )
    if not isinstance(data.get("suite"), str) or not data["suite"]:
        raise SchemaError(f"{source}: missing suite name")
    entries = data.get("entries")
    if not isinstance(entries, list):
        raise SchemaError(f"{source}: entries must be a list")
    for index, entry in enumerate(entries):
        label = f"{source}: entry {index}"
        if not isinstance(entry, dict):
            raise SchemaError(f"{label} is not an object")
        for key in ("sha", "date", "machine", "scenarios"):
            if key not in entry:
                raise SchemaError(f"{label} is missing {key!r}")
        if not isinstance(entry["scenarios"], dict) or not entry["scenarios"]:
            raise SchemaError(f"{label} has no scenarios")
        for name, metrics in entry["scenarios"].items():
            if not isinstance(metrics, dict):
                raise SchemaError(f"{label}: scenario {name!r} is not a dict")
    return data


def load_trajectory(path) -> dict:
    """Read and validate a trajectory file."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except json.JSONDecodeError as error:
        raise SchemaError(f"{path}: not valid JSON: {error}") from error
    return validate_trajectory(data, source=str(path))


def write_trajectory(path, data: dict) -> None:
    """Write a validated trajectory document (stable key order)."""
    validate_trajectory(data, source=str(path))
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, sort_keys=True)
        handle.write("\n")


def append_entry(path, entry: dict, suite: str) -> dict:
    """Append one entry to ``path``, creating the file if absent.

    Returns the full updated trajectory document.  Appending to a file
    recorded for a different suite is refused - one file tracks one
    scenario matrix.
    """
    if os.path.exists(path):
        data = load_trajectory(path)
        if data["suite"] != suite:
            raise SchemaError(
                f"{path} tracks suite {data['suite']!r}, not {suite!r}"
            )
    else:
        data = {"schema": TRAJECTORY_SCHEMA, "suite": suite, "entries": []}
    data["entries"].append(entry)
    write_trajectory(path, data)
    return data


@dataclass(frozen=True)
class Regression:
    """One gated difference between two trajectory entries."""

    scenario: str
    metric: str
    previous: float | int | None
    current: float | int | None
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.scenario}.{self.metric}: {self.previous} -> "
            f"{self.current} ({self.detail})"
        )


def compare_entries(
    previous: dict,
    current: dict,
    wall_ratio: float = DEFAULT_WALL_RATIO,
    wall_clock: str = "same-machine",
    wall_floor: float = DEFAULT_WALL_FLOOR,
) -> list[Regression]:
    """Gated diff of two entries; an empty list means no regression.

    Deterministic metrics (:data:`EXACT_METRICS`) must match exactly in
    every scenario present in both entries - *any* change, improvement
    included, is reported, because a silent change to a deterministic
    counter means the protocol's complexity shape moved and the
    committed trajectory must be updated deliberately.  A scenario that
    disappears from ``current`` is a regression; new scenarios are not.

    ``wall_clock`` selects the timing gate: ``"same-machine"`` (the
    default) applies the ``wall_ratio`` band only when both entries
    carry identical machine fingerprints, ``"always"`` applies it
    unconditionally, ``"off"`` skips it.  Even inside the band, the
    wall clock must have grown by at least ``wall_floor`` seconds in
    absolute terms - a ratio on a sub-millisecond scenario is timer
    noise, not a regression.
    """
    if wall_clock not in ("same-machine", "always", "off"):
        raise SchemaError(
            f"wall_clock must be same-machine/always/off, got {wall_clock!r}"
        )
    check_wall = wall_clock == "always" or (
        wall_clock == "same-machine"
        and previous.get("machine") == current.get("machine")
    )
    regressions: list[Regression] = []
    for name, old in previous["scenarios"].items():
        new = current["scenarios"].get(name)
        if new is None:
            regressions.append(
                Regression(name, "scenario", 1, 0, "scenario disappeared")
            )
            continue
        for metric in EXACT_METRICS:
            if metric not in old and metric not in new:
                continue
            if old.get(metric) != new.get(metric):
                regressions.append(
                    Regression(
                        name,
                        metric,
                        old.get(metric),
                        new.get(metric),
                        "deterministic metric changed",
                    )
                )
        if check_wall and WALL_METRIC in old and WALL_METRIC in new:
            old_wall = float(old[WALL_METRIC])
            new_wall = float(new[WALL_METRIC])
            if (
                old_wall > 0
                and new_wall > wall_ratio * old_wall
                and new_wall - old_wall > wall_floor
            ):
                regressions.append(
                    Regression(
                        name,
                        WALL_METRIC,
                        old_wall,
                        new_wall,
                        f"slower than {wall_ratio:g}x the previous entry",
                    )
                )
    return regressions
