"""Structured JSONL run artifacts: write, read, validate, diff.

One observed run serializes to a JSON-Lines file where every line is a
record object with a ``record`` type tag.  The schema is versioned
(:data:`SCHEMA`); readers reject artifacts from a different major
schema so downstream tooling fails loudly instead of misparsing.

Record types, in file order:

``header``
    Schema version, free-form run ``meta`` (graph family, n, m, seed,
    CLI argv, fault description), protocol parameters, target node,
    fast-path flag and fallback reasons.
``summary``
    ``RunMetrics.summary()`` numbers, the phase-round breakdown, and
    ARQ recovery totals (None on unreliable runs).
``phase``
    One per protocol phase window (setup / counting / exchange and,
    when the run outlived the first finisher, drain): inclusive round
    window plus the rounds/messages/bits/retransmits/walk-send/fault
    totals and wall-clock attributed to it.
``span``
    One per profiler span path: call count and wall seconds.
``instrument``
    One per named histogram: the :class:`~repro.obs.instruments.Log2Histogram`
    digest.
``series``
    Dense per-round integer/float series (messages, bits, wall clock,
    and every round counter), index 0 = round 1.
``trace``
    Optional: one per recorded :class:`~repro.congest.trace.TraceEvent`
    (preceded by a ``trace_summary`` record with the event/dropped
    counts).
``end``
    Terminal record carrying the count of preceding records, so a
    truncated file is detectable.

All numbers are plain Python ints/floats (numpy scalars are coerced),
so artifacts round-trip through any JSON tooling.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "SCHEMA",
    "Artifact",
    "SchemaError",
    "build_records",
    "diff_artifacts",
    "phase_windows",
    "read_artifact",
    "validate_artifact",
    "write_artifact",
]

#: Current artifact schema.  Bump the trailing integer on breaking
#: changes; readers reject any other prefix/version.
SCHEMA = "rwbc.observe/1"

#: Phases attributed in timeline order by :func:`phase_windows`.
_PHASE_ORDER = ("setup", "counting", "exchange", "drain")


class SchemaError(ValueError):
    """An artifact failed schema validation."""


def _plain(value):
    """Coerce numpy scalars/arrays (and nested containers) to JSON types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_plain(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {str(key): _plain(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(item) for item in value]
    return value


def phase_windows(phase_rounds: dict) -> list[tuple[str, int, int]]:
    """Inclusive 1-based round windows ``(name, first, last)`` per phase.

    Derived from the estimator's ``phase_rounds`` breakdown
    (setup/counting/exchange/total); rounds after the first node's
    finish - reliable-mode stragglers draining their channels - land in
    a synthetic ``drain`` phase.  Empty windows are omitted.
    """
    windows: list[tuple[str, int, int]] = []
    cursor = 0
    for name in ("setup", "counting", "exchange"):
        length = int(phase_rounds.get(name, 0))
        if length > 0:
            windows.append((name, cursor + 1, cursor + length))
        cursor += length
    total = int(phase_rounds.get("total", cursor))
    if total > cursor:
        windows.append(("drain", cursor + 1, total))
    return windows


def _window_sum(series, first: int, last: int):
    """Sum of a per-round series over the inclusive round window."""
    if not series:
        return 0
    return sum(series[first - 1 : last])


def build_records(
    result,
    meta: dict | None = None,
    tracer=None,
) -> list[dict]:
    """Serialize one :class:`~repro.core.result.DistributedRWBCResult`
    (plus its attached telemetry, if any) into artifact records."""
    metrics = result.metrics
    telemetry = getattr(result, "telemetry", None)
    profiler = telemetry.profiler if telemetry is not None else None
    instruments = telemetry.instruments if telemetry is not None else None
    rounds = metrics.rounds

    records: list[dict] = []
    records.append(
        {
            "record": "header",
            "schema": SCHEMA,
            "meta": _plain(meta or {}),
            "parameters": {
                "length": result.parameters.length,
                "walks_per_source": result.parameters.walks_per_source,
            },
            "target": _plain(result.target),
            "rounds": rounds,
            "fast_path": not result.fallback_reasons,
            "fallback_reasons": list(result.fallback_reasons),
        }
    )
    records.append(
        {
            "record": "summary",
            "metrics": _plain(metrics.summary()),
            "phase_rounds": _plain(result.phase_rounds),
            "recovery": _plain(result.recovery),
        }
    )

    wall_series = list(profiler.round_wall) if profiler is not None else []
    if len(wall_series) != rounds:
        # The wall series must line up round-for-round to be sliceable;
        # anything else (no telemetry, partial run) is reported whole
        # but not attributed per phase.
        wall_series = []
    counter_series: dict[str, list[int]] = {}
    if instruments is not None:
        counter_series = {
            name: instruments.round_series(name, rounds)
            for name in sorted(instruments.round_counters)
        }

    for name, first, last in phase_windows(result.phase_rounds):
        fault_totals = {
            counter[len("faults_") :]: _window_sum(series, first, last)
            for counter, series in counter_series.items()
            if counter.startswith("faults_")
        }
        records.append(
            {
                "record": "phase",
                "name": name,
                "start_round": first,
                "end_round": last,
                "rounds": last - first + 1,
                "messages": _window_sum(
                    metrics.messages_per_round, first, last
                ),
                "bits": _window_sum(metrics.bits_per_round, first, last),
                "wall_s": round(_window_sum(wall_series, first, last), 6),
                "retransmits": _window_sum(
                    counter_series.get("retransmissions", []), first, last
                ),
                "walk_sends": _window_sum(
                    counter_series.get("walk_sends", []), first, last
                ),
                "faults": fault_totals,
            }
        )

    if profiler is not None:
        for path, stats in sorted(
            profiler.summary().items(),
            key=lambda item: -item[1]["wall_s"],
        ):
            records.append(
                {
                    "record": "span",
                    "path": path,
                    "count": stats["count"],
                    "wall_s": round(stats["wall_s"], 6),
                }
            )

    if instruments is not None:
        for name in sorted(instruments.histograms):
            digest = instruments.histograms[name].summary()
            records.append(
                {"record": "instrument", "name": name, **_plain(digest)}
            )

    records.append(
        {
            "record": "series",
            "name": "messages_per_round",
            "values": list(metrics.messages_per_round),
        }
    )
    records.append(
        {
            "record": "series",
            "name": "bits_per_round",
            "values": list(metrics.bits_per_round),
        }
    )
    if wall_series:
        records.append(
            {
                "record": "series",
                "name": "wall_per_round",
                "values": [round(value, 6) for value in wall_series],
            }
        )
    for name, series in counter_series.items():
        records.append({"record": "series", "name": name, "values": series})

    if tracer is not None and len(tracer):
        records.append(
            {
                "record": "trace_summary",
                "events": len(tracer.events),
                "dropped": tracer.dropped,
            }
        )
        for event in tracer.events:
            records.append(
                {
                    "record": "trace",
                    "round": event.round_number,
                    "node": event.node_id,
                    "event": event.event,
                    "detail": _plain(list(event.detail)),
                }
            )

    records.append({"record": "end", "records": len(records)})
    return records


def write_artifact(
    path,
    result,
    meta: dict | None = None,
    tracer=None,
) -> int:
    """Write one run's artifact to ``path``; returns the record count."""
    records = build_records(result, meta=meta, tracer=tracer)
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record, separators=(",", ":")))
            handle.write("\n")
    return len(records)


@dataclass
class Artifact:
    """Parsed artifact, indexed by record type."""

    header: dict
    summary: dict
    phases: list[dict] = field(default_factory=list)
    spans: dict[str, dict] = field(default_factory=dict)
    instruments: dict[str, dict] = field(default_factory=dict)
    series: dict[str, list] = field(default_factory=dict)
    trace: list[dict] = field(default_factory=list)
    trace_summary: dict | None = None
    end: dict | None = None

    @property
    def rounds(self) -> int:
        return int(self.header.get("rounds", 0))


def read_artifact(path) -> Artifact:
    """Parse and validate a JSONL artifact; raises :class:`SchemaError`
    on malformed, truncated, or wrong-version input."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise SchemaError(
                    f"{path}: line {line_number} is not valid JSON: {error}"
                ) from error
            if not isinstance(record, dict) or "record" not in record:
                raise SchemaError(
                    f"{path}: line {line_number} has no 'record' tag"
                )
            records.append(record)
    return validate_artifact(records, source=str(path))


def validate_artifact(records: list[dict], source: str = "artifact") -> Artifact:
    """Structural validation of a record list; returns the parsed
    :class:`Artifact` or raises :class:`SchemaError`."""
    if not records:
        raise SchemaError(f"{source}: empty artifact")
    header = records[0]
    if header.get("record") != "header":
        raise SchemaError(f"{source}: first record must be the header")
    schema = header.get("schema", "")
    if schema != SCHEMA:
        raise SchemaError(
            f"{source}: unsupported schema {schema!r} (expected {SCHEMA!r})"
        )
    end = records[-1]
    if end.get("record") != "end":
        raise SchemaError(f"{source}: missing terminal end record (truncated?)")
    if end.get("records") != len(records) - 1:
        raise SchemaError(
            f"{source}: end record counts {end.get('records')} records, "
            f"file has {len(records) - 1}"
        )

    artifact = Artifact(header=header, summary={}, end=end)
    for record in records[1:-1]:
        kind = record["record"]
        if kind == "summary":
            artifact.summary = record
        elif kind == "phase":
            artifact.phases.append(record)
        elif kind == "span":
            artifact.spans[record["path"]] = record
        elif kind == "instrument":
            artifact.instruments[record["name"]] = record
        elif kind == "series":
            artifact.series[record["name"]] = record["values"]
        elif kind == "trace":
            artifact.trace.append(record)
        elif kind == "trace_summary":
            artifact.trace_summary = record
        else:
            raise SchemaError(f"{source}: unknown record type {kind!r}")
    if not artifact.summary:
        raise SchemaError(f"{source}: missing summary record")
    rounds = artifact.rounds
    for name in ("messages_per_round", "bits_per_round"):
        series = artifact.series.get(name)
        if series is None:
            raise SchemaError(f"{source}: missing required series {name!r}")
        if len(series) != rounds:
            raise SchemaError(
                f"{source}: series {name!r} has {len(series)} entries for "
                f"{rounds} rounds"
            )
    for phase in artifact.phases:
        if phase["end_round"] > rounds or phase["start_round"] < 1:
            raise SchemaError(
                f"{source}: phase {phase['name']!r} window "
                f"[{phase['start_round']}, {phase['end_round']}] exceeds "
                f"the run's {rounds} rounds"
            )
    return artifact


def _delta(a, b) -> list:
    return [a, b, b - a]


def diff_artifacts(a: Artifact, b: Artifact) -> dict:
    """Structured ``[a, b, b - a]`` deltas between two artifacts:
    summary metrics, per-phase totals, and span wall clock."""
    a_metrics = a.summary.get("metrics", {})
    b_metrics = b.summary.get("metrics", {})
    summary = {
        key: _delta(a_metrics.get(key, 0), b_metrics.get(key, 0))
        for key in sorted(set(a_metrics) | set(b_metrics))
    }
    a_phases = {phase["name"]: phase for phase in a.phases}
    b_phases = {phase["name"]: phase for phase in b.phases}
    phases: dict[str, dict] = {}
    for name in sorted(
        set(a_phases) | set(b_phases),
        key=lambda name: (
            _PHASE_ORDER.index(name) if name in _PHASE_ORDER else 99
        ),
    ):
        pa = a_phases.get(name, {})
        pb = b_phases.get(name, {})
        phases[name] = {
            key: _delta(pa.get(key, 0), pb.get(key, 0))
            for key in ("rounds", "messages", "bits", "retransmits", "wall_s")
        }
    spans = {
        path: {
            "wall_s": _delta(
                a.spans.get(path, {}).get("wall_s", 0.0),
                b.spans.get(path, {}).get("wall_s", 0.0),
            )
        }
        for path in sorted(set(a.spans) | set(b.spans))
    }
    return {"summary": summary, "phases": phases, "spans": spans}
