"""Low-overhead span profiler for simulated runs.

A :class:`SpanProfiler` records two kinds of timing data:

* **named spans** - nested wall-clock sections around the scheduler's and
  the walk engine's hot kernels (fault filtering, delivery splitting,
  the per-node loop, ARQ flush, bulk emission, ...).  Spans nest: a span
  opened while another is active is recorded under the slash-joined path
  of its ancestors (``drivers/engine.emit``), which is what the
  ``observe report`` flame summary renders;
* **a per-round wall-clock series** - one float per simulated round,
  which the exporter later slices into protocol phases (setup /
  counting / exchange / drain) using the run's phase boundaries.

Design constraints (see docs/OBSERVABILITY.md):

* telemetry must never influence protocol decisions or randomness, so
  the profiler only ever *reads* the clock and writes into its own
  containers;
* overhead must stay well under 10% of a fault-free fast-path run, so a
  span enter/exit is two ``perf_counter`` calls, one list append, and
  one dict update - no allocation on the hot path beyond the first use
  of each span name.

:data:`NULL_PROFILER` is the shared no-op used whenever telemetry is
off; it exposes the same surface so call sites never branch.
"""

from __future__ import annotations

from time import perf_counter

__all__ = [
    "NULL_PROFILER",
    "NullProfiler",
    "SpanProfiler",
]


class _SpanHandle:
    """Reusable context manager for one span name.

    Handles are cached per name and not re-entrant (the scheduler never
    nests a span inside itself).  The full path is resolved at exit from
    the profiler's live stack, so the same handle records correctly
    under any parent.
    """

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "SpanProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_SpanHandle":
        self._profiler._stack.append(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = perf_counter() - self._start
        profiler = self._profiler
        path = "/".join(profiler._stack)
        profiler._stack.pop()
        stats = profiler._spans.get(path)
        if stats is None:
            profiler._spans[path] = [1, wall]
        else:
            stats[0] += 1
            stats[1] += wall


class SpanProfiler:
    """Nested wall-clock spans plus a per-round wall series."""

    def __init__(self) -> None:
        self._spans: dict[str, list] = {}  # path -> [count, wall_seconds]
        self._stack: list[str] = []
        self._handles: dict[str, _SpanHandle] = {}
        #: Wall seconds per simulated round; index ``i`` is round
        #: ``i + 1`` (round 0's on_start work folds into round 1).
        self.round_wall: list[float] = []
        self._round_mark: float | None = None

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def span(self, name: str) -> _SpanHandle:
        """Context manager timing one named section."""
        handle = self._handles.get(name)
        if handle is None:
            handle = _SpanHandle(self, name)
            self._handles[name] = handle
        return handle

    # ------------------------------------------------------------------
    # Round series
    # ------------------------------------------------------------------
    def round_tick(self, round_number: int) -> None:
        """Mark the start of a round; closes the previous round's
        timing.  ``round_number`` is accepted for symmetry/debugging but
        the series is positional (rounds are contiguous from 1)."""
        now = perf_counter()
        if self._round_mark is not None:
            self.round_wall.append(now - self._round_mark)
        self._round_mark = now

    def run_finished(self) -> None:
        """Close the final round's timing."""
        if self._round_mark is not None:
            self.round_wall.append(perf_counter() - self._round_mark)
            self._round_mark = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, dict[str, float]]:
        """``path -> {count, wall_s}`` for every recorded span."""
        return {
            path: {"count": stats[0], "wall_s": stats[1]}
            for path, stats in self._spans.items()
        }

    @property
    def total_round_wall(self) -> float:
        return sum(self.round_wall)

    def __len__(self) -> int:
        return len(self._spans)


class _NullSpan:
    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullProfiler:
    """No-op stand-in with the :class:`SpanProfiler` surface."""

    round_wall: list[float] = []

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def round_tick(self, round_number: int) -> None:
        return None

    def run_finished(self) -> None:
        return None

    def summary(self) -> dict:
        return {}

    @property
    def total_round_wall(self) -> float:
        return 0.0

    def __len__(self) -> int:
        return 0


#: Shared no-op profiler used whenever telemetry is disabled.
NULL_PROFILER = NullProfiler()
