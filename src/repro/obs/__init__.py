"""Observability layer: span profiling, instruments, and run artifacts.

The package is deliberately a leaf: nothing in ``repro.congest`` or
``repro.core`` is imported here, so protocol modules can depend on the
observability primitives without cycles.

Typical use::

    from repro.obs import Telemetry
    from repro.obs.export import write_artifact

    telemetry = Telemetry()
    result = estimate_rwbc_distributed(graph, params, seed=0, telemetry=telemetry)
    write_artifact("run.jsonl", result, meta={"graph": "er", "n": graph.num_nodes})

or, from the command line, ``repro observe run`` / ``report`` / ``diff``.
"""

from __future__ import annotations

from repro.obs.instruments import InstrumentSet, Log2Histogram
from repro.obs.spans import NULL_PROFILER, NullProfiler, SpanProfiler

__all__ = [
    "NULL_PROFILER",
    "InstrumentSet",
    "Log2Histogram",
    "NullProfiler",
    "SpanProfiler",
    "Telemetry",
]


class Telemetry:
    """Umbrella handle bundling the profiler and instruments for one run.

    Pass an instance to :func:`repro.core.estimator.estimate_rwbc_distributed`
    (or construct a :class:`repro.congest.scheduler.Simulator` with
    ``telemetry=``) to record spans, per-round wall clock, and instrument
    histograms.  The same object comes back on
    ``DistributedRWBCResult.telemetry`` and feeds the JSONL exporter.

    Telemetry is observation-only: enabling it never changes protocol
    decisions, message contents, round counts, or random draws.
    """

    def __init__(
        self,
        profiler: SpanProfiler | None = None,
        instruments: InstrumentSet | None = None,
    ) -> None:
        self.profiler = profiler if profiler is not None else SpanProfiler()
        self.instruments = instruments if instruments is not None else InstrumentSet()
        #: Free-form run metadata folded into the exported header.
        self.meta: dict = {}
