"""Passive instruments: power-of-two histograms and per-round counters.

An :class:`InstrumentSet` is the run-wide container that the simulator,
the reliable channels, and the walk engine write into when telemetry is
enabled.  Everything here is strictly *observational*: instruments hold
no protocol state, are never read by protocol code, and draw no
randomness, so enabling them cannot perturb a seeded run (pinned by
``tests/test_obs_neutrality.py``).

Two shapes of data are recorded:

* :class:`Log2Histogram` - fixed 64-bucket power-of-two histograms for
  distributions whose dynamic range is wide but whose exact values do
  not matter (bits per edge per round, ARQ window occupancy, recovery
  latency in rounds).  Bucket ``b`` counts values in ``[2**b, 2**(b+1))``
  with all of ``{0, 1}`` landing in bucket 0;
* **round counters** - sparse ``round -> int`` maps for events that the
  per-phase report wants to attribute to a window of rounds
  (retransmissions, acks, walk sends, per-kind fault deltas).

The canonical instrument names used across the codebase:

==========================  ====================================================
``bits_per_edge_round``     histogram; bits delivered on one edge in one round
``messages_per_edge_round`` histogram; messages delivered on one edge per round
``arq_window``              histogram; unacked entries per node after a flush
``recovery_latency_rounds`` histogram; rounds between first send and ack
``retransmissions``         round counter; ARQ token retransmits per round
``acks``                    round counter; ack messages emitted per round
``walk_sends``              round counter; walk-token messages sent per round
``faults_*``                round counters; per-round deltas of FaultCounters
==========================  ====================================================
"""

from __future__ import annotations

import numpy as np

__all__ = ["InstrumentSet", "Log2Histogram"]

_BUCKETS = 64
# Bucket boundaries for vectorized bucketing: value v lands in bucket
# max(0, floor(log2(v))), matching the scalar bit_length() path.
_POW2 = np.power(2.0, np.arange(_BUCKETS, dtype=np.float64))


class Log2Histogram:
    """Fixed-size power-of-two histogram over non-negative values."""

    __slots__ = ("buckets", "count", "total", "max")

    def __init__(self) -> None:
        self.buckets = np.zeros(_BUCKETS, dtype=np.int64)
        self.count = 0
        self.total = 0
        self.max = 0

    def observe(self, value: int) -> None:
        value = int(value)
        bucket = value.bit_length() - 1
        if bucket < 0:
            bucket = 0
        self.buckets[bucket] += 1
        self.count += 1
        self.total += value
        if value > self.max:
            self.max = value

    def observe_array(self, values: np.ndarray) -> None:
        """Vectorized bulk observation (used by the fast path)."""
        if len(values) == 0:
            return
        values = np.asarray(values)
        indices = np.searchsorted(_POW2, values, side="right") - 1
        np.clip(indices, 0, _BUCKETS - 1, out=indices)
        np.add.at(self.buckets, indices, 1)
        self.count += int(len(values))
        self.total += int(values.sum())
        peak = int(values.max())
        if peak > self.max:
            self.max = peak

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """JSON-friendly digest; ``buckets`` lists ``[2**b, count]``
        pairs for non-empty buckets only."""
        nonzero = np.nonzero(self.buckets)[0]
        return {
            "type": "hist_log2",
            "count": self.count,
            "sum": self.total,
            "max": self.max,
            "mean": self.mean,
            "buckets": [[int(2**b), int(self.buckets[b])] for b in nonzero],
        }


class InstrumentSet:
    """Named histograms plus sparse per-round counters for one run."""

    def __init__(self) -> None:
        self.histograms: dict[str, Log2Histogram] = {}
        self.round_counters: dict[str, dict[int, int]] = {}
        self._fault_snapshot: dict[str, int] | None = None

    # ------------------------------------------------------------------
    # Histograms
    # ------------------------------------------------------------------
    def hist(self, name: str) -> Log2Histogram:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = Log2Histogram()
            self.histograms[name] = histogram
        return histogram

    def observe(self, name: str, value: int) -> None:
        self.hist(name).observe(value)

    def observe_values(self, name: str, values) -> None:
        histogram = self.hist(name)
        for value in values:
            histogram.observe(value)

    def observe_array(self, name: str, values: np.ndarray) -> None:
        self.hist(name).observe_array(values)

    # ------------------------------------------------------------------
    # Round counters
    # ------------------------------------------------------------------
    def bump_round(self, name: str, round_number: int, count: int = 1) -> None:
        counter = self.round_counters.get(name)
        if counter is None:
            counter = {}
            self.round_counters[name] = counter
        counter[round_number] = counter.get(round_number, 0) + count

    def round_series(self, name: str, rounds: int) -> list[int]:
        """Dense per-round series (index ``i`` is round ``i + 1``)."""
        counter = self.round_counters.get(name, {})
        series = [0] * rounds
        for round_number, count in counter.items():
            if 1 <= round_number <= rounds:
                series[round_number - 1] += count
        return series

    def record_fault_counters(self, round_number: int, snapshot: dict[str, int]) -> None:
        """Fold per-round deltas of a ``FaultCounters.snapshot()`` into
        ``faults_<kind>`` round counters."""
        previous = self._fault_snapshot or {}
        for key, value in snapshot.items():
            delta = value - previous.get(key, 0)
            if delta:
                self.bump_round(f"faults_{key}", round_number, delta)
        self._fault_snapshot = dict(snapshot)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        return {name: hist.summary() for name, hist in self.histograms.items()}

    def totals(self) -> dict[str, int]:
        """Total per round-counter name, across all rounds."""
        return {
            name: sum(counter.values())
            for name, counter in self.round_counters.items()
        }
