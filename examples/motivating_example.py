"""The paper's Figure 1, reproduced numerically.

Two dense groups are connected by a short bridge (A - B) and a longer
detour (C1 - C2 - C3).  Shortest-path betweenness sees only the bridge;
random walk betweenness also credits the detour - the paper's motivation
for the random-walk measure.

Run:  python examples/motivating_example.py
"""

from repro import rwbc_exact
from repro.baselines.brandes import shortest_path_betweenness
from repro.graphs.generators import fig1_graph, fig1_node_roles


def main() -> None:
    group_size = 5
    graph = fig1_graph(group_size=group_size)
    roles = fig1_node_roles(group_size=group_size)

    spbc = shortest_path_betweenness(graph)
    rwbc = rwbc_exact(graph)

    print("Figure 1 reproduction (group size = 5, n = 15)\n")
    print(f"{'role':>6}  {'node':>4}  {'SPBC':>8}  {'RWBC':>8}")
    for label in ("A", "B", "C1", "C", "C3", "left", "right"):
        node = roles[label]
        print(
            f"{label:>6}  {node:>4}  {spbc[node]:>8.4f}  {rwbc[node]:>8.4f}"
        )

    a, c = roles["A"], roles["C"]
    print(
        f"\nC relative to the bridge A:"
        f"\n  shortest paths: C scores {spbc[c] / spbc[a]:.1%} of A"
        f"\n  random walks:   C scores {rwbc[c] / rwbc[a]:.1%} of A"
    )
    print(
        "\nThe detour node C is nearly invisible to shortest paths but "
        "carries real random-walk flow - exactly the paper's argument "
        "for the random walk betweenness measure."
    )


if __name__ == "__main__":
    main()
