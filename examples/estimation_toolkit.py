"""The estimation toolkit: choosing and auditing your walk budget.

The paper prescribes l = O(n), K = O(log n); in practice the right
budget depends on the instance (spectral gap, visit dispersion) and on
whether you need values or just rankings.  This script shows the three
tools the library provides:

1. spectral l(eps): the honest per-instance walk length (Theorem 1);
2. dispersion-based K: which graphs need more walks (Theorem 3's hidden
   constant);
3. adaptive doubling + split-sample bias audit: stop when stable, then
   measure how much of the estimate is noise floor.

Run:  python examples/estimation_toolkit.py
"""

import numpy as np

from repro.core.adaptive import adaptive_montecarlo
from repro.core.bias import split_estimate_rwbc
from repro.core.exact import rwbc_exact
from repro.graphs.generators import barbell_graph, random_regular_graph
from repro.walks.spectral import algebraic_connectivity, length_for_epsilon
from repro.walks.variance import relative_visit_dispersion


def signed_bias(estimate, exact):
    return float(
        np.mean([(estimate[v] - exact[v]) / exact[v] for v in exact])
    )


def analyze(name, graph):
    target = graph.canonical_order()[0]
    print(f"\n=== {name}: n={graph.num_nodes}, m={graph.num_edges} ===")

    gap = algebraic_connectivity(graph)
    length = length_for_epsilon(graph, target, epsilon=0.02)
    dispersion = relative_visit_dispersion(graph, target)
    print(
        f"spectral gap {gap:.3f} -> l(eps=0.02) = {length} "
        f"({length / graph.num_nodes:.1f} x n); "
        f"visit dispersion {dispersion:.1f}"
    )

    result = adaptive_montecarlo(
        graph, target=target, tolerance=0.04, seed=0, max_walks=8192,
        length=length,
    )
    exact = rwbc_exact(graph, target=target)
    print(
        f"adaptive doubling: stopped at K = {result.walks_per_source} "
        f"(converged: {result.converged}, "
        f"{result.iterations} doublings)"
    )

    audit = split_estimate_rwbc(
        graph, target, length=length,
        walks_per_source=max(2, result.walks_per_source), seed=1,
    )
    print(
        f"bias audit at that K: plain {signed_bias(audit.plain, exact):+.3f}, "
        f"debiased {signed_bias(audit.debiased, exact):+.3f} "
        f"(mean noise floor "
        f"{np.mean(list(audit.noise_floor.values())):.4f})"
    )


def main() -> None:
    analyze("expander (4-regular)", random_regular_graph(16, 4, seed=7))
    analyze("barbell (heavy-tailed)", barbell_graph(6, 4))
    print(
        "\nReading: the barbell needs several times the walk length "
        "(smaller gap) and carries a far larger noise floor at equal K "
        "(higher dispersion) - the instance-dependence the paper's "
        "uniform schedules hide."
    )


if __name__ == "__main__":
    main()
