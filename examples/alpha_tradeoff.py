"""The alpha-current-flow compromise (paper section II-C), hands on.

RWBC needs O(n)-length walks; alpha-CFBC dampens them to expected length
1/(1 - alpha), trading fidelity to the random-walk measure for speed.
This script sweeps alpha on one graph and prints the three-way tradeoff:
counting rounds, agreement with true RWBC, and agreement with the exact
alpha-measure it actually estimates.

Run:  python examples/alpha_tradeoff.py
"""

from repro.analysis.ranking import kendall_tau
from repro.baselines.alpha_cfbc import alpha_current_flow_betweenness
from repro.core.estimator import (
    estimate_alpha_cfbc_distributed,
    estimate_rwbc_distributed,
)
from repro.core.parameters import WalkParameters
from repro.core.exact import rwbc_exact
from repro.graphs.generators import watts_strogatz_graph


def main() -> None:
    graph = watts_strogatz_graph(24, 4, 0.15, seed=8)
    exact_rwbc = rwbc_exact(graph)
    k = 60

    print(f"graph: WS n={graph.num_nodes} m={graph.num_edges}, K={k}\n")
    print(
        f"{'alpha':>6} {'walk cap':>8} {'count rounds':>12} "
        f"{'tau vs own exact':>17} {'tau vs RWBC':>12}"
    )
    for alpha in (0.3, 0.5, 0.7, 0.9, 0.97):
        result = estimate_alpha_cfbc_distributed(
            graph, alpha=alpha, walks_per_source=k, seed=8
        )
        own_exact = alpha_current_flow_betweenness(graph, alpha=alpha)
        print(
            f"{alpha:>6} {result.parameters.length:>8} "
            f"{result.phase_rounds['counting']:>12} "
            f"{kendall_tau(result.betweenness, own_exact):>17.3f} "
            f"{kendall_tau(result.betweenness, exact_rwbc):>12.3f}"
        )

    rwbc = estimate_rwbc_distributed(
        graph,
        WalkParameters(length=3 * graph.num_nodes, walks_per_source=k),
        seed=8,
    )
    print(
        f"\nabsorbing RWBC protocol: "
        f"{rwbc.phase_rounds['counting']} counting rounds, "
        f"tau vs exact RWBC = "
        f"{kendall_tau(rwbc.betweenness, exact_rwbc):.3f}"
    )
    print(
        "\nReading: alpha buys rounds (geometric walks), and as alpha -> 1 "
        "the measure converges to RWBC - the section II-C compromise, "
        "quantified."
    )


if __name__ == "__main__":
    main()
