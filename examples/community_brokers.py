"""Finding community brokers in a synthetic social network.

Builds a three-community network joined by a handful of weak ties, then
ranks nodes by distributed RWBC, shortest-path betweenness, and PageRank.
The broker nodes (the weak-tie endpoints) should top the betweenness
rankings; PageRank, which measures visibility rather than brokerage,
ranks differently.

Run:  python examples/community_brokers.py
"""

import itertools

import numpy as np

from repro import WalkParameters, estimate_rwbc_distributed
from repro.baselines.brandes import shortest_path_betweenness
from repro.baselines.pagerank import pagerank_power_iteration
from repro.graphs.graph import Graph


def build_society(
    community_size: int = 8, communities: int = 3, seed: int = 42
) -> tuple[Graph, list[int]]:
    """Dense communities plus sparse cross-ties; returns (graph, brokers)."""
    rng = np.random.default_rng(seed)
    graph = Graph()
    groups = []
    for c in range(communities):
        members = list(
            range(c * community_size, (c + 1) * community_size)
        )
        groups.append(members)
        for u, v in itertools.combinations(members, 2):
            if rng.random() < 0.7:
                graph.add_edge(u, v)
    brokers = []
    for a, b in itertools.combinations(range(communities), 2):
        u = int(rng.choice(groups[a]))
        v = int(rng.choice(groups[b]))
        graph.add_edge(u, v)
        brokers.extend([u, v])
    # Patch any isolated member into its community.
    for members in groups:
        for node in members:
            if not graph.has_node(node) or graph.degree(node) == 0:
                graph.add_edge(node, members[0] if node != members[0] else members[1])
    return graph, sorted(set(brokers))


def top_k(values: dict, k: int) -> list[int]:
    return sorted(values, key=lambda v: -values[v])[:k]


def main() -> None:
    graph, brokers = build_society()
    print(
        f"society: n={graph.num_nodes}, m={graph.num_edges}, "
        f"true brokers: {brokers}"
    )

    result = estimate_rwbc_distributed(
        graph,
        WalkParameters(length=120, walks_per_source=120),
        seed=1,
    )
    spbc = shortest_path_betweenness(graph)
    pagerank = pagerank_power_iteration(graph)

    k = len(brokers)
    rankings = {
        "distributed RWBC": top_k(result.betweenness, k),
        "shortest-path BC": top_k(spbc, k),
        "pagerank": top_k(pagerank, k),
    }
    print(f"\ntop-{k} by measure:")
    for name, ranking in rankings.items():
        hits = len(set(ranking) & set(brokers))
        print(f"  {name:>16}: {ranking}   (brokers found: {hits}/{k})")

    print(
        f"\ndistributed run: {result.total_rounds} rounds, "
        f"{result.metrics.total_messages} messages, "
        f"elected target {result.target}"
    )


if __name__ == "__main__":
    main()
