"""Centrality analysis of real social networks (bundled datasets).

Runs the full measure suite on Zachary's karate club and Padgett's
Florentine families - two networks whose "correct answers" are known from
the sociology literature: the karate club's split followed its two
leaders (nodes 0 and 33), and the Medici's political dominance is the
textbook consequence of their brokerage position.

Run:  python examples/real_world_analysis.py
"""

from repro import WalkParameters, estimate_rwbc_distributed, rwbc_exact
from repro.baselines.brandes import shortest_path_betweenness
from repro.baselines.pagerank import pagerank_power_iteration
from repro.graphs.datasets import florentine_families, karate_club


def show_ranking(title, values, top=5):
    ranked = sorted(values, key=lambda v: -values[v])[:top]
    print(f"  {title:<18} " + ", ".join(f"{v}({values[v]:.3f})" for v in ranked))


def analyze_karate() -> None:
    graph = karate_club()
    print(f"Zachary's karate club: n={graph.num_nodes}, m={graph.num_edges}")

    exact = rwbc_exact(graph)
    result = estimate_rwbc_distributed(
        graph, WalkParameters(length=150, walks_per_source=120), seed=0
    )
    spbc = shortest_path_betweenness(graph)
    pagerank = pagerank_power_iteration(graph)

    show_ranking("exact RWBC", exact)
    show_ranking("distributed RWBC", result.betweenness)
    show_ranking("shortest-path BC", spbc)
    show_ranking("pagerank", pagerank)

    top2 = set(sorted(exact, key=lambda v: -exact[v])[:2])
    print(
        f"  -> the two club leaders {sorted(top2)} top the RWBC ranking "
        "(the split followed them in 1977)"
    )
    est_top2 = set(
        sorted(result.betweenness, key=lambda v: -result.betweenness[v])[:2]
    )
    print(
        "  -> distributed estimate found the same leaders: "
        f"{est_top2 == top2} ({result.total_rounds} rounds, "
        f"{result.metrics.total_messages} messages)"
    )


def analyze_florentine() -> None:
    graph = florentine_families()
    print(
        f"\nFlorentine families: n={graph.num_nodes}, m={graph.num_edges}"
    )
    exact = rwbc_exact(graph)
    spbc = shortest_path_betweenness(graph)
    show_ranking("exact RWBC", exact, top=4)
    show_ranking("shortest-path BC", spbc, top=4)
    best = max(exact, key=exact.get)
    print(f"  -> {best} hold the brokerage position, as history records")


def main() -> None:
    analyze_karate()
    analyze_florentine()


if __name__ == "__main__":
    main()
