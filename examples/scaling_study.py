"""Round-complexity scaling study (Theorem 5 hands-on).

Runs the full distributed protocol across a range of sizes with the
paper's parameter schedules (l = 3n, K = 2 log2 n) and reports per-phase
round counts plus the fitted n-log-n coefficient.

Run:  python examples/scaling_study.py
"""

import math

from repro import WalkParameters, estimate_rwbc_distributed
from repro.analysis.fitting import fit_nlogn, fit_power_law
from repro.graphs.generators import erdos_renyi_graph


def main() -> None:
    sizes = (12, 16, 24, 32, 48, 64)
    print(
        f"{'n':>4} {'m':>5} {'K':>3} {'l':>5} {'setup':>6} "
        f"{'count':>6} {'xchg':>5} {'total':>6} {'bits/edge':>9}"
    )
    ns, totals = [], []
    for n in sizes:
        graph = erdos_renyi_graph(
            n, max(0.12, 3.0 / n * math.log2(n)), seed=n, ensure_connected=True
        )
        params = WalkParameters(
            length=3 * n, walks_per_source=max(4, int(2 * math.log2(n)))
        )
        result = estimate_rwbc_distributed(graph, params, seed=n)
        phases = result.phase_rounds
        print(
            f"{n:>4} {graph.num_edges:>5} {params.walks_per_source:>3} "
            f"{params.length:>5} {phases['setup']:>6} "
            f"{phases['counting']:>6} {phases['exchange']:>5} "
            f"{result.total_rounds:>6} "
            f"{result.metrics.max_bits_per_edge_round:>9}"
        )
        ns.append(n)
        totals.append(result.total_rounds)

    nlogn = fit_nlogn(ns, totals)
    power = fit_power_law(ns, totals)
    print(
        f"\nfit: rounds ~ {nlogn.coefficient:.2f} * n log2 n "
        f"(max residual {nlogn.max_relative_residual:.1%}); "
        f"free exponent {power.exponent:.2f}"
    )
    print(
        "Theorem 5 predicts O(n log n); the free-exponent fit close to 1 "
        "confirms the shape (log factors are invisible at these sizes)."
    )


if __name__ == "__main__":
    main()
