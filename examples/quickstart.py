"""Quickstart: estimate random walk betweenness three ways.

Builds a small random graph, computes the exact values, then compares
the centralized Monte-Carlo estimator and the full distributed CONGEST
protocol against them.

Run:  python examples/quickstart.py
"""

from repro import (
    WalkParameters,
    estimate_rwbc_distributed,
    estimate_rwbc_montecarlo,
    rwbc_exact,
)
from repro.graphs import erdos_renyi_graph


def main() -> None:
    graph = erdos_renyi_graph(30, 0.18, seed=7, ensure_connected=True)
    print(f"graph: n={graph.num_nodes}, m={graph.num_edges}")

    # 1. Exact values (Newman's matrix method, our fast solver).
    exact = rwbc_exact(graph)

    # 2. Centralized Monte-Carlo with the Theorem 1/3 parameter schedules.
    params = WalkParameters(length=150, walks_per_source=200)
    montecarlo = estimate_rwbc_montecarlo(graph, params, seed=7)

    # 3. The paper's distributed algorithm on the CONGEST simulator.
    distributed = estimate_rwbc_distributed(graph, params, seed=7)

    print(
        f"\ndistributed run: {distributed.total_rounds} rounds "
        f"(setup {distributed.phase_rounds['setup']}, "
        f"counting {distributed.phase_rounds['counting']}, "
        f"exchange {distributed.phase_rounds['exchange']}); "
        f"target node t = {distributed.target}"
    )
    print(
        f"max message size: {distributed.metrics.max_message_bits} bits; "
        f"max messages/edge/round: "
        f"{distributed.metrics.max_messages_per_edge_round}"
    )

    print(f"\n{'node':>4}  {'exact':>8}  {'montecarlo':>10}  {'distributed':>11}")
    top = sorted(graph.nodes(), key=lambda v: -exact[v])[:10]
    for node in top:
        print(
            f"{node:>4}  {exact[node]:>8.4f}  "
            f"{montecarlo.betweenness[node]:>10.4f}  "
            f"{distributed.betweenness[node]:>11.4f}"
        )

    worst = max(
        abs(distributed.betweenness[v] - exact[v]) / exact[v]
        for v in graph.nodes()
    )
    print(f"\nworst relative error (distributed vs exact): {worst:.1%}")


if __name__ == "__main__":
    main()
