"""The paper's strawman, taken seriously: collect-all vs the protocol.

Section I dismisses the trivial algorithm (ship the topology to one
node, solve locally) as needing O(m) rounds.  With both algorithms
actually implemented, the picture is sharper: collection pipelines over
parallel tree links, so the trivial approach is excellent on
well-connected graphs - and collapses exactly where the paper's
lower-bound intuition lives: on networks with a bandwidth bottleneck.

Run:  python examples/trivial_vs_distributed.py
"""

import math

from repro.core.estimator import estimate_rwbc_distributed
from repro.core.parameters import WalkParameters
from repro.core.trivial import trivial_collect_all
from repro.graphs.generators import barbell_graph, erdos_renyi_graph


def compare(label, graph, seed=9):
    n = graph.num_nodes
    params = WalkParameters(
        length=2 * n, walks_per_source=max(4, int(2 * math.log2(n)))
    )
    trivial = trivial_collect_all(graph, seed=seed)
    distributed = estimate_rwbc_distributed(graph, params, seed=seed)
    winner = (
        "distributed"
        if distributed.total_rounds < trivial.rounds
        else "trivial"
    )
    print(
        f"{label:>14}  n={n:>3} m={graph.num_edges:>4}  "
        f"trivial={trivial.rounds:>4} rounds (exact)  "
        f"distributed={distributed.total_rounds:>4} rounds (approx)  "
        f"-> {winner}"
    )


def main() -> None:
    print("well-connected (ER): collection parallelizes, trivial wins\n")
    for p in (0.2, 0.6, 0.95):
        compare(f"ER p={p}", erdos_renyi_graph(24, p, seed=9, ensure_connected=True))

    print(
        "\nbottlenecked (barbell: one bridge carries half the edges): "
        "trivial pays Theta(m), the protocol wins past the crossover\n"
    )
    for clique in (8, 12, 16, 20):
        compare(f"barbell c={clique}", barbell_graph(clique, 1))

    print(
        "\n(The distributed algorithm also avoids Theta(n^2) state and "
        "O(n^3) computation at any single node - advantages rounds "
        "alone do not show.)"
    )


if __name__ == "__main__":
    main()
