"""The section VIII lower-bound construction, hands on.

1. Builds the Fig. 2 graph from a sparse set-disjointness instance.
2. Verifies the Lemma 5 / Lemma 6 minimality claims exactly.
3. Runs the distributed protocol over the Alice/Bob cut and measures the
   bits that actually cross it (the Theorem 7 simulation argument).

Run:  python examples/lower_bound_demo.py
"""

from repro.congest.scheduler import Simulator
from repro.congest.transport import BandwidthPolicy
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.lowerbound.construction import instance_to_graph
from repro.lowerbound.disjointness import random_instance
from repro.lowerbound.twoparty import analyze_cut_traffic
from repro.lowerbound.verify import (
    lemma5_profile,
    lemma6_profile,
    probe_betweenness,
)


def main() -> None:
    print("Lemma 5 (Fig. 3): b_P by the rail T_1 attaches to")
    for rail, value in lemma5_profile(m=4).items():
        marker = "  <- matches S_1's rail (minimum)" if rail == 0 else ""
        print(f"  rail {rail}: b_P = {value:.6f}{marker}")

    print("\nLemma 6 (Fig. 5): b_P by the rail the new S_2 attaches to")
    for rail, value in lemma6_profile(m=4).items():
        marker = "  <- already-used rail (minimum)" if rail == 0 else ""
        print(f"  rail {rail}: b_P = {value:.6f}{marker}")

    print("\nFull construction from a DISJ instance:")
    instance = random_instance(3, seed=5)
    construction = instance_to_graph(instance)
    graph = construction.graph
    print(
        f"  N={instance.n} values/side, M={construction.m} rails, "
        f"graph n={graph.num_nodes}, m={graph.num_edges}"
    )
    print(f"  values disjoint: {instance.is_disjoint()}")
    print(f"  exact b_P = {probe_betweenness(construction):.6f}")
    cut = construction.cut_edges()
    print(
        f"  Alice/Bob cut: {len(cut)} edges "
        f"(paper claims c_k = M = {construction.m}; as built it is "
        f"M + N + 1 because P touches both sides)"
    )

    print("\nRunning the distributed protocol with message recording...")
    config = ProtocolConfig(length=2 * graph.num_nodes, walks_per_source=6)
    policy = BandwidthPolicy(n=graph.num_nodes, messages_per_edge=4)
    result = Simulator(
        graph,
        make_protocol_factory(config),
        policy=policy,
        seed=5,
        record_messages=True,
    ).run()
    analysis = analyze_cut_traffic(result, construction, policy)
    print(
        f"  rounds: {analysis.rounds}\n"
        f"  bits crossing the cut: {analysis.bits_crossed}\n"
        f"  Theorem 7 channel capacity (rounds * 2 * c_k * B): "
        f"{analysis.channel_capacity_bits}\n"
        f"  inequality holds: {analysis.simulation_inequality_holds}\n"
        f"  DISJ input size: {instance.input_bits()} bits -> implied "
        f"exact-problem round bound: "
        f"{analysis.implied_round_lower_bound(instance.input_bits()):.2f}"
    )


if __name__ == "__main__":
    main()
