"""Tracking brokers in a changing network (incremental exact solver).

Edge churn - links forming and dissolving - is the norm in real
networks.  Recomputing Newman's betweenness from scratch costs O(n^3)
per change; the Sherman-Morrison tracker (repro.core.incremental)
updates the underlying inverse in O(n^2) per edge event.  This script
simulates churn on a two-community network and watches the broker
ranking respond.

Run:  python examples/dynamic_network.py
"""

import numpy as np

from repro.core.incremental import IncrementalRWBC
from repro.graphs.generators import caveman_pair_graph
from repro.graphs.graph import GraphError


def top3(values):
    return sorted(values, key=values.get, reverse=True)[:3]


def main() -> None:
    graph = caveman_pair_graph(6, bridges=1, seed=0)
    tracker = IncrementalRWBC(graph)
    print(
        f"two caves of 6, one bridge: n={graph.num_nodes}, "
        f"m={graph.num_edges}"
    )
    print(f"initial top brokers: {top3(tracker.betweenness())}")

    # A second inter-community tie forms: brokerage gets shared.
    tracker.add_edge(1, 7)
    print(f"\nafter new weak tie 1--7: top brokers: {top3(tracker.betweenness())}")
    print(
        "  bridge effective resistances: "
        f"original {tracker.effective_resistance(*_bridge(graph)):.3f}, "
        f"new {tracker.effective_resistance(1, 7):.3f}"
    )

    # Random churn inside the communities: brokers stay stable.
    rng = np.random.default_rng(1)
    events = 0
    while events < 6:
        u, v = int(rng.integers(0, 6)), int(rng.integers(0, 6))
        if u == v:
            continue
        try:
            if tracker.graph.has_edge(u, v):
                tracker.remove_edge(u, v)
            else:
                tracker.add_edge(u, v)
            events += 1
        except GraphError:
            continue  # bridge removal refused - exactly as designed
    print(
        f"\nafter {events} intra-community churn events: "
        f"top brokers: {top3(tracker.betweenness())}"
    )
    print(
        "\nEach update cost O(n^2) (a rank-one inverse update) instead of "
        "an O(n^3) re-factorization; the tracker's inverse matches a "
        "fresh solve to 1e-8 throughout (see tests/test_core_incremental)."
    )


def _bridge(graph):
    for u, v in graph.edges():
        if (u < 6) != (v < 6):
            return u, v
    raise AssertionError("no bridge found")


if __name__ == "__main__":
    main()
