"""Running the CONGEST protocols on an asynchronous network.

The paper assumes synchronous rounds; the alpha synchronizer
(repro.congest.asynchronous) simulates them on an event-driven network
with random FIFO message delays.  This script shows (1) deterministic
primitives give identical answers, and (2) the full RWBC protocol runs
end-to-end asynchronously, with the measured control-message overhead.

Run:  python examples/async_execution.py
"""

from repro.congest.asynchronous import run_async
from repro.congest.primitives.apsp import APSPProgram
from repro.congest.scheduler import run_program
from repro.core.exact import rwbc_exact
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.graphs.generators import grid_graph


def main() -> None:
    graph = grid_graph(4, 4)
    print(f"graph: 4x4 grid, n={graph.num_nodes}, m={graph.num_edges}\n")

    # 1. Deterministic program: identical outputs, any delays.
    sync = run_program(graph, APSPProgram)
    for delay in (2.0, 10.0, 50.0):
        result = run_async(graph, APSPProgram, seed=1, max_delay=delay)
        identical = all(
            result.program(v).distances == sync.program(v).distances
            for v in graph.nodes()
        )
        print(
            f"APSP, max_delay={delay:>5}: identical to synchronous run: "
            f"{identical} (virtual time {result.metrics.virtual_time:.0f}, "
            f"{result.metrics.rounds_completed} simulated rounds)"
        )

    # 2. The full randomized protocol, asynchronously.
    config = ProtocolConfig(length=60, walks_per_source=60)
    result = run_async(
        graph, make_protocol_factory(config), seed=2, max_delay=8.0
    )
    exact = rwbc_exact(graph)
    worst = max(
        abs(result.program(v).betweenness - exact[v]) / exact[v]
        for v in graph.nodes()
    )
    metrics = result.metrics
    print(
        f"\nfull RWBC protocol (async): worst relative error {worst:.1%}"
        f"\n  simulated rounds: {metrics.rounds_completed}"
        f"\n  payload messages: {metrics.payload_messages}"
        f"\n  synchronizer control messages: {metrics.control_messages} "
        f"({metrics.control_messages / metrics.payload_messages:.1f}x "
        "overhead)"
    )


if __name__ == "__main__":
    main()
