"""Community detection via current-flow edge betweenness.

Girvan-Newman with Newman's current-flow scores: repeatedly remove the
edge carrying the most random-walk current until the network splits.
Applied to Zachary's karate club, it recovers the club's real 1977
fission almost perfectly.

Run:  python examples/community_detection.py
"""

from repro.core.edge_betweenness import (
    edge_current_flow_betweenness,
    girvan_newman_current_flow,
)
from repro.graphs.datasets import karate_club

# The documented 1977 split (Zachary 1977): who followed the instructor.
MR_HI_FACTION = {0, 1, 2, 3, 4, 5, 6, 7, 8, 10, 11, 12, 13, 16, 17, 19, 21}


def main() -> None:
    graph = karate_club()
    print(f"karate club: n={graph.num_nodes}, m={graph.num_edges}")

    scores = edge_current_flow_betweenness(graph)
    top5 = sorted(scores, key=scores.get, reverse=True)[:5]
    print("\nhighest-current edges (the fission lines):")
    for edge in top5:
        print(f"  {edge}: {scores[edge]:.4f}")

    parts = girvan_newman_current_flow(graph, communities=2)
    a, b = parts
    officer = set(graph.nodes()) - MR_HI_FACTION
    agreement = max(
        len(a & MR_HI_FACTION) + len(b & officer),
        len(a & officer) + len(b & MR_HI_FACTION),
    )
    print(f"\ndetected communities: sizes {len(a)} / {len(b)}")
    print(f"community A: {sorted(a)}")
    print(f"community B: {sorted(b)}")
    print(
        f"\nagreement with the real 1977 factions: {agreement}/34 members"
    )


if __name__ == "__main__":
    main()
