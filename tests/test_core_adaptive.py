"""Tests for the adaptive (walk-doubling) estimator."""

import pytest

from repro.analysis.error import mean_relative_error
from repro.core.adaptive import adaptive_montecarlo
from repro.core.exact import rwbc_exact
from repro.graphs.generators import cycle_graph, erdos_renyi_graph
from repro.graphs.graph import Graph, GraphError


class TestAdaptive:
    def test_converges_and_is_accurate(self):
        graph = erdos_renyi_graph(14, 0.35, seed=4, ensure_connected=True)
        exact = rwbc_exact(graph, target=0)
        result = adaptive_montecarlo(
            graph, target=0, tolerance=0.03, seed=1, max_walks=8192
        )
        assert result.converged
        assert mean_relative_error(result.betweenness, exact) < 0.25

    def test_tighter_tolerance_needs_more_walks(self):
        graph = cycle_graph(10)
        loose = adaptive_montecarlo(
            graph, target=0, tolerance=0.25, seed=2, max_walks=16384
        )
        tight = adaptive_montecarlo(
            graph, target=0, tolerance=0.02, seed=2, max_walks=16384
        )
        assert tight.walks_per_source > loose.walks_per_source

    def test_budget_exhaustion_reported(self):
        graph = cycle_graph(10)
        result = adaptive_montecarlo(
            graph, target=0, tolerance=0.0001, seed=3,
            initial_walks=4, max_walks=16,
        )
        assert not result.converged
        assert result.walks_per_source == 16

    def test_history_recorded(self):
        graph = cycle_graph(8)
        result = adaptive_montecarlo(
            graph, target=0, tolerance=0.05, seed=4, max_walks=4096
        )
        assert result.iterations >= 2
        assert len(result.history) == result.iterations - 1
        assert result.history[-1] < 0.05

    def test_reproducible(self):
        graph = cycle_graph(8)
        a = adaptive_montecarlo(graph, tolerance=0.1, seed=5)
        b = adaptive_montecarlo(graph, tolerance=0.1, seed=5)
        assert a.betweenness == b.betweenness
        assert a.walks_per_source == b.walks_per_source

    def test_validation(self):
        graph = cycle_graph(6)
        with pytest.raises(GraphError):
            adaptive_montecarlo(Graph(nodes=[0]))
        with pytest.raises(GraphError):
            adaptive_montecarlo(graph, tolerance=0.0)
        with pytest.raises(GraphError):
            adaptive_montecarlo(graph, initial_walks=0)
        with pytest.raises(GraphError):
            adaptive_montecarlo(graph, initial_walks=10, max_walks=5)
