"""Sharded-executor equivalence and lifecycle tests.

The correctness bar for :mod:`repro.congest.sharded` is the repo's
established one: a seeded sharded run must be *byte-identical* to the
single-process fast-path run - same betweenness values, same count
tensors, same deterministic complexity counters - for every shard
count, graph family, and fault profile.  The second half checks the
failure contract: a dying worker surfaces as a structured
:class:`~repro.congest.errors.ShardExecutionError` immediately (no
hang) and the run's worker processes and shared memory are reclaimed
on every exit path.
"""

import multiprocessing

import numpy as np
import pytest

from repro.congest.errors import ConfigError, ShardExecutionError
from repro.congest.faults import CrashWindow, FaultPlan
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.parameters import WalkParameters
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    random_tree,
)

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="sharded executor requires the fork start method",
)


def _assert_identical(base, sharded):
    assert sharded.betweenness == base.betweenness
    assert sharded.target == base.target
    assert sharded.total_rounds == base.total_rounds
    assert sharded.phase_rounds == base.phase_rounds
    assert sharded.edge_betweenness == base.edge_betweenness
    assert sharded.metrics.total_messages == base.metrics.total_messages
    assert sharded.metrics.total_bits == base.metrics.total_bits
    assert (
        sharded.metrics.max_messages_per_edge_round
        == base.metrics.max_messages_per_edge_round
    )
    assert sharded.recovery == base.recovery
    for node in base.counts:
        assert np.array_equal(sharded.counts[node], base.counts[node])


class TestShardedEquivalence:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "graph",
        [
            erdos_renyi_graph(24, 0.25, seed=3),
            cycle_graph(14),
            grid_graph(4, 4),
            random_tree(20, seed=5),
        ],
        ids=["er", "cycle", "grid", "tree"],
    )
    def test_byte_identical_to_fast_path(self, graph, shards):
        parameters = WalkParameters(length=30, walks_per_source=4)
        base = estimate_rwbc_distributed(graph, parameters, seed=11)
        sharded = estimate_rwbc_distributed(
            graph,
            parameters,
            seed=11,
            executor="sharded",
            num_shards=shards,
        )
        assert not sharded.fallback_reasons
        _assert_identical(base, sharded)

    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_byte_identical_under_loss(self, shards):
        """Reliable mode (ARQ, dedup, retransmission) is parent-side;
        the sharded kernel must reproduce it byte for byte."""
        graph = cycle_graph(10)
        parameters = WalkParameters(length=24, walks_per_source=4)
        plan = FaultPlan(drop_rate=0.08, duplicate_rate=0.04, seed=5)
        base = estimate_rwbc_distributed(
            graph, parameters, seed=11, faults=plan
        )
        sharded = estimate_rwbc_distributed(
            graph,
            parameters,
            seed=11,
            faults=plan,
            executor="sharded",
            num_shards=shards,
        )
        assert sharded.recovery["retransmissions"] > 0
        _assert_identical(base, sharded)

    def test_byte_identical_under_crash_window(self):
        graph = cycle_graph(10)
        parameters = WalkParameters(length=24, walks_per_source=4)
        plan = FaultPlan(
            drop_rate=0.05,
            seed=5,
            crashes=(CrashWindow(node=3, start=8, end=14),),
        )
        base = estimate_rwbc_distributed(
            graph, parameters, seed=11, faults=plan
        )
        sharded = estimate_rwbc_distributed(
            graph,
            parameters,
            seed=11,
            faults=plan,
            executor="sharded",
            num_shards=2,
        )
        _assert_identical(base, sharded)

    def test_single_shard_is_the_degenerate_case(self):
        """num_shards=1 still runs the worker machinery (one process)."""
        graph = erdos_renyi_graph(16, 0.3, seed=1)
        parameters = WalkParameters(length=16, walks_per_source=2)
        base = estimate_rwbc_distributed(graph, parameters, seed=2)
        sharded = estimate_rwbc_distributed(
            graph, parameters, seed=2, executor="sharded", num_shards=1
        )
        _assert_identical(base, sharded)


class TestShardedConfig:
    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigError, match="unknown executor"):
            estimate_rwbc_distributed(cycle_graph(6), executor="mpi")

    def test_num_shards_requires_sharded_executor(self):
        with pytest.raises(ConfigError, match="num_shards is only valid"):
            estimate_rwbc_distributed(cycle_graph(6), num_shards=2)

    def test_record_messages_rejected(self):
        with pytest.raises(ConfigError, match="record_messages"):
            estimate_rwbc_distributed(
                cycle_graph(6), executor="sharded", record_messages=True
            )

    def test_vectorized_false_rejected(self):
        with pytest.raises(ConfigError, match="vectorized"):
            estimate_rwbc_distributed(
                cycle_graph(6), executor="sharded", vectorized=False
            )

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ConfigError, match="exceeds"):
            estimate_rwbc_distributed(
                cycle_graph(6), executor="sharded", num_shards=7
            )

    def test_defaults_to_two_shards(self):
        graph = cycle_graph(8)
        parameters = WalkParameters(length=8, walks_per_source=1)
        base = estimate_rwbc_distributed(graph, parameters, seed=1)
        sharded = estimate_rwbc_distributed(
            graph, parameters, seed=1, executor="sharded"
        )
        _assert_identical(base, sharded)


class TestShardCrashSafety:
    def test_worker_exception_surfaces_structured(self, monkeypatch):
        """A worker that raises mid-kernel must produce a
        ShardExecutionError with shard context - not a hang, not a
        silent wrong answer.  The kernel is patched before the workers
        fork, so the failure happens inside the child process."""
        import repro.congest.sharded as sharded_mod

        def boom(*args, **kwargs):
            raise RuntimeError("injected shard failure")

        monkeypatch.setattr(sharded_mod, "counting_round_kernel", boom)
        with pytest.raises(ShardExecutionError) as excinfo:
            estimate_rwbc_distributed(
                cycle_graph(8),
                WalkParameters(length=8, walks_per_source=1),
                seed=3,
                executor="sharded",
                num_shards=2,
            )
        context = excinfo.value.context
        assert context["num_shards"] == 2
        assert context["shard"] in (0, 1)
        assert "injected shard failure" in context["detail"]
        # Cleanup ran on the error path: no orphaned workers.
        assert multiprocessing.active_children() == []

    def test_workers_and_shm_reclaimed_after_success(self):
        import glob

        before = set(glob.glob("/dev/shm/psm_*"))
        estimate_rwbc_distributed(
            cycle_graph(10),
            WalkParameters(length=8, walks_per_source=1),
            seed=3,
            executor="sharded",
            num_shards=4,
        )
        assert multiprocessing.active_children() == []
        assert set(glob.glob("/dev/shm/psm_*")) <= before
