"""Unit tests for the per-edge ARQ layer (congest.reliable)."""

import pytest

from repro.congest.errors import ProtocolError
from repro.congest.message import Message
from repro.congest.reliable import (
    ACK_WINDOW,
    KIND_ACK,
    RETRANSMIT_AFTER,
    InLink,
    OutLink,
    ReliableChannel,
)

TOKENS = frozenset({"walk"})
LATEST = frozenset({"term"})


def make_channel(node_id=0, neighbors=(1,), token_budget=2):
    return ReliableChannel(
        node_id=node_id,
        neighbors=neighbors,
        token_budget=token_budget,
        token_kinds=TOKENS,
        latest_kinds=LATEST,
    )


class TestOutLink:
    def test_assign_is_sequential(self):
        link = OutLink()
        assert [link.assign("walk", (i,), 0) for i in range(4)] == [0, 1, 2, 3]
        assert set(link.unacked) == {0, 1, 2, 3}

    def test_cumulative_ack(self):
        link = OutLink()
        for i in range(5):
            link.assign("walk", (i,), 0)
        assert link.apply_ack(2, 0) == 3
        assert set(link.unacked) == {3, 4}

    def test_selective_ack_bitmap(self):
        link = OutLink()
        for i in range(6):
            link.assign("walk", (i,), 0)
        # cum=1 plus bits for seqs 3 and 5 (offsets 1 and 3).
        assert link.apply_ack(1, 0b1010) == 4
        assert set(link.unacked) == {2, 4}

    def test_due_after_timeout(self):
        link = OutLink()
        link.assign("walk", (0,), round_number=1)
        assert link.due(1 + RETRANSMIT_AFTER - 1) == []
        assert link.due(1 + RETRANSMIT_AFTER) == [0]
        link.touch(0, 10)
        assert link.due(10 + RETRANSMIT_AFTER - 1) == []
        assert link.due(10 + RETRANSMIT_AFTER) == [0]


class TestInLink:
    def test_in_order_delivery(self):
        link = InLink()
        assert link.accept(0)
        assert link.accept(1)
        assert link.cum == 1
        assert link.ack_fields() == (1, 0)

    def test_duplicate_rejected(self):
        link = InLink()
        assert link.accept(0)
        assert not link.accept(0)
        link.accept(2)
        assert not link.accept(2)

    def test_gap_tracked_in_bitmap(self):
        link = InLink()
        link.accept(0)
        link.accept(2)
        link.accept(3)
        cum, bitmap = link.ack_fields()
        assert cum == 0
        assert bitmap == 0b110  # seqs 2 and 3 at offsets 1 and 2
        link.accept(1)  # hole fills; cum jumps past the stashed seqs
        assert link.ack_fields() == (3, 0)

    def test_bitmap_width_bounded(self):
        link = InLink()
        link.accept(ACK_WINDOW + 5)  # far beyond the window
        cum, bitmap = link.ack_fields()
        assert cum == -1
        assert bitmap < (1 << ACK_WINDOW)


class TestReliableChannel:
    def test_round_trip_exactly_once(self):
        a = make_channel(node_id=0, neighbors=(1,))
        b = make_channel(node_id=1, neighbors=(0,))
        a.queue(1, "deg", (3,))
        wire: list[Message] = []
        a.flush(1, wire.append)
        (message,) = wire
        assert message.kind == "deg"
        assert message.fields == (3, 0)  # payload + seq

        assert b.receive(message) == (3,)
        assert b.receive(message) is None  # duplicate of the same seq
        assert b.stats.duplicates_rejected == 1

        wire.clear()
        b.flush(1, wire.append)
        (ack,) = wire
        assert ack.kind == KIND_ACK
        assert a.unacked_count == 1
        a.receive(ack)
        assert a.unacked_count == 0
        wire.clear()
        a.flush(2, wire.append)
        assert wire == []  # nothing due, nothing queued, no ack owed
        assert a.drained

    def test_retransmits_until_acked(self):
        a = make_channel(node_id=0, neighbors=(1,))
        a.queue(1, "deg", (3,))
        wire: list[Message] = []
        a.flush(1, wire.append)  # original send, seq 0
        for round_number in range(2, 2 + 3 * RETRANSMIT_AFTER):
            a.flush(round_number, wire.append)
        retransmits = [m for m in wire if m.fields == (3, 0)]
        assert len(retransmits) == 1 + 3  # original + one per timeout
        assert a.stats.retransmissions == 3

    def test_flush_respects_slot_caps(self):
        a = make_channel(node_id=0, neighbors=(1,), token_budget=2)
        # 5 unacked walk tokens, all due for retransmission.
        for i in range(5):
            seq = a.register_sent(1, "walk", (i, 9, 0), round_number=0)
            assert seq == i
        # 4 queued control messages on top.
        for i in range(4):
            a.queue(1, "xch", (i, 0))
        wire: list[Message] = []
        sent_tokens = a.flush(0 + RETRANSMIT_AFTER, wire.append)
        walk = [m for m in wire if m.kind == "walk"]
        control = [m for m in wire if m.kind == "xch"]
        assert len(walk) == 2  # token_budget
        assert len(control) == 2  # control_slots
        assert sent_tokens == {1: 2}
        assert a.queued_count == 2  # the rest wait for later rounds

    def test_queue_latest_supersedes_only_unsequenced(self):
        a = make_channel(node_id=0, neighbors=(1,))
        a.queue_latest(1, "term", (5,))
        a.queue_latest(1, "term", (8,))
        assert a.queued_count == 1
        wire: list[Message] = []
        a.flush(1, wire.append)
        assert wire[0].fields == (8, 0)  # only the newest value flew
        # Once sequenced, a newer value gets its own seq.
        a.queue_latest(1, "term", (9,))
        wire.clear()
        a.flush(2, wire.append)
        assert wire[0].fields == (9, 1)

    def test_shared_seq_space_across_kinds(self):
        a = make_channel(node_id=0, neighbors=(1,))
        first = a.register_sent(1, "walk", (1, 2, 3), 0)
        a.queue(1, "deg", (4,))
        wire: list[Message] = []
        a.flush(0, wire.append)
        assert first == 0
        assert wire[0].fields[-1] == 1  # control continues the edge seq

    def test_rejects_non_neighbor_traffic(self):
        a = make_channel(node_id=0, neighbors=(1,))
        stranger = Message(sender=5, receiver=0, kind="deg", fields=(1, 0))
        with pytest.raises(ProtocolError):
            a.receive(stranger)

    def test_out_of_order_arrivals_both_fresh(self):
        a = make_channel(node_id=0, neighbors=(1,))
        b = make_channel(node_id=1, neighbors=(0,))
        a.queue(1, "deg", (10,))
        a.queue(1, "xch", (20, 0))
        wire: list[Message] = []
        a.flush(1, wire.append)
        second, first = wire[1], wire[0]
        assert b.receive(second) == (20, 0)  # seq 1 lands before seq 0
        assert b.receive(first) == (10,)
        cum, bitmap = b.inn[0].ack_fields()
        assert (cum, bitmap) == (1, 0)
