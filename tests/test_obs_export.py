"""Tests for JSONL artifact export, validation, diff, and reports."""

import json

import pytest

from repro.congest.trace import Tracer
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.parameters import WalkParameters
from repro.graphs.generators import erdos_renyi_graph
from repro.obs import Telemetry
from repro.obs.export import (
    SCHEMA,
    SchemaError,
    build_records,
    diff_artifacts,
    phase_windows,
    read_artifact,
    validate_artifact,
    write_artifact,
)
from repro.obs.report import render_diff, render_report


@pytest.fixture(scope="module")
def observed_run():
    graph = erdos_renyi_graph(12, 0.3, seed=7, ensure_connected=True)
    telemetry = Telemetry()
    tracer = Tracer(max_events=100_000)
    result = estimate_rwbc_distributed(
        graph,
        WalkParameters(length=20, walks_per_source=4),
        seed=9,
        telemetry=telemetry,
        tracer=tracer,
    )
    return result, tracer


@pytest.fixture()
def artifact_path(observed_run, tmp_path):
    result, tracer = observed_run
    path = tmp_path / "run.jsonl"
    count = write_artifact(
        path, result, meta={"graph": "er", "n": 12}, tracer=tracer
    )
    assert count > 0
    return path


class TestPhaseWindows:
    def test_full_breakdown(self):
        windows = phase_windows(
            {"setup": 3, "counting": 10, "exchange": 4, "total": 17}
        )
        assert windows == [
            ("setup", 1, 3),
            ("counting", 4, 13),
            ("exchange", 14, 17),
        ]

    def test_drain_phase_from_total(self):
        windows = phase_windows(
            {"setup": 2, "counting": 5, "exchange": 3, "total": 14}
        )
        assert windows[-1] == ("drain", 11, 14)

    def test_empty_phases_omitted(self):
        windows = phase_windows({"setup": 0, "counting": 4, "total": 4})
        assert windows == [("counting", 1, 4)]


class TestRoundTrip:
    def test_read_back(self, observed_run, artifact_path):
        result, tracer = observed_run
        artifact = read_artifact(artifact_path)
        assert artifact.header["schema"] == SCHEMA
        assert artifact.header["meta"] == {"graph": "er", "n": 12}
        assert artifact.rounds == result.metrics.rounds
        assert artifact.summary["metrics"]["rounds"] == result.metrics.rounds
        assert len(artifact.series["messages_per_round"]) == artifact.rounds
        assert len(artifact.series["bits_per_round"]) == artifact.rounds
        # Telemetry was attached, so wall clock is attributed per round.
        assert len(artifact.series["wall_per_round"]) == artifact.rounds
        assert artifact.phases, "phase records missing"
        phase_names = [phase["name"] for phase in artifact.phases]
        assert "counting" in phase_names
        assert artifact.spans, "span records missing"
        assert "bits_per_edge_round" in artifact.instruments
        assert artifact.trace_summary["events"] == len(tracer.events)
        assert len(artifact.trace) == len(tracer.events)

    def test_phase_totals_cover_run(self, observed_run, artifact_path):
        result, _ = observed_run
        artifact = read_artifact(artifact_path)
        assert (
            sum(phase["messages"] for phase in artifact.phases)
            == result.metrics.total_messages
        )
        assert (
            sum(phase["bits"] for phase in artifact.phases)
            == result.metrics.total_bits
        )

    def test_json_plain_values(self, artifact_path):
        # Every line must survive a strict JSON round trip (no numpy).
        for line in artifact_path.read_text().splitlines():
            record = json.loads(line)
            assert isinstance(record["record"], str)

    def test_export_without_telemetry(self, tmp_path):
        graph = erdos_renyi_graph(10, 0.35, seed=3, ensure_connected=True)
        result = estimate_rwbc_distributed(
            graph, WalkParameters(length=15, walks_per_source=3), seed=4
        )
        path = tmp_path / "bare.jsonl"
        write_artifact(path, result)
        artifact = read_artifact(path)
        assert artifact.spans == {}
        assert artifact.instruments == {}
        assert "wall_per_round" not in artifact.series
        assert len(artifact.series["messages_per_round"]) == artifact.rounds


class TestValidation:
    def _records(self, observed_run):
        result, _ = observed_run
        return build_records(result, meta={})

    def test_empty(self):
        with pytest.raises(SchemaError, match="empty"):
            validate_artifact([])

    def test_header_must_come_first(self, observed_run):
        records = self._records(observed_run)
        with pytest.raises(SchemaError, match="header"):
            validate_artifact(records[1:])

    def test_wrong_schema_version(self, observed_run):
        records = self._records(observed_run)
        records[0] = dict(records[0], schema="rwbc.observe/999")
        with pytest.raises(SchemaError, match="unsupported schema"):
            validate_artifact(records)

    def test_truncated_file(self, observed_run):
        records = self._records(observed_run)
        with pytest.raises(SchemaError, match="truncated"):
            validate_artifact(records[:-1])

    def test_bad_end_count(self, observed_run):
        records = self._records(observed_run)
        records[-1] = {"record": "end", "records": 1}
        with pytest.raises(SchemaError, match="end record counts"):
            validate_artifact(records)

    def test_unknown_record_type(self, observed_run):
        records = self._records(observed_run)
        records.insert(1, {"record": "mystery"})
        records[-1] = {"record": "end", "records": len(records) - 1}
        with pytest.raises(SchemaError, match="unknown record type"):
            validate_artifact(records)

    def test_series_length_mismatch(self, observed_run):
        records = self._records(observed_run)
        for record in records:
            if (
                record["record"] == "series"
                and record["name"] == "messages_per_round"
            ):
                record["values"] = record["values"][:-1]
        with pytest.raises(SchemaError, match="messages_per_round"):
            validate_artifact(records)

    def test_invalid_json_line(self, artifact_path):
        with open(artifact_path, "a", encoding="utf-8") as handle:
            handle.write("{not json\n")
        with pytest.raises(SchemaError, match="not valid JSON"):
            read_artifact(artifact_path)

    def test_missing_record_tag(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"no_tag": true}\n')
        with pytest.raises(SchemaError, match="no 'record' tag"):
            read_artifact(path)


class TestDiff:
    def test_diff_of_self_is_zero(self, artifact_path):
        artifact = read_artifact(artifact_path)
        diff = diff_artifacts(artifact, artifact)
        for triple in diff["summary"].values():
            assert triple[2] == 0
        for phase in diff["phases"].values():
            for triple in phase.values():
                assert triple[2] == 0
        for span in diff["spans"].values():
            assert span["wall_s"][2] == 0

    def test_diff_detects_changes(self, observed_run, tmp_path):
        result, _ = observed_run
        a = validate_artifact(build_records(result))
        graph = erdos_renyi_graph(12, 0.3, seed=7, ensure_connected=True)
        other = estimate_rwbc_distributed(
            graph,
            WalkParameters(length=40, walks_per_source=8),
            seed=9,
            telemetry=Telemetry(),
        )
        b = validate_artifact(build_records(other))
        diff = diff_artifacts(a, b)
        assert diff["summary"]["total_messages"][2] != 0
        assert diff["summary"]["rounds"][2] > 0


class TestReports:
    def test_render_report(self, artifact_path):
        text = render_report(read_artifact(artifact_path))
        for needle in (
            "counting",
            "rounds",
            "messages",
            "bits",
            "wall_s",
            "spans",
        ):
            assert needle in text
        assert SCHEMA in text

    def test_render_diff(self, artifact_path):
        artifact = read_artifact(artifact_path)
        diff = diff_artifacts(artifact, artifact)
        text = render_diff(diff, "a.jsonl", "b.jsonl")
        assert "a.jsonl" in text
        assert "b.jsonl" in text
        assert "rounds" in text
