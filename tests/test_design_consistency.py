"""Meta-tests: the documentation's promises are structurally true.

DESIGN.md maps every experiment to a benchmark file and every subsystem
to a module; these tests keep that map from rotting.
"""

import re
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent


class TestDesignDocument:
    def test_every_listed_bench_exists(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        bench_files = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
        assert bench_files, "DESIGN.md should reference benchmark files"
        for name in bench_files:
            assert (REPO / "benchmarks" / name).exists(), name

    def test_every_bench_file_listed(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        on_disk = {
            path.name for path in (REPO / "benchmarks").glob("test_bench_*.py")
        }
        listed = set(re.findall(r"benchmarks/(test_bench_\w+\.py)", design))
        missing = on_disk - listed - {
            # Performance-only benches need no experiment-table row, but
            # keep the exclusion list explicit so additions are conscious.
            "test_bench_solver_performance.py",
        }
        assert on_disk <= listed | {"test_bench_solver_performance.py"}, (
            f"benches not documented in DESIGN.md: {sorted(missing)}"
        )

    def test_experiment_ids_are_unique(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        ids = re.findall(r"^\| (E\d+) \|", design, flags=re.MULTILINE)
        assert len(ids) == len(set(ids))
        assert len(ids) >= 15

    def test_experiments_md_covers_design_ids(self):
        design = (REPO / "DESIGN.md").read_text(encoding="utf-8")
        experiments = (REPO / "EXPERIMENTS.md").read_text(encoding="utf-8")
        design_ids = set(
            re.findall(r"^\| (E\d+) \|", design, flags=re.MULTILINE)
        )
        for experiment_id in design_ids:
            assert re.search(
                rf"\b{experiment_id} ", experiments
            ), f"{experiment_id} has no EXPERIMENTS.md entry"


class TestReadme:
    def test_example_table_matches_disk(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        listed = set(re.findall(r"`(\w+\.py)`", readme))
        on_disk = {path.name for path in (REPO / "examples").glob("*.py")}
        missing = on_disk - listed
        assert not missing, sorted(missing)

    def test_docs_exist(self):
        for name in ("ALGORITHM.md", "MODEL.md", "API.md"):
            assert (REPO / "docs" / name).exists()


class TestExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        sorted(
            path.stem for path in (REPO / "examples").glob("*.py")
        ),
    )
    def test_example_compiles(self, name):
        import py_compile

        py_compile.compile(
            str(REPO / "examples" / f"{name}.py"), doraise=True
        )
