"""Tests for the comparator measures (sections I-II of the paper)."""

import networkx as nx
import pytest

from repro.baselines.alpha_cfbc import (
    alpha_cfbc_montecarlo,
    alpha_current_flow_betweenness,
)
from repro.baselines.brandes import shortest_path_betweenness
from repro.baselines.flow_betweenness import flow_betweenness
from repro.baselines.maxflow import max_flow
from repro.baselines.networkx_oracle import (
    networkx_rwbc,
    newman_rwbc_via_networkx,
)
from repro.baselines.pagerank import (
    pagerank_distributed,
    pagerank_montecarlo,
    pagerank_power_iteration,
)
from repro.core.exact import rwbc_exact
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, GraphError


class TestBrandes:
    def test_path_center(self):
        values = shortest_path_betweenness(path_graph(5), normalized=False)
        # Middle node of P5 lies on 2*2 = 4 of the 6 pairs... exactly:
        # pairs through node 2: (0,3),(0,4),(1,3),(1,4) = 4.
        assert values[2] == pytest.approx(4.0)
        assert values[0] == pytest.approx(0.0)

    def test_star_hub(self):
        n = 7
        values = shortest_path_betweenness(star_graph(n), normalized=True)
        assert values[0] == pytest.approx(1.0)
        for leaf in range(1, n):
            assert values[leaf] == pytest.approx(0.0)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        graph = erdos_renyi_graph(14, 0.3, seed=seed, ensure_connected=True)
        mine = shortest_path_betweenness(graph, normalized=True)
        oracle = nx.betweenness_centrality(to_networkx(graph), normalized=True)
        for node in graph.nodes():
            assert mine[node] == pytest.approx(oracle[node], abs=1e-10)

    def test_endpoints_variant(self):
        graph = path_graph(3)
        values = shortest_path_betweenness(
            graph, normalized=False, include_endpoints=True
        )
        # Node 1: interior pair (0,2) = 1, endpoint pairs (0,1),(1,2) = 2.
        assert values[1] == pytest.approx(3.0)
        assert values[0] == pytest.approx(2.0)

    def test_disconnected_ok(self):
        values = shortest_path_betweenness(
            Graph(edges=[(0, 1), (2, 3)]), normalized=False
        )
        assert all(v == 0.0 for v in values.values())

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            shortest_path_betweenness(Graph())


class TestMaxFlow:
    def test_path_unit_flow(self):
        result = max_flow(path_graph(4), 0, 3)
        assert result.value == pytest.approx(1.0)

    def test_parallel_routes(self):
        # Two node-disjoint paths 0->3 give max flow 2.
        graph = Graph(edges=[(0, 1), (1, 3), (0, 2), (2, 3)])
        result = max_flow(graph, 0, 3)
        assert result.value == pytest.approx(2.0)

    def test_complete_graph(self):
        n = 6
        result = max_flow(complete_graph(n), 0, 1)
        assert result.value == pytest.approx(n - 1)

    def test_matches_networkx(self):
        for seed in range(3):
            graph = erdos_renyi_graph(12, 0.35, seed=seed, ensure_connected=True)
            nxg = to_networkx(graph)
            nx.set_edge_attributes(nxg, 1.0, "capacity")
            expected = nx.maximum_flow_value(nxg, 0, 5)
            assert max_flow(graph, 0, 5).value == pytest.approx(expected)

    def test_flow_conservation(self):
        graph = erdos_renyi_graph(10, 0.4, seed=7, ensure_connected=True)
        result = max_flow(graph, 0, 9)
        net = {node: 0.0 for node in graph.nodes()}
        for (u, v), f in result.flow.items():
            net[u] -= f
            net[v] += f
        for node in graph.nodes():
            if node == 0:
                assert net[node] == pytest.approx(-result.value)
            elif node == 9:
                assert net[node] == pytest.approx(result.value)
            else:
                assert net[node] == pytest.approx(0.0, abs=1e-9)

    def test_through_node_endpoint(self):
        result = max_flow(path_graph(3), 0, 2)
        assert result.through_node(0, 0, 2) == result.value
        assert result.through_node(1, 0, 2) == pytest.approx(result.value)

    def test_same_endpoints_rejected(self):
        with pytest.raises(GraphError):
            max_flow(path_graph(3), 1, 1)

    def test_missing_node_rejected(self):
        with pytest.raises(GraphError):
            max_flow(path_graph(3), 0, 9)


class TestFlowBetweenness:
    def test_path_center_share(self):
        values = flow_betweenness(path_graph(5))
        # Node 2 carries the 4 spanning pairs out of the 6 pairs among
        # the other nodes (Freeman's share-of-flow normalization).
        assert values[2] == pytest.approx(4.0 / 6.0)
        assert values[2] == max(values.values())

    def test_star(self):
        values = flow_betweenness(star_graph(6))
        assert values[0] == pytest.approx(1.0)
        for leaf in range(1, 6):
            assert values[leaf] == pytest.approx(0.0)

    def test_bridge_region_dominates(self):
        """The bridge node and the two clique-attachment nodes outrank the
        clique interiors (attachments can outrank the bridge itself under
        Freeman's normalization, since intra-clique flows also cross them).
        """
        graph = barbell_graph(4, 1)
        values = flow_betweenness(graph)
        top3 = sorted(values, key=values.get, reverse=True)[:3]
        assert set(top3) == {3, 4, 5}
        interior = [0, 1, 2, 6, 7, 8]
        assert values[4] > max(values[v] for v in interior)

    def test_unnormalized_scale(self):
        raw = flow_betweenness(path_graph(3), normalized=False)
        assert raw[1] == pytest.approx(1.0)  # one pair, unit flow

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            flow_betweenness(Graph(edges=[(0, 1), (2, 3)]))


class TestPageRank:
    def test_power_iteration_sums_to_one(self):
        graph = erdos_renyi_graph(15, 0.3, seed=1, ensure_connected=True)
        ranks = pagerank_power_iteration(graph)
        assert sum(ranks.values()) == pytest.approx(1.0)

    def test_matches_networkx(self):
        graph = erdos_renyi_graph(15, 0.3, seed=2, ensure_connected=True)
        mine = pagerank_power_iteration(graph, reset_probability=0.15)
        oracle = nx.pagerank(to_networkx(graph), alpha=0.85, tol=1e-12)
        for node in graph.nodes():
            assert mine[node] == pytest.approx(oracle[node], abs=1e-6)

    def test_star_hub_dominates(self):
        ranks = pagerank_power_iteration(star_graph(8))
        assert ranks[0] == max(ranks.values())

    def test_montecarlo_approximates_exact(self):
        graph = erdos_renyi_graph(12, 0.4, seed=3, ensure_connected=True)
        exact = pagerank_power_iteration(graph)
        estimate = pagerank_montecarlo(graph, walks_per_node=4000, seed=3)
        for node in graph.nodes():
            assert estimate[node] == pytest.approx(exact[node], abs=0.02)

    def test_distributed_approximates_exact(self):
        graph = erdos_renyi_graph(12, 0.4, seed=4, ensure_connected=True)
        exact = pagerank_power_iteration(graph)
        estimate = pagerank_distributed(graph, walks_per_node=3000, seed=4)
        for node in graph.nodes():
            assert estimate[node] == pytest.approx(exact[node], abs=0.03)

    def test_invalid_reset(self):
        with pytest.raises(GraphError):
            pagerank_power_iteration(path_graph(3), reset_probability=0.0)

    def test_isolated_rejected(self):
        with pytest.raises(GraphError):
            pagerank_power_iteration(Graph(nodes=[0, 1], edges=[]))


class TestAlphaCFBC:
    def test_alpha_one_equals_rwbc(self):
        graph = grid_graph(3, 3)
        damped = alpha_current_flow_betweenness(graph, alpha=1.0)
        exact = rwbc_exact(graph)
        for node in graph.nodes():
            assert damped[node] == pytest.approx(exact[node], abs=1e-9)

    def test_converges_to_rwbc_as_alpha_grows(self):
        graph = cycle_graph(9)
        exact = rwbc_exact(graph)

        def distance(alpha):
            values = alpha_current_flow_betweenness(graph, alpha=alpha)
            return max(abs(values[v] - exact[v]) for v in graph.nodes())

        assert distance(0.999) < distance(0.9) < distance(0.5)

    def test_invalid_alpha(self):
        with pytest.raises(GraphError):
            alpha_current_flow_betweenness(cycle_graph(5), alpha=0.0)
        with pytest.raises(GraphError):
            alpha_current_flow_betweenness(cycle_graph(5), alpha=1.5)

    def test_montecarlo_approximates_exact(self):
        graph = grid_graph(3, 3)
        alpha = 0.8
        exact = alpha_current_flow_betweenness(graph, alpha=alpha)
        estimate = alpha_cfbc_montecarlo(
            graph, alpha=alpha, walks_per_source=4000, seed=5
        )
        for node in graph.nodes():
            assert estimate[node] == pytest.approx(exact[node], rel=0.2, abs=0.03)

    def test_montecarlo_alpha_bounds(self):
        with pytest.raises(GraphError):
            alpha_cfbc_montecarlo(cycle_graph(5), alpha=1.0)


class TestNetworkxOracle:
    def test_conversion_roundtrip(self):
        graph = erdos_renyi_graph(11, 0.4, seed=6, ensure_connected=True)
        newman = newman_rwbc_via_networkx(graph)
        exact = rwbc_exact(graph)
        for node in graph.nodes():
            assert newman[node] == pytest.approx(exact[node], abs=1e-8)

    def test_raw_oracle_matches_no_endpoints(self):
        graph = grid_graph(3, 4)
        oracle = networkx_rwbc(graph)
        mine = rwbc_exact(graph, include_endpoints=False)
        for node in graph.nodes():
            assert oracle[node] == pytest.approx(mine[node], abs=1e-8)

    def test_small_graph_rejected(self):
        with pytest.raises(GraphError):
            networkx_rwbc(path_graph(2))
