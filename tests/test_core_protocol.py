"""Tests for the full distributed RWBC protocol on the CONGEST simulator.

These are the system-level tests: every run exercises leader election,
the BFS tree, walk transport under bandwidth limits, termination
detection, the exchange phase, and local computation together.
"""

import math

import numpy as np
import pytest

from repro.core.estimator import default_max_rounds, estimate_rwbc_distributed
from repro.core.exact import rwbc_exact
from repro.core.montecarlo import betweenness_from_counts
from repro.core.parameters import WalkParameters
from repro.core.walk_manager import TransportPolicy
from repro.graphs.generators import (
    barbell_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, GraphError

PARAMS = WalkParameters(length=150, walks_per_source=40)


@pytest.fixture(scope="module")
def er_run():
    graph = erdos_renyi_graph(15, 0.3, seed=4, ensure_connected=True)
    result = estimate_rwbc_distributed(graph, PARAMS, seed=4)
    return graph, result


class TestEndToEnd:
    def test_smallest_graph(self):
        result = estimate_rwbc_distributed(
            path_graph(2), WalkParameters(length=4, walks_per_source=3), seed=0
        )
        assert result.betweenness[0] == pytest.approx(1.0)
        assert result.betweenness[1] == pytest.approx(1.0)

    @pytest.mark.parametrize(
        "graph",
        [path_graph(6), cycle_graph(8), star_graph(7), grid_graph(3, 3)],
        ids=["path", "cycle", "star", "grid"],
    )
    def test_estimates_near_exact(self, graph):
        exact = rwbc_exact(graph)
        result = estimate_rwbc_distributed(
            graph, WalkParameters(length=200, walks_per_source=150), seed=1
        )
        for node in graph.nodes():
            assert result.betweenness[node] == pytest.approx(
                exact[node], rel=0.25, abs=0.05
            )

    def test_estimates_er(self, er_run):
        graph, result = er_run
        exact = rwbc_exact(graph)
        errors = [
            abs(result.betweenness[v] - exact[v]) / exact[v]
            for v in graph.nodes()
        ]
        assert np.mean(errors) < 0.25

    def test_counts_match_algorithm2_arithmetic(self, er_run):
        """The distributed result equals betweenness_from_counts applied to
        the counts the nodes collected - Algorithm 2 is pure arithmetic."""
        graph, result = er_run
        n = graph.num_nodes
        counts = np.zeros((n, n), dtype=np.int64)
        for node in graph.nodes():
            counts[node] = result.counts[node]
        recomputed = betweenness_from_counts(
            graph, counts, PARAMS.walks_per_source
        )
        for node in graph.nodes():
            assert result.betweenness[node] == pytest.approx(
                recomputed[node], abs=1e-9
            )

    def test_target_column_zero(self, er_run):
        graph, result = er_run
        target = result.target
        for node in graph.nodes():
            assert result.counts[node][target] == 0

    def test_reproducible(self):
        graph = cycle_graph(7)
        params = WalkParameters(length=40, walks_per_source=10)
        a = estimate_rwbc_distributed(graph, params, seed=9)
        b = estimate_rwbc_distributed(graph, params, seed=9)
        assert a.betweenness == b.betweenness
        assert a.target == b.target
        assert a.total_rounds == b.total_rounds

    def test_different_seeds_differ(self):
        graph = cycle_graph(7)
        params = WalkParameters(length=40, walks_per_source=10)
        a = estimate_rwbc_distributed(graph, params, seed=1)
        b = estimate_rwbc_distributed(graph, params, seed=2)
        assert a.betweenness != b.betweenness


class TestPolicies:
    @pytest.mark.parametrize("policy", list(TransportPolicy))
    def test_both_policies_work(self, policy):
        graph = erdos_renyi_graph(12, 0.35, seed=3, ensure_connected=True)
        exact = rwbc_exact(graph)
        result = estimate_rwbc_distributed(
            graph,
            WalkParameters(length=120, walks_per_source=60),
            seed=3,
            policy=policy,
        )
        errors = [
            abs(result.betweenness[v] - exact[v]) / exact[v]
            for v in graph.nodes()
        ]
        assert np.mean(errors) < 0.3

    def test_batch_never_slower(self):
        """Batching coalesces tokens, so the counting phase cannot take
        more rounds than queueing at equal budget."""
        graph = star_graph(10)  # hub congestion stresses the queues
        params = WalkParameters(length=60, walks_per_source=40)
        queue = estimate_rwbc_distributed(
            graph, params, seed=5, policy=TransportPolicy.QUEUE
        )
        batch = estimate_rwbc_distributed(
            graph, params, seed=5, policy=TransportPolicy.BATCH
        )
        assert (
            batch.phase_rounds["counting"] <= queue.phase_rounds["counting"]
        )


class TestCongestCompliance:
    """Theorem 4: O(log n)-bit messages, O(1) messages per edge per round."""

    def test_message_width(self, er_run):
        graph, result = er_run
        n = graph.num_nodes
        budget = max(48, 8 * math.ceil(math.log2(n)))
        assert result.metrics.max_message_bits <= budget

    def test_messages_per_edge_bounded(self, er_run):
        _, result = er_run
        # walk_budget=2 walks + 1 term + 1 done.
        assert result.metrics.max_messages_per_edge_round <= 4

    def test_phase_round_accounting(self, er_run):
        graph, result = er_run
        phases = result.phase_rounds
        n = graph.num_nodes
        assert phases["setup"] == n + 2
        assert phases["exchange"] == n
        assert phases["counting"] >= 1
        assert phases["total"] >= phases["setup"] + phases["counting"]


class TestRoundComplexity:
    def test_counting_phase_bounded(self):
        """Lemma 2 shape: counting rounds stay within a modest multiple of
        K*n + l."""
        graph = erdos_renyi_graph(14, 0.3, seed=6, ensure_connected=True)
        params = WalkParameters(length=60, walks_per_source=12)
        result = estimate_rwbc_distributed(graph, params, seed=6)
        bound = 20 * (
            params.walks_per_source * graph.num_nodes + params.length
        )
        assert result.phase_rounds["counting"] <= bound

    def test_default_max_rounds_scale(self):
        params = WalkParameters(length=30, walks_per_source=8)
        assert default_max_rounds(10, params) > 38


class TestValidation:
    def test_single_node_rejected(self):
        with pytest.raises(GraphError):
            estimate_rwbc_distributed(Graph(nodes=[0]))

    def test_disconnected_rejected(self):
        from repro.congest.errors import ConfigError

        with pytest.raises((GraphError, ConfigError)):
            estimate_rwbc_distributed(Graph(edges=[(0, 1), (2, 3)]))

    def test_non_integer_labels_work(self):
        """Arbitrary labels are relabeled internally and mapped back."""
        graph = Graph(edges=[("a", "b"), ("b", "c")])
        result = estimate_rwbc_distributed(
            graph, WalkParameters(length=20, walks_per_source=20), seed=0
        )
        assert set(result.betweenness) == {"a", "b", "c"}
        assert result.betweenness["b"] > result.betweenness["a"]


class TestConventions:
    def test_no_endpoints_matches_exact_convention(self):
        graph = grid_graph(3, 3)
        exact = rwbc_exact(graph, include_endpoints=False)
        result = estimate_rwbc_distributed(
            graph,
            WalkParameters(length=200, walks_per_source=200),
            seed=2,
            include_endpoints=False,
        )
        for node in graph.nodes():
            assert result.betweenness[node] == pytest.approx(
                exact[node], rel=0.4, abs=0.08
            )

    def test_endpoint_floor(self):
        """With endpoints, every estimate is at least 2/n (the Eq. 7
        credit is deterministic)."""
        graph = barbell_graph(4, 2)
        result = estimate_rwbc_distributed(
            graph, WalkParameters(length=80, walks_per_source=30), seed=8
        )
        n = graph.num_nodes
        for value in result.betweenness.values():
            assert value >= 2.0 / n - 1e-9
