"""Tests for the CONGEST building blocks (BFS, leader, broadcast, sum)."""

import numpy as np
import pytest

from repro.congest.node import NodeInfo
from repro.congest.primitives.bfs import make_bfs_factory
from repro.congest.primitives.broadcast import TreeBroadcastProgram
from repro.congest.primitives.convergecast import ConvergecastSumProgram
from repro.congest.primitives.leader import LeaderElectionProgram
from repro.congest.scheduler import run_program
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    random_tree,
    star_graph,
)
from repro.graphs.properties import bfs_distances, diameter


class TestBFS:
    @pytest.mark.parametrize(
        "graph",
        [path_graph(7), cycle_graph(8), grid_graph(3, 4), star_graph(9)],
        ids=["path", "cycle", "grid", "star"],
    )
    def test_distances_match_centralized(self, graph):
        result = run_program(graph, make_bfs_factory(root=0))
        expected = bfs_distances(graph, 0)
        for node in graph.nodes():
            assert result.program(node).distance == expected[node]

    def test_parents_form_tree(self):
        graph = grid_graph(4, 4)
        result = run_program(graph, make_bfs_factory(root=0))
        for node in graph.nodes():
            program = result.program(node)
            if node == 0:
                assert program.parent is None
            else:
                parent_distance = result.program(program.parent).distance
                assert program.distance == parent_distance + 1

    def test_round_complexity_near_diameter(self):
        graph = path_graph(20)
        result = run_program(graph, make_bfs_factory(root=0))
        # Wave needs D rounds; allow +2 slack for delivery/halting.
        assert result.metrics.rounds <= diameter(graph) + 2

    def test_random_graphs(self):
        for seed in range(3):
            graph = erdos_renyi_graph(25, 0.2, seed=seed, ensure_connected=True)
            result = run_program(graph, make_bfs_factory(root=3))
            expected = bfs_distances(graph, 3)
            got = {v: result.program(v).distance for v in graph.nodes()}
            assert got == expected


def _run_leader_election(graph, seed=0):
    return run_program(graph, LeaderElectionProgram, seed=seed)


class TestLeaderElection:
    def test_unique_leader(self):
        graph = grid_graph(3, 5)
        result = _run_leader_election(graph)
        leaders = {result.program(v).state.leader_id for v in graph.nodes()}
        assert len(leaders) == 1

    def test_leader_has_no_parent(self):
        graph = cycle_graph(9)
        result = _run_leader_election(graph)
        leader = result.program(0).state.leader_id
        assert result.program(leader).state.parent is None
        assert result.program(leader).state.distance == 0

    def test_tree_is_consistent(self):
        graph = erdos_renyi_graph(20, 0.25, seed=5, ensure_connected=True)
        result = _run_leader_election(graph, seed=5)
        leader = result.program(0).state.leader_id
        # Parent/children relations are mutual and distances increase by 1.
        for node in graph.nodes():
            state = result.program(node).state
            if node != leader:
                parent_state = result.program(state.parent).state
                assert node in parent_state.children
                assert state.distance == parent_state.distance + 1

    def test_children_edges_count(self):
        """Tree edges = n - 1 (every non-leader has exactly one parent)."""
        graph = grid_graph(4, 4)
        result = _run_leader_election(graph, seed=2)
        total_children = sum(
            len(result.program(v).state.children) for v in graph.nodes()
        )
        assert total_children == graph.num_nodes - 1

    def test_leader_varies_with_seed(self):
        graph = cycle_graph(20)
        leaders = {
            _run_leader_election(graph, seed=s).program(0).state.leader_id
            for s in range(10)
        }
        assert len(leaders) > 1

    def test_single_node(self):
        from repro.graphs.graph import Graph

        result = _run_leader_election(Graph(nodes=[0]))
        state = result.program(0).state
        assert state.leader_id == 0
        assert state.parent is None


def _election_tree(graph, seed=0):
    result = _run_leader_election(graph, seed=seed)
    children = {
        v: result.program(v).state.children for v in graph.nodes()
    }
    parent = {v: result.program(v).state.parent for v in graph.nodes()}
    leader = result.program(next(iter(graph.nodes()))).state.leader_id
    return leader, parent, children


class TestBroadcast:
    def test_everyone_receives(self):
        graph = grid_graph(3, 4)
        leader, parent, children = _election_tree(graph)

        def factory(info: NodeInfo, rng: np.random.Generator):
            return TreeBroadcastProgram(
                info, rng, children, root=leader, value=12345
            )

        result = run_program(graph, factory)
        for node in graph.nodes():
            assert result.program(node).received == 12345

    def test_rounds_bounded_by_tree_height(self):
        graph = path_graph(15)
        leader, parent, children = _election_tree(graph)

        def factory(info, rng):
            return TreeBroadcastProgram(info, rng, children, leader, 7)

        result = run_program(graph, factory)
        assert result.metrics.rounds <= graph.num_nodes


class TestConvergecast:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sum_of_node_ids(self, seed):
        graph = erdos_renyi_graph(18, 0.25, seed=seed, ensure_connected=True)
        leader, parent, children = _election_tree(graph, seed=seed)

        def factory(info, rng):
            return ConvergecastSumProgram(
                info, rng, children, parent, local_value=info.node_id
            )

        result = run_program(graph, factory)
        expected = sum(graph.nodes())
        assert result.program(leader).total == expected
        for node in graph.nodes():
            if node != leader:
                assert result.program(node).total is None

    def test_tree_message_count(self):
        """Exactly one aggregation message per tree edge."""
        graph = random_tree(12, seed=3)
        leader, parent, children = _election_tree(graph, seed=3)

        def factory(info, rng):
            return ConvergecastSumProgram(info, rng, children, parent, 1)

        result = run_program(graph, factory)
        assert result.metrics.total_messages == graph.num_nodes - 1
        assert result.program(leader).total == graph.num_nodes
