"""Tests for weighted current-flow betweenness (matrix layer)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.exact import rwbc_exact
from repro.core.edge_betweenness import edge_current_flow_betweenness
from repro.core.weighted import (
    weighted_edge_betweenness,
    weighted_rwbc_exact,
)
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
)
from repro.graphs.graph import Graph, GraphError


def unit_weights(graph):
    return {edge: 1.0 for edge in graph.edges()}


def random_weights(graph, seed=0):
    rng = np.random.default_rng(seed)
    return {edge: float(rng.uniform(0.5, 3.0)) for edge in graph.edges()}


class TestWeightedNodeBetweenness:
    def test_unit_weights_reduce_to_unweighted(self):
        graph = erdos_renyi_graph(10, 0.4, seed=0, ensure_connected=True)
        weighted = weighted_rwbc_exact(graph, unit_weights(graph))
        plain = rwbc_exact(graph)
        for node in graph.nodes():
            assert weighted[node] == pytest.approx(plain[node], abs=1e-10)

    @pytest.mark.parametrize("seed", [0, 1])
    def test_matches_networkx_weighted(self, seed):
        graph = erdos_renyi_graph(9, 0.45, seed=seed, ensure_connected=True)
        weights = random_weights(graph, seed)
        nx_graph = to_networkx(graph)
        for (u, v), weight in weights.items():
            nx_graph[u][v]["weight"] = weight
        oracle = nx.current_flow_betweenness_centrality(
            nx_graph, normalized=True, weight="weight"
        )
        mine = weighted_rwbc_exact(
            graph, weights, include_endpoints=False
        )
        for node in graph.nodes():
            assert mine[node] == pytest.approx(oracle[node], abs=1e-8)

    def test_target_invariance(self):
        graph = cycle_graph(7)
        weights = random_weights(graph, 3)
        a = weighted_rwbc_exact(graph, weights, target=0)
        b = weighted_rwbc_exact(graph, weights, target=4)
        for node in graph.nodes():
            assert a[node] == pytest.approx(b[node], abs=1e-10)

    def test_heavy_detour_attracts_flow(self):
        """On a cycle, up-weighting one arc pulls current (and hence
        betweenness) toward it."""
        graph = cycle_graph(6)
        weights = unit_weights(graph)
        boosted = dict(weights)
        # Boost the 0-1-2-3 arc strongly.
        for edge in boosted:
            if set(edge) <= {0, 1, 2, 3}:
                boosted[edge] = 10.0
        plain = weighted_rwbc_exact(graph, weights)
        skew = weighted_rwbc_exact(graph, boosted)
        assert skew[1] > plain[1]
        assert skew[2] > plain[2]


class TestWeightedEdgeBetweenness:
    def test_unit_weights_reduce_to_unweighted(self):
        graph = path_graph(5)
        weighted = weighted_edge_betweenness(graph, unit_weights(graph))
        plain = edge_current_flow_betweenness(graph)
        for edge in plain:
            assert weighted[edge] == pytest.approx(plain[edge], abs=1e-10)

    def test_heavy_edge_carries_more(self):
        graph = cycle_graph(4)
        weights = unit_weights(graph)
        weights[(0, 1)] = 5.0
        values = weighted_edge_betweenness(graph, weights)
        assert values[(0, 1)] == max(values.values())


class TestValidation:
    def test_missing_weight(self):
        graph = path_graph(3)
        with pytest.raises(GraphError, match="cover"):
            weighted_rwbc_exact(graph, {(0, 1): 1.0})

    def test_non_edge_weight(self):
        graph = path_graph(3)
        with pytest.raises(GraphError, match="non-edge"):
            weighted_rwbc_exact(
                graph, {(0, 1): 1.0, (1, 2): 1.0, (0, 2): 1.0}
            )

    def test_non_positive_weight(self):
        graph = path_graph(3)
        with pytest.raises(GraphError, match="non-positive"):
            weighted_rwbc_exact(graph, {(0, 1): 0.0, (1, 2): 1.0})

    def test_double_weighting(self):
        graph = path_graph(3)
        with pytest.raises(GraphError, match="twice"):
            weighted_rwbc_exact(
                graph, {(0, 1): 1.0, (1, 0): 1.0, (1, 2): 1.0}
            )

    def test_disconnected(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        with pytest.raises(GraphError):
            weighted_rwbc_exact(graph, unit_weights(graph))
