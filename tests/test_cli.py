"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.graphs.generators import path_graph
from repro.graphs.io import write_edge_list


class TestExact:
    def test_family(self, capsys):
        assert main(["exact", "--family", "cycle", "--n", "8"]) == 0
        out = capsys.readouterr().out
        assert "exact RWBC" in out
        assert "n=8" in out

    def test_dataset(self, capsys):
        assert main(["exact", "--dataset", "florentine", "--top", "3"]) == 0
        out = capsys.readouterr().out
        # Medici top the betweenness ranking.
        assert "Medici" in out.splitlines()[1]

    def test_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.edges"
        write_edge_list(path_graph(4), path)
        assert main(["exact", "--edge-list", str(path)]) == 0
        assert "n=4" in capsys.readouterr().out

    def test_top_limits_output(self, capsys):
        main(["exact", "--family", "cycle", "--n", "10", "--top", "2"])
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 3  # header + 2 rows

    def test_no_endpoints(self, capsys):
        main(["exact", "--family", "path", "--n", "3", "--no-endpoints"])
        out = capsys.readouterr().out
        assert "0.000000" in out  # path ends score 0 in nx convention


class TestEstimate:
    def test_montecarlo(self, capsys):
        code = main(
            [
                "estimate",
                "--family",
                "cycle",
                "--n",
                "8",
                "--engine",
                "montecarlo",
                "--length",
                "40",
                "--walks",
                "20",
            ]
        )
        assert code == 0
        assert "montecarlo RWBC" in capsys.readouterr().out

    def test_distributed(self, capsys):
        code = main(
            [
                "estimate",
                "--family",
                "path",
                "--n",
                "6",
                "--length",
                "30",
                "--walks",
                "10",
                "--policy",
                "batch",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distributed RWBC" in out
        assert "rounds=" in out


class TestOtherCommands:
    def test_compare(self, capsys):
        assert main(["compare", "--family", "star", "--n", "6"]) == 0
        out = capsys.readouterr().out
        for column in ("rwbc", "spbc", "pagerank", "alpha_cfbc"):
            assert column in out

    def test_diameter(self, capsys):
        assert main(["diameter", "--family", "path", "--n", "7"]) == 0
        assert "diameter=6" in capsys.readouterr().out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "karate" in out
        assert "er" in out


class TestEdgesAndCommunities:
    def test_edges(self, capsys):
        assert main(["edges", "--family", "barbell", "--n", "10", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "edge current-flow betweenness" in out
        assert len(out.strip().splitlines()) == 4

    def test_communities_caveman(self, capsys):
        assert main(["communities", "--family", "caveman", "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "2 communities" in out
        assert "size 5" in out

    def test_communities_karate(self, capsys):
        assert main(["communities", "--dataset", "karate", "--k", "2"]) == 0
        out = capsys.readouterr().out
        assert "size 17" in out

    def test_communities_invalid_k(self, capsys):
        assert main(["communities", "--family", "path", "--n", "3", "--k", "9"]) == 2


class TestObserve:
    def _run_artifact(self, tmp_path, *extra):
        path = tmp_path / "run.jsonl"
        code = main(
            [
                "observe",
                "run",
                "--graph",
                "er",
                "--n",
                "20",
                "--length",
                "15",
                "--walks",
                "4",
                "--seed",
                "5",
                "--out",
                str(path),
                *extra,
            ]
        )
        assert code == 0
        return path

    def test_run_writes_artifact(self, tmp_path, capsys):
        path = self._run_artifact(tmp_path)
        out = capsys.readouterr().out
        assert "observed run" in out
        assert path.exists()

    def test_run_artifact_validates(self, tmp_path, capsys):
        from repro.obs.export import read_artifact

        path = self._run_artifact(tmp_path)
        artifact = read_artifact(path)
        assert artifact.header["meta"]["graph"] == "er"
        assert artifact.header["meta"]["n"] == 20
        assert artifact.spans

    def test_report(self, tmp_path, capsys):
        path = self._run_artifact(tmp_path)
        capsys.readouterr()
        assert main(["observe", "report", str(path)]) == 0
        out = capsys.readouterr().out
        assert "counting" in out
        assert "spans" in out

    def test_diff(self, tmp_path, capsys):
        path = self._run_artifact(tmp_path)
        capsys.readouterr()
        assert main(["observe", "diff", str(path), str(path)]) == 0
        out = capsys.readouterr().out
        assert "rounds" in out

    def test_trace_and_slow(self, tmp_path, capsys):
        from repro.obs.export import read_artifact

        path = self._run_artifact(tmp_path, "--slow", "--trace")
        artifact = read_artifact(path)
        assert artifact.trace_summary is not None
        assert artifact.trace

    def test_missing_artifact_is_error(self, tmp_path, capsys):
        assert main(["observe", "report", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_corrupt_artifact_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"record": "header", "schema": "other/1"}\n')
        assert main(["observe", "report", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_chaos_observe(self, tmp_path, capsys):
        from repro.obs.export import read_artifact

        path = tmp_path / "chaos.jsonl"
        code = main(
            [
                "chaos",
                "--family",
                "er",
                "--n",
                "20",
                "--length",
                "15",
                "--walks",
                "4",
                "--drop",
                "0.05",
                "--observe",
                str(path),
            ]
        )
        assert code == 0
        artifact = read_artifact(path)
        assert "faults" in artifact.header["meta"]
        totals = artifact.summary["metrics"]
        assert totals.get("faults_dropped", 0) > 0
        assert "retransmissions" in {
            name for name in artifact.series
        }


class TestSweep:
    def run_sweep(self, tmp_path, *extra):
        path = tmp_path / "BENCH_test.json"
        code = main(
            [
                "sweep",
                "--suite",
                "smoke",
                "--only",
                "er30-edges",
                "--out",
                str(path),
                "--sha",
                "test",
                *extra,
            ]
        )
        return code, path

    def test_list(self, capsys):
        assert main(["sweep", "--list"]) == 0
        out = capsys.readouterr().out
        assert "smoke" in out
        assert "er30-sync" in out

    def test_run_appends_trajectory(self, tmp_path, capsys):
        code, path = self.run_sweep(tmp_path)
        assert code == 0
        out = capsys.readouterr().out
        assert "er30-edges" in out
        assert "appended entry" in out
        from repro.obs.trajectory import load_trajectory

        data = load_trajectory(path)
        assert data["suite"] == "smoke"
        assert len(data["entries"]) == 1
        assert data["entries"][0]["sha"] == "test"

    def test_check_passes_on_identical_rerun(self, tmp_path, capsys):
        self.run_sweep(tmp_path)
        code, path = self.run_sweep(tmp_path, "--check")
        assert code == 0
        out = capsys.readouterr().out
        assert "no regressions" in out

    def test_check_fails_on_metric_change(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_test.json"
        code = main(
            ["sweep", "--suite", "smoke", "--only", "cycle8-async",
             "--out", str(path), "--sha", "test"]
        )
        assert code == 0
        data = json.loads(path.read_text())
        for name in data["entries"][-1]["scenarios"]:
            data["entries"][-1]["scenarios"][name]["messages"] += 1
        path.write_text(json.dumps(data))
        capsys.readouterr()
        code = main(
            ["sweep", "--suite", "smoke", "--only", "cycle8-async",
             "--out", str(path), "--check", "--no-append"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "regression(s)" in captured.err
        # --no-append left the mutated file as it was.
        assert len(json.loads(path.read_text())["entries"]) == 1

    def test_unknown_suite(self, capsys):
        assert main(["sweep", "--suite", "nope"]) == 2
        assert "unknown suite" in capsys.readouterr().err

    def test_trend_renders(self, tmp_path, capsys):
        _, path = self.run_sweep(tmp_path)
        capsys.readouterr()
        assert main(["observe", "trend", str(path)]) == 0
        out = capsys.readouterr().out
        assert "suite smoke" in out
        assert "er30-edges" in out

    def test_trend_scenario_filter(self, tmp_path, capsys):
        _, path = self.run_sweep(tmp_path)
        capsys.readouterr()
        assert main(
            ["observe", "trend", str(path), "--scenario", "nope"]
        ) == 0
        assert "not found" in capsys.readouterr().out

    def test_trend_rejects_bad_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main(["observe", "trend", str(path)]) == 2
        assert "error:" in capsys.readouterr().err


class TestErrors:
    def test_no_source(self, capsys):
        assert main(["exact"]) == 0 or True  # default --n without family
        # Explicit: no family/dataset/edge-list -> error exit 2.
        code = main(["exact"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_two_sources(self, capsys):
        code = main(
            ["exact", "--family", "cycle", "--dataset", "karate"]
        )
        assert code == 2

    def test_unknown_dataset(self, capsys):
        assert main(["exact", "--dataset", "nope"]) == 2

    def test_unknown_family(self, capsys):
        assert main(["exact", "--family", "nope"]) == 2

    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])


class TestDatasets:
    def test_counts(self):
        from repro.graphs.datasets import (
            florentine_families,
            karate_club,
            les_miserables,
        )

        assert karate_club().num_nodes == 34
        assert karate_club().num_edges == 78
        assert florentine_families().num_nodes == 15
        assert les_miserables().num_nodes == 77

    def test_loader(self):
        from repro.graphs.datasets import load_dataset
        from repro.graphs.graph import GraphError

        assert load_dataset("karate").num_nodes == 34
        with pytest.raises(GraphError):
            load_dataset("missing")

    def test_karate_leaders_top_betweenness(self):
        """The club's two real-world leaders top the RWBC ranking."""
        from repro.core.exact import rwbc_exact
        from repro.graphs.datasets import karate_club

        values = rwbc_exact(karate_club())
        top2 = sorted(values, key=lambda v: -values[v])[:2]
        assert set(top2) == {0, 33}
