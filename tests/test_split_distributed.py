"""Tests for the distributed split-sampling (debiasing) protocol mode."""

import numpy as np
import pytest

from repro.congest.errors import ProtocolError
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.exact import rwbc_exact
from repro.core.parameters import WalkParameters
from repro.core.protocol import ProtocolConfig
from repro.graphs.generators import cycle_graph, erdos_renyi_graph


@pytest.fixture(scope="module")
def split_run():
    graph = erdos_renyi_graph(16, 0.3, seed=16, ensure_connected=True)
    exact = rwbc_exact(graph)
    result = estimate_rwbc_distributed(
        graph,
        WalkParameters(length=60, walks_per_source=16),
        seed=16,
        split_sampling=True,
    )
    return graph, exact, result


def mean_signed(estimate, exact):
    return float(
        np.mean([(estimate[v] - exact[v]) / exact[v] for v in exact])
    )


class TestSplitMode:
    def test_outputs_present(self, split_run):
        graph, _, result = split_run
        assert result.betweenness_debiased is not None
        assert result.noise_floor is not None
        assert set(result.betweenness_debiased) == set(graph.nodes())

    def test_floor_positive_and_consistent(self, split_run):
        graph, _, result = split_run
        for node in graph.nodes():
            assert result.noise_floor[node] > 0
            assert result.betweenness_debiased[node] == pytest.approx(
                result.betweenness[node] - result.noise_floor[node]
            )

    def test_debiasing_reduces_signed_error(self, split_run):
        graph, exact, result = split_run
        plain = abs(mean_signed(result.betweenness, exact))
        debiased = abs(mean_signed(result.betweenness_debiased, exact))
        assert debiased < plain

    def test_plain_mode_has_no_split_outputs(self):
        graph = cycle_graph(6)
        result = estimate_rwbc_distributed(
            graph, WalkParameters(length=20, walks_per_source=6), seed=0
        )
        assert result.betweenness_debiased is None
        assert result.noise_floor is None

    def test_odd_k_rejected(self):
        with pytest.raises(ProtocolError):
            ProtocolConfig(length=10, walks_per_source=5, split_sampling=True)

    def test_half_counts_sum_to_counts(self, split_run):
        graph, _, result = split_run
        # counts is the combined vector; both halves contributed.
        for node in graph.nodes():
            assert np.asarray(result.counts[node]).min() >= 0

    def test_message_budget_still_respected(self, split_run):
        """The extra half-bit and second exchange integer stay within the
        O(log n) budget."""
        import math

        graph, _, result = split_run
        budget = max(48, 8 * math.ceil(math.log2(graph.num_nodes)))
        assert result.metrics.max_message_bits <= budget
