"""Fault-tolerant asynchronous execution: the synchronizer masks faults.

The headline statement of the async recovery layer: a run under message
drops, duplicates, delays, and a crash-recover window produces outputs
**identical** to the fault-free *synchronous* run of the same seed - the
retransmit/ack/dedup transport plus the canonical inbox ordering hide
every fault below the round abstraction.  These tests pin that claim for
the primitives and the full RWBC estimator, pin run-level determinism
(same seed + same plan => same outputs, message totals, and recovery
stats) the way ``test_reliable_equivalence.py`` does for the synchronous
reliable mode, and exercise the structured failure taxonomy.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.asynchronous import AsyncSimulator, run_async
from repro.congest.errors import (
    ConfigError,
    FaultInjectionError,
    RoundLimitExceeded,
    UnrecoverableLossError,
)
from repro.congest.faults import CrashWindow, FaultPlan
from repro.congest.primitives.bfs import make_bfs_factory
from repro.congest.primitives.convergecast import ConvergecastSumProgram
from repro.congest.primitives.leader import LeaderElectionProgram
from repro.congest.scheduler import run_program
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.parameters import WalkParameters
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)

#: The full fault menu: 10% drops, duplicates, delays, and one
#: crash-recover window - the ISSUE's acceptance scenario.
PLAN = FaultPlan(
    seed=11,
    drop_rate=0.1,
    duplicate_rate=0.05,
    delay_rate=0.05,
    crashes=(CrashWindow(node=2, start=5, end=12),),
)
PARAMS = WalkParameters(length=20, walks_per_source=6)


class TestPrimitivesMatchSynchronousReference:
    def test_bfs_distances(self):
        graph = grid_graph(3, 3)
        sync = run_program(graph, make_bfs_factory(0))
        lossy = run_async(
            graph, make_bfs_factory(0), seed=3, max_delay=6.0, faults=PLAN
        )
        for node in graph.nodes():
            assert (
                lossy.program(node).distance == sync.program(node).distance
            )
        # The plan really injected something.
        assert lossy.metrics.faults["dropped"] > 0
        assert lossy.metrics.retransmissions > 0
        assert lossy.metrics.crash_recoveries == 1

    def test_leader_election(self):
        graph = cycle_graph(9)
        sync = run_program(graph, LeaderElectionProgram, seed=4)
        lossy = run_async(
            graph, LeaderElectionProgram, seed=4, max_delay=4.0, faults=PLAN
        )
        for node in graph.nodes():
            assert (
                lossy.program(node).state.leader_id
                == sync.program(node).state.leader_id
            )

    def test_convergecast_sum(self):
        graph = erdos_renyi_graph(12, 0.3, seed=2, ensure_connected=True)
        election = run_program(graph, LeaderElectionProgram, seed=2)
        children = {
            v: election.program(v).state.children for v in graph.nodes()
        }
        parent = {
            v: election.program(v).state.parent for v in graph.nodes()
        }
        leader = election.program(0).state.leader_id

        def factory(info, rng):
            return ConvergecastSumProgram(
                info, rng, children, parent, local_value=info.node_id
            )

        lossy = run_async(
            graph, factory, seed=2, max_delay=8.0, faults=PLAN
        )
        assert lossy.program(leader).total == sum(graph.nodes())
        for node in graph.nodes():
            if node != leader:
                assert lossy.program(node).total is None


class TestEstimatorMatchesSynchronousReference:
    def test_bit_for_bit_betweenness(self):
        """The acceptance scenario: async + 10% drops + dups + delays +
        one crash-recover window == fault-free synchronous reference."""
        graph = cycle_graph(8)
        sync = estimate_rwbc_distributed(graph, PARAMS, seed=7)
        lossy = estimate_rwbc_distributed(
            graph,
            PARAMS,
            seed=7,
            executor="async",
            max_delay=6.0,
            faults=PLAN,
        )
        assert lossy.target == sync.target
        for node in graph.nodes():
            assert lossy.betweenness[node] == sync.betweenness[node]
            assert np.array_equal(lossy.counts[node], sync.counts[node])
        # Marker-derived phases agree; only trailing drain rounds differ.
        for phase in ("setup", "counting", "exchange"):
            assert lossy.phase_rounds[phase] == sync.phase_rounds[phase]
        assert lossy.recovery["retransmissions"] > 0
        assert lossy.recovery["crash_recoveries"] == 1
        assert lossy.metrics.faults["dropped"] > 0

    def test_fault_free_async_also_matches(self):
        graph = cycle_graph(8)
        sync = estimate_rwbc_distributed(graph, PARAMS, seed=7)
        clean = estimate_rwbc_distributed(
            graph, PARAMS, seed=7, executor="async", max_delay=6.0
        )
        assert clean.betweenness == sync.betweenness
        assert clean.recovery is None
        assert clean.metrics.retransmissions == 0

    def test_rerun_is_deterministic(self):
        """Same seed + same plan reproduces outputs AND observables:
        betweenness, message totals, per-round series, fault and
        recovery counters - all of it."""
        graph = cycle_graph(8)
        runs = [
            estimate_rwbc_distributed(
                graph,
                PARAMS,
                seed=7,
                executor="async",
                max_delay=6.0,
                faults=PLAN,
            )
            for _ in range(2)
        ]
        first, second = runs
        assert first.betweenness == second.betweenness
        assert first.metrics.summary() == second.metrics.summary()
        assert first.metrics.faults == second.metrics.faults
        assert (
            first.metrics.messages_per_round
            == second.metrics.messages_per_round
        )
        assert first.metrics.bits_per_round == second.metrics.bits_per_round
        assert first.recovery == second.recovery

    def test_per_round_series_shape(self):
        graph = cycle_graph(8)
        result = estimate_rwbc_distributed(
            graph,
            PARAMS,
            seed=7,
            executor="async",
            max_delay=6.0,
            faults=PLAN,
        )
        metrics = result.metrics
        assert len(metrics.messages_per_round) == metrics.rounds
        assert len(metrics.bits_per_round) == metrics.rounds
        assert sum(metrics.messages_per_round) == metrics.total_messages
        assert sum(metrics.bits_per_round) == metrics.total_bits


class TestDeterminismSweep:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        plan_seed=st.integers(0, 2**32 - 1),
        drop=st.floats(0.0, 0.15),
        dup=st.floats(0.0, 0.15),
        delay=st.floats(0.0, 0.15),
        crash=st.booleans(),
        seed=st.integers(0, 100),
    )
    def test_random_plans_mask_and_reproduce(
        self, plan_seed, drop, dup, delay, crash, seed
    ):
        graph = grid_graph(3, 3)
        crashes = (
            (CrashWindow(node=4, start=3, end=9),) if crash else ()
        )
        plan = FaultPlan(
            seed=plan_seed,
            drop_rate=drop,
            duplicate_rate=dup,
            delay_rate=delay,
            crashes=crashes,
        )
        sync = run_program(graph, make_bfs_factory(0))
        runs = [
            run_async(
                graph,
                make_bfs_factory(0),
                seed=seed,
                max_delay=5.0,
                faults=plan,
            )
            for _ in range(2)
        ]
        for node in graph.nodes():
            assert (
                runs[0].program(node).distance
                == sync.program(node).distance
            )
        assert runs[0].metrics.summary() == runs[1].metrics.summary()
        assert runs[0].metrics.faults == runs[1].metrics.faults


class TestFailureTaxonomy:
    def test_round_limit_carries_partial_metrics(self):
        with pytest.raises(RoundLimitExceeded) as excinfo:
            run_async(
                path_graph(6), make_bfs_factory(0), seed=1, max_rounds=2
            )
        error = excinfo.value
        assert not isinstance(error, UnrecoverableLossError)
        assert error.metrics is not None
        assert error.metrics.rounds_completed > 2
        assert error.context["max_rounds"] == 2
        assert error.context["virtual_time"] > 0

    def test_round_limit_under_faults_is_unrecoverable_loss(self):
        plan = FaultPlan(seed=5, drop_rate=0.1)
        with pytest.raises(UnrecoverableLossError) as excinfo:
            run_async(
                path_graph(6),
                make_bfs_factory(0),
                seed=1,
                max_rounds=2,
                faults=plan,
            )
        error = excinfo.value
        assert error.metrics is not None
        assert error.metrics.faults  # counters snapshotted before raise
        assert error.context["rounds_completed"] > 2

    def test_retransmit_exhaustion_names_the_edge(self):
        """A crash window far longer than the retransmit budget: the
        sender gives up and the error says exactly where and when."""
        plan = FaultPlan(
            seed=5, crashes=(CrashWindow(node=1, start=1, end=200),)
        )
        with pytest.raises(UnrecoverableLossError) as excinfo:
            run_async(
                path_graph(3),
                make_bfs_factory(0),
                seed=1,
                max_delay=4.0,
                faults=plan,
                max_retransmits=2,
            )
        context = excinfo.value.context
        assert context["retransmits"] == 2
        assert 1 in context["edge"]
        assert context["virtual_time"] > 0
        assert excinfo.value.metrics is not None

    def test_sync_round_limit_context_matches_taxonomy(self):
        """The synchronous loops populate the same structured context."""
        plan = FaultPlan(seed=5, drop_rate=0.1)
        with pytest.raises(UnrecoverableLossError) as excinfo:
            estimate_rwbc_distributed(
                cycle_graph(8), PARAMS, seed=3, faults=plan, max_rounds=5
            )
        error = excinfo.value
        assert error.context["max_rounds"] == 5
        assert error.context["faults"] is not None
        assert error.metrics is not None

    def test_fault_injection_error_is_config_error(self):
        assert issubclass(FaultInjectionError, ConfigError)
        assert issubclass(UnrecoverableLossError, RoundLimitExceeded)


class TestConfigValidation:
    def test_crash_stop_rejected(self):
        plan = FaultPlan(
            seed=5, crashes=(CrashWindow(node=1, start=1, end=None),)
        )
        with pytest.raises(FaultInjectionError):
            AsyncSimulator(path_graph(4), make_bfs_factory(0), faults=plan)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ConfigError):
            estimate_rwbc_distributed(
                cycle_graph(6), PARAMS, seed=1, executor="threads"
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"record_messages": True},
            {"vectorized": True},
        ],
        ids=["record_messages", "vectorized"],
    )
    def test_async_incompatible_options_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            estimate_rwbc_distributed(
                cycle_graph(6), PARAMS, seed=1, executor="async", **kwargs
            )

    def test_async_tracer_rejected(self):
        from repro.congest.trace import Tracer

        with pytest.raises(ConfigError):
            estimate_rwbc_distributed(
                cycle_graph(6),
                PARAMS,
                seed=1,
                executor="async",
                tracer=Tracer(),
            )
