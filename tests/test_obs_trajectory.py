"""Tests for the committed perf-trajectory layer (repro.obs.trajectory)."""

import json

import pytest

from repro.obs.export import SchemaError
from repro.obs.trajectory import (
    TRAJECTORY_SCHEMA,
    append_entry,
    compare_entries,
    git_sha,
    load_trajectory,
    machine_fingerprint,
    new_entry,
    validate_trajectory,
    write_trajectory,
)


def rows():
    return [
        {
            "scenario": "er30-sync",
            "n": 30,
            "m": 104,
            "variant": "distributed",
            "executor": "sync",
            "fault_profile": "none",
            "fast_path": True,
            "rounds": 193,
            "messages": 15454,
            "bits": 331821,
            "retransmissions": 0,
            "wall_s": 0.21,
            "checksum": "abc123",
            "faults": {},
        },
        {
            "scenario": "er30-edges",
            "n": 30,
            "m": 104,
            "variant": "edges",
            "executor": "sync",
            "fault_profile": "none",
            "wall_s": 0.001,
            "checksum": "def456",
        },
    ]


def entry(**overrides):
    built = new_entry(rows(), sha="deadbee", date="2026-08-07T00:00:00+00:00")
    built.update(overrides)
    return built


class TestEntry:
    def test_new_entry_shape(self):
        built = entry()
        assert built["sha"] == "deadbee"
        assert set(built["scenarios"]) == {"er30-sync", "er30-edges"}
        sync = built["scenarios"]["er30-sync"]
        assert sync["rounds"] == 193
        assert sync["wall_s"] == 0.21
        # Config echoes that are not metrics stay out of the entry.
        assert "faults" not in sync
        # Oracle rows only carry what they measured.
        assert "rounds" not in built["scenarios"]["er30-edges"]

    def test_defaults_filled(self):
        built = new_entry(rows())
        assert built["sha"]
        assert built["date"]
        assert built["machine"] == machine_fingerprint()

    def test_rejects_empty(self):
        with pytest.raises(SchemaError):
            new_entry([])

    def test_rejects_nameless_row(self):
        with pytest.raises(SchemaError):
            new_entry([{"rounds": 1}])

    def test_rejects_duplicate_scenario(self):
        with pytest.raises(SchemaError):
            new_entry([{"scenario": "a"}, {"scenario": "a"}])

    def test_machine_fingerprint_keys(self):
        fingerprint = machine_fingerprint()
        assert {"system", "machine", "python", "cpus"} <= set(fingerprint)

    def test_git_sha_is_string(self):
        assert isinstance(git_sha(), str)


class TestFileRoundTrip:
    def test_append_creates_and_appends(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        data = append_entry(path, entry(), suite="test")
        assert data["schema"] == TRAJECTORY_SCHEMA
        assert len(data["entries"]) == 1
        data = append_entry(path, entry(sha="cafe"), suite="test")
        assert len(data["entries"]) == 2
        loaded = load_trajectory(path)
        assert [e["sha"] for e in loaded["entries"]] == ["deadbee", "cafe"]

    def test_suite_mismatch_refused(self, tmp_path):
        path = tmp_path / "BENCH_test.json"
        append_entry(path, entry(), suite="smoke")
        with pytest.raises(SchemaError, match="tracks suite"):
            append_entry(path, entry(), suite="full")

    def test_rejects_other_schema_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(
            json.dumps(
                {"schema": "rwbc.trajectory/999", "suite": "x",
                 "entries": []}
            )
        )
        with pytest.raises(SchemaError, match="unsupported schema"):
            load_trajectory(path)

    def test_rejects_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(SchemaError, match="not valid JSON"):
            load_trajectory(path)

    def test_rejects_missing_fields(self, tmp_path):
        broken = entry()
        del broken["machine"]
        with pytest.raises(SchemaError, match="missing 'machine'"):
            validate_trajectory(
                {"schema": TRAJECTORY_SCHEMA, "suite": "x",
                 "entries": [broken]}
            )

    def test_rejects_entry_without_scenarios(self):
        with pytest.raises(SchemaError, match="no scenarios"):
            validate_trajectory(
                {"schema": TRAJECTORY_SCHEMA, "suite": "x",
                 "entries": [entry(scenarios={})]}
            )

    def test_write_validates(self, tmp_path):
        with pytest.raises(SchemaError):
            write_trajectory(tmp_path / "x.json", {"schema": "nope"})


class TestCompare:
    def test_identical_entries_pass(self):
        assert compare_entries(entry(), entry()) == []

    def test_deterministic_change_is_regression(self):
        changed = entry()
        changed["scenarios"]["er30-sync"]["messages"] += 1
        found = compare_entries(entry(), changed)
        assert [(r.scenario, r.metric) for r in found] == [
            ("er30-sync", "messages")
        ]
        # Direction does not matter: *any* change must be deliberate.
        found = compare_entries(changed, entry())
        assert [(r.scenario, r.metric) for r in found] == [
            ("er30-sync", "messages")
        ]

    def test_disappeared_scenario_is_regression(self):
        shrunk = entry()
        del shrunk["scenarios"]["er30-edges"]
        found = compare_entries(entry(), shrunk)
        assert [(r.scenario, r.metric) for r in found] == [
            ("er30-edges", "scenario")
        ]

    def test_new_scenario_is_fine(self):
        grown = entry()
        grown["scenarios"]["extra"] = {"rounds": 1}
        assert compare_entries(entry(), grown) == []

    def test_wall_regression_same_machine(self):
        slow = entry()
        slow["scenarios"]["er30-sync"]["wall_s"] = 10.0
        found = compare_entries(entry(), slow, wall_ratio=2.0)
        assert [(r.scenario, r.metric) for r in found] == [
            ("er30-sync", "wall_s")
        ]

    def test_wall_within_band_passes(self):
        slightly = entry()
        slightly["scenarios"]["er30-sync"]["wall_s"] = 0.21 * 1.5
        assert compare_entries(entry(), slightly, wall_ratio=2.0) == []

    def test_wall_skipped_across_machines(self):
        slow = entry(machine={"system": "Other", "machine": "arm64",
                              "python": "3.99", "cpus": 2})
        slow["scenarios"]["er30-sync"]["wall_s"] = 10.0
        assert compare_entries(entry(), slow) == []
        # ... unless the caller insists.
        found = compare_entries(entry(), slow, wall_clock="always")
        assert [(r.scenario, r.metric) for r in found] == [
            ("er30-sync", "wall_s")
        ]

    def test_tiny_wall_jitter_below_floor_passes(self):
        # er30-edges records ~1ms; a 5x blowup there is timer noise and
        # must stay under the absolute floor even though the ratio trips.
        noisy = entry()
        noisy["scenarios"]["er30-edges"]["wall_s"] = 0.005
        assert compare_entries(entry(), noisy, wall_ratio=2.0) == []
        # With the floor disabled the same jitter gates again.
        found = compare_entries(entry(), noisy, wall_ratio=2.0, wall_floor=0.0)
        assert [(r.scenario, r.metric) for r in found] == [
            ("er30-edges", "wall_s")
        ]

    def test_wall_off(self):
        slow = entry()
        slow["scenarios"]["er30-sync"]["wall_s"] = 10.0
        assert compare_entries(entry(), slow, wall_clock="off") == []

    def test_bad_wall_clock_mode(self):
        with pytest.raises(SchemaError):
            compare_entries(entry(), entry(), wall_clock="sometimes")


class TestCommittedTrajectory:
    """The repo-root BENCH_smoke.json must stay loadable and covering."""

    def test_committed_file_valid(self):
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / "BENCH_smoke.json"
        data = load_trajectory(path)
        assert data["suite"] == "smoke"
        assert len(data["entries"]) >= 1
        latest = data["entries"][-1]["scenarios"]
        executors = {row.get("executor") for row in latest.values()}
        profiles = {row.get("fault_profile") for row in latest.values()}
        assert {"sync", "per-message", "async"} <= executors
        assert {"none", "lossy", "chaos"} <= profiles
        assert any(row.get("fast_path") for row in latest.values())
