"""Tests for the damped-walk (distributed alpha-CFBC) protocol mode."""

import numpy as np
import pytest

from repro.baselines.alpha_cfbc import alpha_current_flow_betweenness
from repro.congest.errors import ProtocolError
from repro.core.estimator import estimate_alpha_cfbc_distributed
from repro.core.parameters import alpha_length
from repro.core.protocol import ProtocolConfig
from repro.core.walk_manager import WalkManager
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, grid_graph
from repro.graphs.graph import GraphError


class TestAlphaLength:
    def test_scales_inversely_with_gap(self):
        assert alpha_length(0.99) > alpha_length(0.9) > alpha_length(0.5)

    def test_epsilon_tightens(self):
        assert alpha_length(0.8, 0.001) > alpha_length(0.8, 0.1)

    def test_closed_form(self):
        """alpha^l <= epsilon at the returned l, and not one hop earlier."""
        alpha, epsilon = 0.85, 0.01
        length = alpha_length(alpha, epsilon)
        assert alpha**length <= epsilon
        assert alpha ** (length - 1) > epsilon

    def test_invalid(self):
        with pytest.raises(GraphError):
            alpha_length(1.0)
        with pytest.raises(GraphError):
            alpha_length(0.5, epsilon=0.0)


class TestDampedWalkManager:
    def make(self, alpha):
        return WalkManager(
            node_id=0,
            neighbors=(1, 2),
            n=4,
            target=3,
            walks_per_source=100,
            length=10,
            rng=np.random.default_rng(0),
            survival_alpha=alpha,
        )

    def test_every_node_launches(self):
        manager = WalkManager(
            node_id=3,  # the nominal target
            neighbors=(0,),
            n=4,
            target=3,
            walks_per_source=5,
            length=10,
            rng=np.random.default_rng(0),
            survival_alpha=0.5,
        )
        manager.launch()
        assert manager.held_walks == 5

    def test_thinning_kills_roughly_1_minus_alpha(self):
        manager = self.make(alpha=0.5)
        manager.receive(source=1, remaining=5, count=1000)
        assert 400 < manager.deaths < 600
        assert manager.counts[1] == 1000 - manager.deaths

    def test_target_arrivals_are_ordinary_visits(self):
        manager = WalkManager(
            node_id=3,
            neighbors=(0,),
            n=4,
            target=3,
            walks_per_source=1,
            length=10,
            rng=np.random.default_rng(1),
            survival_alpha=0.99,
        )
        manager.receive(source=0, remaining=5, count=100)
        assert manager.counts[0] > 0  # not absorbed

    def test_invalid_alpha(self):
        with pytest.raises(ProtocolError):
            self.make(alpha=1.5)
        with pytest.raises(ProtocolError):
            ProtocolConfig(length=5, walks_per_source=2, survival_alpha=0.0)


class TestDistributedAlphaCFBC:
    def test_matches_exact(self):
        graph = grid_graph(4, 4)
        alpha = 0.8
        exact = alpha_current_flow_betweenness(graph, alpha=alpha)
        result = estimate_alpha_cfbc_distributed(
            graph, alpha=alpha, walks_per_source=300, seed=3
        )
        for node in graph.nodes():
            assert result.betweenness[node] == pytest.approx(
                exact[node], rel=0.15, abs=0.02
            )

    def test_rounds_shrink_with_damping(self):
        """The section II-C speedup: smaller alpha, shorter walks, fewer
        counting rounds."""
        graph = cycle_graph(12)
        heavy = estimate_alpha_cfbc_distributed(
            graph, alpha=0.9, walks_per_source=40, seed=1
        )
        light = estimate_alpha_cfbc_distributed(
            graph, alpha=0.5, walks_per_source=40, seed=1
        )
        assert (
            light.phase_rounds["counting"] < heavy.phase_rounds["counting"]
        )

    def test_all_sources_contribute(self):
        """Damped mode has no absorbed column: every source (including
        the elected leader) leaves nonzero counts somewhere."""
        graph = erdos_renyi_graph(10, 0.4, seed=2, ensure_connected=True)
        result = estimate_alpha_cfbc_distributed(
            graph, alpha=0.7, walks_per_source=30, seed=2
        )
        n = graph.num_nodes
        totals = np.zeros(n)
        for node in graph.nodes():
            totals += np.asarray(result.counts[node])
        assert np.all(totals > 0)

    def test_reproducible(self):
        graph = cycle_graph(8)
        a = estimate_alpha_cfbc_distributed(graph, alpha=0.6, seed=9)
        b = estimate_alpha_cfbc_distributed(graph, alpha=0.6, seed=9)
        assert a.betweenness == b.betweenness

    def test_too_small(self):
        from repro.graphs.graph import Graph

        with pytest.raises(GraphError):
            estimate_alpha_cfbc_distributed(Graph(nodes=[0]), alpha=0.5)
