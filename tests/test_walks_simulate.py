"""Tests for the vectorized Monte-Carlo walk engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, GraphError
from repro.walks.absorbing import visit_counts_truncated
from repro.walks.simulate import simulate_walk_counts
from repro.walks.token import WalkToken
from repro.congest.errors import ProtocolError


class TestWalkToken:
    def test_hop_decrements(self):
        token = WalkToken(source=3, remaining=5)
        assert token.hop() == WalkToken(3, 4)

    def test_expired(self):
        assert WalkToken(0, 0).expired
        assert not WalkToken(0, 1).expired

    def test_hop_expired_raises(self):
        with pytest.raises(ProtocolError):
            WalkToken(0, 0).hop()

    def test_negative_remaining_rejected(self):
        with pytest.raises(ProtocolError):
            WalkToken(0, -1)

    def test_fields_roundtrip(self):
        token = WalkToken(7, 9)
        assert WalkToken.from_fields(token.as_fields()) == token

    def test_from_bad_fields(self):
        with pytest.raises(ProtocolError):
            WalkToken.from_fields((1, 2, 3))


class TestSimulateBasics:
    def test_counts_shape_and_target_zero(self):
        graph = cycle_graph(6)
        result = simulate_walk_counts(graph, 2, length=30, walks_per_source=5, seed=0)
        assert result.counts.shape == (6, 6)
        t = graph.index_of(2)
        assert np.all(result.counts[t, :] == 0)
        assert np.all(result.counts[:, t] == 0)

    def test_initial_visits_counted(self):
        graph = path_graph(4)
        k = 7
        result = simulate_walk_counts(graph, 3, length=1, walks_per_source=k, seed=0)
        for s in range(3):
            assert result.counts[s, s] >= k

    def test_count_initial_false(self):
        graph = path_graph(3)
        with_init = simulate_walk_counts(
            graph, 2, length=0, walks_per_source=5, seed=0, count_initial=True
        )
        without = simulate_walk_counts(
            graph, 2, length=0, walks_per_source=5, seed=0, count_initial=False
        )
        assert with_init.counts.sum() == 10  # 2 sources x 5 walks
        assert without.counts.sum() == 0

    def test_all_walks_die(self):
        graph = erdos_renyi_graph(10, 0.4, seed=1, ensure_connected=True)
        k = 4
        result = simulate_walk_counts(graph, 0, length=500, walks_per_source=k, seed=1)
        assert result.absorbed + result.expired == (10 - 1) * k

    def test_path2_deterministic(self):
        """On 0-1 with target 1, every walk hops straight into absorption."""
        graph = path_graph(2)
        result = simulate_walk_counts(graph, 1, length=10, walks_per_source=8, seed=0)
        assert result.absorbed == 8
        assert result.expired == 0
        assert result.counts[0, 0] == 8
        assert result.counts.sum() == 8

    def test_reproducible(self):
        graph = cycle_graph(7)
        a = simulate_walk_counts(graph, 0, 50, 10, seed=9)
        b = simulate_walk_counts(graph, 0, 50, 10, seed=9)
        np.testing.assert_array_equal(a.counts, b.counts)

    def test_survival_fraction(self):
        graph = cycle_graph(12)
        short = simulate_walk_counts(graph, 0, length=2, walks_per_source=20, seed=3)
        long = simulate_walk_counts(graph, 0, length=3000, walks_per_source=20, seed=3)
        assert short.survival_fraction > long.survival_fraction
        assert long.survival_fraction == 0.0


class TestSimulateValidation:
    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            simulate_walk_counts(Graph(edges=[(0, 1), (2, 3)]), 0, 10, 1)

    def test_bad_parameters(self):
        graph = path_graph(3)
        with pytest.raises(GraphError):
            simulate_walk_counts(graph, 0, -1, 1)
        with pytest.raises(GraphError):
            simulate_walk_counts(graph, 0, 10, 0)
        with pytest.raises(GraphError):
            simulate_walk_counts(Graph(nodes=[0]), 0, 10, 1)


class TestStatisticalAgreement:
    """Monte-Carlo counts converge to the truncated matrix expectation."""

    @pytest.mark.parametrize(
        "graph,target",
        [
            (path_graph(4), 3),
            (cycle_graph(5), 0),
            (star_graph(5), 2),
            (complete_graph(5), 1),
        ],
        ids=["path", "cycle", "star", "complete"],
    )
    def test_mean_counts_match_expectation(self, graph, target):
        k = 4000
        length = 40
        result = simulate_walk_counts(
            graph, target, length=length, walks_per_source=k, seed=11
        )
        expectation = visit_counts_truncated(graph, target, length)
        observed = result.counts / k
        # Monte-Carlo tolerance ~ 4 / sqrt(K) on entries of size O(1).
        np.testing.assert_allclose(observed, expectation, atol=4.0 / np.sqrt(k) * 5)


@settings(max_examples=10, deadline=None)
@given(n=st.integers(3, 12), seed=st.integers(0, 100))
def test_death_conservation(n, seed):
    graph = erdos_renyi_graph(n, 0.6, seed=seed, ensure_connected=True)
    k = 3
    result = simulate_walk_counts(graph, seed % n, length=15, walks_per_source=k, seed=seed)
    assert result.absorbed + result.expired == (n - 1) * k
    assert result.counts.min() >= 0
