"""Tests for the shared Eq. 5-8 arithmetic."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.flow_math import (
    betweenness_from_raw_flow,
    node_raw_flow,
    pair_sum_all,
    pair_sum_excluding,
)
from repro.graphs.graph import GraphError


def brute_pair_sum(w):
    n = len(w)
    return sum(
        abs(w[s] - w[t]) for s in range(n) for t in range(s + 1, n)
    )


class TestPairSum:
    def test_empty_and_singleton(self):
        assert pair_sum_all(np.array([])) == 0.0
        assert pair_sum_all(np.array([3.0])) == 0.0

    def test_two_elements(self):
        assert pair_sum_all(np.array([1.0, 4.0])) == pytest.approx(3.0)

    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        for _ in range(10):
            w = rng.normal(size=rng.integers(2, 30))
            assert pair_sum_all(w) == pytest.approx(brute_pair_sum(w))

    def test_excluding_matches_brute_force(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            n = int(rng.integers(3, 20))
            w = rng.normal(size=n)
            e = int(rng.integers(n))
            brute = sum(
                abs(w[s] - w[t])
                for s in range(n)
                for t in range(s + 1, n)
                if s != e and t != e
            )
            assert pair_sum_excluding(w, e) == pytest.approx(brute)

    def test_translation_invariant(self):
        w = np.array([1.0, -2.0, 5.0, 0.5])
        assert pair_sum_all(w) == pytest.approx(pair_sum_all(w + 100.0))


@settings(max_examples=40, deadline=None)
@given(
    w=hnp.arrays(
        np.float64,
        st.integers(2, 25),
        elements=st.floats(-1e6, 1e6, allow_nan=False),
    )
)
def test_pair_sum_property(w):
    assert pair_sum_all(w) == pytest.approx(brute_pair_sum(w), rel=1e-9, abs=1e-6)


@settings(max_examples=30, deadline=None)
@given(
    w=hnp.arrays(
        np.float64, st.integers(3, 15), elements=st.floats(-100, 100)
    ),
    scale=st.floats(0.1, 10),
)
def test_pair_sum_scales_linearly(w, scale):
    assert pair_sum_all(scale * w) == pytest.approx(
        scale * pair_sum_all(w), rel=1e-9, abs=1e-9
    )


class TestNodeRawFlow:
    def test_no_neighbors(self):
        assert node_raw_flow(np.zeros(5), [], 0) == 0.0

    def test_single_neighbor(self):
        own = np.array([1.0, 0.0, 0.0])
        other = np.array([0.0, 0.0, 0.0])
        # w = [1,0,0], pairs excluding index 0: only (1,2) -> 0.
        assert node_raw_flow(own, [other], 0) == pytest.approx(0.0)
        # Excluding index 2: pairs (0,1) -> 1. Halved -> 0.5.
        assert node_raw_flow(own, [other], 2) == pytest.approx(0.5)


class TestBetweennessFromRawFlow:
    def test_endpoint_only_node(self):
        """Zero interior flow gives the endpoint floor 2/n (Newman)."""
        n = 10
        value = betweenness_from_raw_flow(0.0, n)
        assert value == pytest.approx(2.0 / n)

    def test_scale_cancels(self):
        a = betweenness_from_raw_flow(6.0, 5, scale=1.0)
        b = betweenness_from_raw_flow(12.0, 5, scale=2.0)
        assert a == pytest.approx(b)

    def test_networkx_convention(self):
        value = betweenness_from_raw_flow(
            3.0, 4, include_endpoints=False, normalized=True
        )
        assert value == pytest.approx(3.0 / 3.0)

    def test_unnormalized(self):
        value = betweenness_from_raw_flow(3.0, 4, scale=2.0, normalized=False)
        assert value == pytest.approx((3.0 + 3 * 2.0) / 2.0)

    def test_invalid_inputs(self):
        with pytest.raises(GraphError):
            betweenness_from_raw_flow(1.0, 1)
        with pytest.raises(GraphError):
            betweenness_from_raw_flow(1.0, 5, scale=0.0)
        with pytest.raises(GraphError):
            betweenness_from_raw_flow(
                1.0, 2, include_endpoints=False, normalized=True
            )
