"""Tests for the centralized Monte-Carlo estimator (Theorems 2 and 3)."""

import numpy as np
import pytest

from repro.core.exact import rwbc_exact
from repro.core.montecarlo import (
    betweenness_from_counts,
    estimate_rwbc_montecarlo,
)
from repro.core.parameters import WalkParameters
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    fig1_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import GraphError
from repro.walks.absorbing import visit_counts_truncated


class TestBetweennessFromCounts:
    def test_exact_counts_give_exact_values(self):
        """Feeding the *expected* (truncated, long-l) counts reproduces the
        exact betweenness - the counts->b arithmetic is exact."""
        graph = grid_graph(3, 3)
        target = 4
        expectation = visit_counts_truncated(graph, target, length=4000)
        values = betweenness_from_counts(graph, expectation, walks_per_source=1)
        exact = rwbc_exact(graph, target=target)
        for node in graph.nodes():
            assert values[node] == pytest.approx(exact[node], abs=1e-6)

    def test_shape_validation(self):
        with pytest.raises(GraphError):
            betweenness_from_counts(path_graph(3), np.zeros((2, 2)), 1)

    def test_k_validation(self):
        with pytest.raises(GraphError):
            betweenness_from_counts(path_graph(3), np.zeros((3, 3)), 0)


class TestEstimator:
    def test_converges_to_exact(self):
        graph = erdos_renyi_graph(12, 0.4, seed=1, ensure_connected=True)
        exact = rwbc_exact(graph)
        result = estimate_rwbc_montecarlo(
            graph,
            WalkParameters(length=300, walks_per_source=2000),
            target=0,
            seed=2,
        )
        for node in graph.nodes():
            relative = abs(result.betweenness[node] - exact[node]) / exact[node]
            assert relative < 0.05

    def test_error_shrinks_with_k(self):
        """Theorem 3 direction: more walks, less error (averaged)."""
        graph = cycle_graph(10)
        exact = rwbc_exact(graph)

        def mean_error(k, seed):
            result = estimate_rwbc_montecarlo(
                graph,
                WalkParameters(length=200, walks_per_source=k),
                target=0,
                seed=seed,
            )
            return np.mean(
                [
                    abs(result.betweenness[v] - exact[v]) / exact[v]
                    for v in graph.nodes()
                ]
            )

        coarse = np.mean([mean_error(10, s) for s in range(5)])
        fine = np.mean([mean_error(640, s) for s in range(5)])
        assert fine < coarse / 3.0

    def test_truncation_bias(self):
        """Theorem 2 direction: too-short walks underestimate systematically
        on slow-mixing graphs."""
        graph = cycle_graph(16)
        exact = rwbc_exact(graph)
        short = estimate_rwbc_montecarlo(
            graph, WalkParameters(length=4, walks_per_source=400), target=0, seed=3
        )
        longer = estimate_rwbc_montecarlo(
            graph, WalkParameters(length=800, walks_per_source=400), target=0, seed=3
        )
        short_err = np.mean(
            [abs(short.betweenness[v] - exact[v]) for v in graph.nodes()]
        )
        long_err = np.mean(
            [abs(longer.betweenness[v] - exact[v]) for v in graph.nodes()]
        )
        assert long_err < short_err
        assert short.survival_fraction > 0.5
        assert longer.survival_fraction == 0.0

    def test_default_parameters_applied(self):
        graph = cycle_graph(8)
        result = estimate_rwbc_montecarlo(graph, seed=0)
        assert result.parameters.length >= 8
        assert result.parameters.walks_per_source >= 4

    def test_random_target_reproducible(self):
        graph = cycle_graph(9)
        a = estimate_rwbc_montecarlo(graph, seed=5)
        b = estimate_rwbc_montecarlo(graph, seed=5)
        assert a.target == b.target
        assert a.betweenness == b.betweenness

    def test_explicit_target_respected(self):
        graph = cycle_graph(9)
        result = estimate_rwbc_montecarlo(graph, target=4, seed=0)
        assert result.target == 4

    def test_fig1_c_above_floor(self):
        """The paper's motivating claim, estimated: node C's RWBC clearly
        exceeds the endpoint floor 2/n even with modest sampling."""
        from repro.graphs.generators import fig1_node_roles

        graph = fig1_graph(group_size=4)
        roles = fig1_node_roles(group_size=4)
        result = estimate_rwbc_montecarlo(
            graph,
            WalkParameters(length=300, walks_per_source=500),
            target=0,
            seed=7,
        )
        n = graph.num_nodes
        assert result.betweenness[roles["C"]] > 1.3 * (2.0 / n)

    def test_too_small_graph(self):
        from repro.graphs.graph import Graph

        with pytest.raises(GraphError):
            estimate_rwbc_montecarlo(Graph(nodes=[0]))

    def test_as_array(self):
        graph = star_graph(5)
        result = estimate_rwbc_montecarlo(graph, seed=1)
        array = result.as_array(graph)
        assert array.shape == (5,)
        assert array[0] == result.betweenness[0]
