"""Cross-loop equivalence of the *vectorized* reliable path.

The fast path's reliable machinery (array-level ARQ acceptance in
``walk_engine._dedup_claimed``, block seq assignment in
``_emit_reliable``, and the lexsort-grouped ``FaultRuntime.filter_bulk``)
must reproduce the per-message loop byte for byte.  The fixed-seed
checks in ``test_failure_injection.py`` pin a handful of schedules;
this file adds the boundary cases those seeds happen to miss, plus a
hypothesis sweep over random small plans that hunts edge-grouping
regressions.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.congest.faults import CrashWindow, FaultPlan
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.parameters import WalkParameters
from repro.core.protocol import ProtocolConfig
from repro.graphs.generators import cycle_graph, erdos_renyi_graph

PARAMS = WalkParameters(length=20, walks_per_source=6)
#: Walk launch round of the stretched reliable setup; crash windows
#: must end at or before it (estimator enforces this).
SETUP_SLACK = ProtocolConfig(
    length=PARAMS.length, walks_per_source=PARAMS.walks_per_source
).setup_slack


def _launch_round(n):
    return 2 * SETUP_SLACK * n


def _run_both_loops(graph, plan, seed=3, parameters=PARAMS):
    slow = estimate_rwbc_distributed(
        graph, parameters, seed=seed, faults=plan, vectorized=False
    )
    fast = estimate_rwbc_distributed(
        graph, parameters, seed=seed, faults=plan, vectorized=True
    )
    return slow, fast


def _assert_identical(slow, fast):
    assert slow.betweenness == fast.betweenness
    assert slow.total_rounds == fast.total_rounds
    assert slow.phase_rounds == fast.phase_rounds
    assert slow.metrics.total_messages == fast.metrics.total_messages
    assert slow.metrics.faults == fast.metrics.faults
    assert slow.recovery == fast.recovery
    for node in slow.counts:
        assert (slow.counts[node] == fast.counts[node]).all()


class TestBoundaryEquivalence:
    """Hand-picked schedules at the edges of the vectorized dedup."""

    def test_crash_through_launch_round(self):
        """A node crashed until the walk launch round misses the
        launch milestone: every token sent to it sits unacked (the
        engine's setup-phase ineligibility path) until it recovers,
        performs the missed launch, and drains the retransmissions."""
        n = 8
        graph = cycle_graph(n)
        launch = _launch_round(n)
        plan = FaultPlan(
            seed=5,
            drop_rate=0.05,
            crashes=(CrashWindow(node=2, start=launch - 30, end=launch),),
        )
        slow, fast = _run_both_loops(graph, plan)
        _assert_identical(slow, fast)
        assert slow.metrics.faults["crash_node_rounds"] == 30

    def test_duplicate_storm(self):
        """Heavy duplication floods the dedup with intra-round repeats
        of the same (edge, seq) - the first-wins tie-break the batch
        acceptance must replicate exactly."""
        graph = erdos_renyi_graph(9, 0.5, seed=2, ensure_connected=True)
        plan = FaultPlan(seed=13, duplicate_rate=0.4, drop_rate=0.05)
        slow, fast = _run_both_loops(graph, plan)
        _assert_identical(slow, fast)
        assert slow.metrics.faults["duplicated"] > 0
        assert slow.recovery["duplicates_rejected"] > 0

    def test_max_delay_slips(self):
        """Long delay slips re-order seqs across rounds, so tokens
        arrive ahead of their predecessors and park in the selective-ack
        mask (the out-of-window branch of the array acceptance)."""
        graph = erdos_renyi_graph(9, 0.5, seed=2, ensure_connected=True)
        plan = FaultPlan(
            seed=17, delay_rate=0.25, max_delay=7, drop_rate=0.05
        )
        slow, fast = _run_both_loops(graph, plan)
        _assert_identical(slow, fast)
        assert slow.metrics.faults["delayed"] > 0


@st.composite
def fault_plans(draw):
    """A random small-graph chaos schedule: rates in the protocol's
    survivable range plus an optional pre-launch crash window."""
    n = draw(st.integers(min_value=6, max_value=14))
    rates = {
        "drop_rate": draw(
            st.floats(0.0, 0.12, allow_nan=False, allow_infinity=False)
        ),
        "duplicate_rate": draw(
            st.floats(0.0, 0.2, allow_nan=False, allow_infinity=False)
        ),
        "delay_rate": draw(
            st.floats(0.0, 0.15, allow_nan=False, allow_infinity=False)
        ),
    }
    crashes = ()
    if draw(st.booleans()):
        launch = _launch_round(n)
        span = draw(st.integers(min_value=1, max_value=40))
        start = draw(st.integers(min_value=1, max_value=launch - span))
        crashes = (
            CrashWindow(
                node=draw(st.integers(min_value=0, max_value=n - 1)),
                start=start,
                end=start + span,
            ),
        )
    plan = FaultPlan(
        seed=draw(st.integers(min_value=0, max_value=2**32 - 1)),
        max_delay=draw(st.integers(min_value=1, max_value=6)),
        crashes=crashes,
        **rates,
    )
    return n, plan


@given(case=fault_plans())
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_plans_byte_identical_across_loops(case):
    """Any survivable small plan: both loops agree byte for byte on
    estimates, fault counters, and recovery stats."""
    n, plan = case
    graph = erdos_renyi_graph(n, 0.45, seed=n, ensure_connected=True)
    if plan.is_trivial:
        # Trivial plans skip reliable mode entirely; nothing to compare
        # beyond what the fault-free equivalence suite already pins.
        return
    slow, fast = _run_both_loops(graph, plan, seed=1)
    _assert_identical(slow, fast)
