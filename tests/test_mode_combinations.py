"""The protocol's modes compose: damped x split x transport policy."""

import numpy as np
import pytest

from repro.baselines.alpha_cfbc import alpha_current_flow_betweenness
from repro.core.estimator import (
    estimate_alpha_cfbc_distributed,
    estimate_rwbc_distributed,
)
from repro.core.parameters import WalkParameters
from repro.core.walk_manager import TransportPolicy
from repro.graphs.generators import erdos_renyi_graph, grid_graph


class TestCombinedModes:
    def test_alpha_with_split_sampling(self):
        """Damped walks + split debiasing together."""
        graph = grid_graph(3, 4)
        alpha = 0.7
        result = estimate_alpha_cfbc_distributed(
            graph,
            alpha=alpha,
            walks_per_source=120,
            seed=31,
            split_sampling=True,
        )
        exact = alpha_current_flow_betweenness(graph, alpha=alpha)
        assert result.betweenness_debiased is not None
        for node in graph.nodes():
            assert result.betweenness[node] == pytest.approx(
                exact[node], rel=0.3, abs=0.05
            )
            assert result.noise_floor[node] > 0

    def test_batch_with_split_sampling(self):
        graph = erdos_renyi_graph(12, 0.35, seed=32, ensure_connected=True)
        result = estimate_rwbc_distributed(
            graph,
            WalkParameters(length=60, walks_per_source=20),
            seed=32,
            policy=TransportPolicy.BATCH,
            split_sampling=True,
        )
        assert result.betweenness_debiased is not None
        # Edge estimates also present in combined mode.
        assert len(result.edge_betweenness) == graph.num_edges

    def test_alpha_with_batch(self):
        graph = erdos_renyi_graph(12, 0.35, seed=33, ensure_connected=True)
        result = estimate_alpha_cfbc_distributed(
            graph,
            alpha=0.6,
            walks_per_source=40,
            seed=33,
            policy=TransportPolicy.BATCH,
        )
        exact = alpha_current_flow_betweenness(graph, alpha=0.6)
        errors = [
            abs(result.betweenness[v] - exact[v]) / exact[v]
            for v in graph.nodes()
        ]
        assert np.mean(errors) < 0.3

    def test_all_three_together(self):
        graph = grid_graph(3, 3)
        result = estimate_alpha_cfbc_distributed(
            graph,
            alpha=0.5,
            walks_per_source=60,
            seed=34,
            policy=TransportPolicy.BATCH,
            split_sampling=True,
        )
        assert result.betweenness_debiased is not None
        assert all(np.isfinite(v) for v in result.betweenness.values())
        # Phases still account exactly.
        phases = result.phase_rounds
        assert phases["total"] == (
            phases["setup"] + phases["counting"] + phases["exchange"]
        )
