"""Tests for the exact RWBC solvers, including the oracle agreement chain:
pairs implementation == fast implementation == networkx (E10)."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import rwbc_exact, rwbc_exact_array, rwbc_exact_pairs
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    fig1_graph,
    grid_graph,
    path_graph,
    star_graph,
    random_tree,
)
from repro.graphs.graph import Graph, GraphError


class TestHandValues:
    def test_path3(self):
        values = rwbc_exact(path_graph(3))
        assert values[1] == pytest.approx(1.0)
        assert values[0] == pytest.approx(2.0 / 3.0)
        assert values[2] == pytest.approx(2.0 / 3.0)

    def test_path2(self):
        values = rwbc_exact(path_graph(2))
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(1.0)

    def test_star_hub(self):
        """Hub carries every non-adjacent pair fully; leaves only their own
        pairs."""
        n = 6
        values = rwbc_exact(star_graph(n))
        assert values[0] == pytest.approx(1.0)
        for leaf in range(1, n):
            assert values[leaf] == pytest.approx(2.0 / n)

    def test_complete_graph_uniform(self):
        values = rwbc_exact(complete_graph(6))
        unique = set(round(v, 12) for v in values.values())
        assert len(unique) == 1

    def test_cycle_uniform(self):
        values = rwbc_exact(cycle_graph(7))
        unique = set(round(v, 12) for v in values.values())
        assert len(unique) == 1

    def test_bounds(self):
        """Newman values lie in [2/n, 1]."""
        for seed in range(3):
            graph = erdos_renyi_graph(12, 0.3, seed=seed, ensure_connected=True)
            values = rwbc_exact(graph)
            n = graph.num_nodes
            for v in values.values():
                assert 2.0 / n - 1e-12 <= v <= 1.0 + 1e-12

    def test_barbell_bridge_is_max(self):
        graph = barbell_graph(5, 3)
        values = rwbc_exact(graph)
        bridge_nodes = [5, 6, 7]  # the path between cliques
        clique_interior = [0, 1, 2, 3]
        assert min(values[b] for b in bridge_nodes) > max(
            values[c] for c in clique_interior
        )


class TestTargetInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_any_target_same_answer(self, seed):
        graph = erdos_renyi_graph(11, 0.35, seed=seed, ensure_connected=True)
        reference = rwbc_exact(graph, target=0)
        for target in (3, 7, 10):
            values = rwbc_exact(graph, target=target)
            for node in graph.nodes():
                assert values[node] == pytest.approx(
                    reference[node], abs=1e-10
                )

    def test_missing_target(self):
        with pytest.raises(GraphError):
            rwbc_exact(path_graph(3), target=99)


class TestAgreementChain:
    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(5),
            cycle_graph(6),
            star_graph(6),
            grid_graph(3, 3),
            fig1_graph(3),
            random_tree(8, seed=0),
            erdos_renyi_graph(9, 0.4, seed=5, ensure_connected=True),
        ],
        ids=["path", "cycle", "star", "grid", "fig1", "tree", "er"],
    )
    def test_pairs_equals_fast(self, graph):
        fast = rwbc_exact(graph)
        pairs = rwbc_exact_pairs(graph)
        for node in graph.nodes():
            assert fast[node] == pytest.approx(pairs[node], abs=1e-10)

    @pytest.mark.parametrize(
        "graph",
        [
            path_graph(6),
            grid_graph(3, 4),
            barbell_graph(4, 2),
            erdos_renyi_graph(12, 0.35, seed=9, ensure_connected=True),
        ],
        ids=["path", "grid", "barbell", "er"],
    )
    def test_networkx_oracle(self, graph):
        """Our no-endpoints convention == networkx CFBC exactly."""
        mine = rwbc_exact(graph, include_endpoints=False, normalized=True)
        oracle = nx.current_flow_betweenness_centrality(
            to_networkx(graph), normalized=True
        )
        for node in graph.nodes():
            assert mine[node] == pytest.approx(oracle[node], abs=1e-9)

    def test_newman_from_networkx_affine_relation(self):
        """b_newman = (nx * (n-2) + 2) / n - the documented conversion."""
        graph = erdos_renyi_graph(10, 0.45, seed=2, ensure_connected=True)
        n = graph.num_nodes
        newman = rwbc_exact(graph)
        oracle = nx.current_flow_betweenness_centrality(
            to_networkx(graph), normalized=True
        )
        for node in graph.nodes():
            converted = (oracle[node] * (n - 2) + 2.0) / n
            assert newman[node] == pytest.approx(converted, abs=1e-9)


class TestArrayForm:
    def test_matches_dict(self):
        graph = cycle_graph(5)
        values = rwbc_exact(graph)
        array = rwbc_exact_array(graph)
        for i, node in enumerate(graph.canonical_order()):
            assert array[i] == values[node]


class TestValidation:
    def test_disconnected(self):
        with pytest.raises(GraphError):
            rwbc_exact(Graph(edges=[(0, 1), (2, 3)]))

    def test_single_node(self):
        with pytest.raises(GraphError):
            rwbc_exact(Graph(nodes=[0]))


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_permutation_equivariance(seed):
    """Relabeling nodes permutes betweenness values accordingly."""
    graph = erdos_renyi_graph(8, 0.45, seed=seed, ensure_connected=True)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(8)
    relabeled = Graph(nodes=range(8))
    for u, v in graph.edges():
        relabeled.add_edge(int(perm[u]), int(perm[v]))
    original = rwbc_exact(graph)
    permuted = rwbc_exact(relabeled)
    for node in graph.nodes():
        assert permuted[int(perm[node])] == pytest.approx(
            original[node], abs=1e-9
        )
