"""Tests for quantized push-sum gossip."""

import numpy as np
import pytest

from repro.congest.primitives.pushsum import gossip_average
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    random_regular_graph,
)
from repro.graphs.graph import Graph, GraphError


class TestGossipAverage:
    def test_uniform_values(self):
        graph = complete_graph(8)
        values = {v: 5 for v in graph.nodes()}
        estimates = gossip_average(graph, values, seed=0)
        for estimate in estimates.values():
            assert estimate == pytest.approx(5.0, abs=1e-3)

    def test_converges_to_mean_on_expander(self):
        graph = random_regular_graph(16, 4, seed=1)
        values = {v: v * 10 for v in graph.nodes()}
        true_mean = np.mean(list(values.values()))
        estimates = gossip_average(graph, values, seed=1)
        for estimate in estimates.values():
            assert estimate == pytest.approx(true_mean, rel=0.02)

    def test_more_rounds_tighter(self):
        graph = cycle_graph(12)  # slow mixing: rounds matter
        values = {v: (v % 3) * 7 for v in graph.nodes()}
        true_mean = np.mean(list(values.values()))

        def worst(rounds):
            estimates = gossip_average(graph, values, rounds=rounds, seed=2)
            return max(abs(e - true_mean) for e in estimates.values())

        assert worst(400) < worst(20)

    def test_er_graph(self):
        graph = erdos_renyi_graph(20, 0.3, seed=3, ensure_connected=True)
        values = {v: int(v) for v in graph.nodes()}
        estimates = gossip_average(graph, values, seed=3)
        true_mean = np.mean(list(values.values()))
        for estimate in estimates.values():
            assert estimate == pytest.approx(true_mean, rel=0.05)

    def test_negative_values(self):
        graph = complete_graph(6)
        values = {v: v - 3 for v in graph.nodes()}
        estimates = gossip_average(graph, values, seed=4)
        true_mean = np.mean(list(values.values()))
        for estimate in estimates.values():
            assert estimate == pytest.approx(true_mean, abs=0.05)

    def test_reproducible(self):
        graph = cycle_graph(8)
        values = {v: v for v in graph.nodes()}
        a = gossip_average(graph, values, seed=7)
        b = gossip_average(graph, values, seed=7)
        assert a == b

    def test_validation(self):
        graph = complete_graph(4)
        with pytest.raises(GraphError):
            gossip_average(graph, {0: 1})  # missing nodes
        with pytest.raises(GraphError):
            gossip_average(graph, {v: 0.5 for v in graph.nodes()})  # floats
        with pytest.raises(GraphError):
            gossip_average(
                Graph(edges=[(0, 1), (2, 3)]),
                {v: 1 for v in range(4)},
            )
