"""Failure-injection tests: lossy channels, with and without recovery.

The CONGEST model assumes reliable synchronous channels.  The first half
of this file documents how the *plain* protocols depend on that
assumption: lost walk tokens stall the monotone death counter, so the
RWBC protocol fails detectably instead of returning silently corrupted
values.  The second half exercises the fault-tolerant mode: under a
:class:`FaultPlan` the reliable layer restores exactly-once delivery,
the protocol completes, and both scheduler loops produce byte-identical
results for the same seeds.
"""

import numpy as np
import pytest

from repro.congest.errors import (
    ConfigError,
    ProtocolError,
    RoundLimitExceeded,
)
from repro.congest.faults import CrashWindow, FaultPlan
from repro.congest.primitives.bfs import make_bfs_factory
from repro.congest.scheduler import Simulator
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.exact import rwbc_exact
from repro.core.parameters import WalkParameters
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.properties import bfs_distances


class TestDropRateConfig:
    def test_invalid_rates(self):
        with pytest.raises(ConfigError):
            Simulator(path_graph(3), make_bfs_factory(0), drop_rate=1.0)
        with pytest.raises(ConfigError):
            Simulator(path_graph(3), make_bfs_factory(0), drop_rate=-0.1)

    def test_zero_rate_is_default_behaviour(self):
        graph = cycle_graph(6)
        lossless = Simulator(
            graph, make_bfs_factory(0), seed=1, drop_rate=0.0
        ).run()
        default = Simulator(graph, make_bfs_factory(0), seed=1).run()
        for node in graph.nodes():
            assert (
                lossless.program(node).distance
                == default.program(node).distance
            )


class TestLossyBFS:
    def test_total_loss_leaves_nodes_unreached(self):
        """With every message dropped, only the root knows anything."""
        graph = path_graph(5)
        result = Simulator(
            graph, make_bfs_factory(0), seed=0, drop_rate=0.999999
        ).run()
        # Statistically all messages are gone; distance None downstream.
        unreached = [
            v for v in graph.nodes() if result.program(v).distance is None
        ]
        assert len(unreached) >= 3

    def test_light_loss_can_inflate_distances(self):
        """Lost wave fronts mean later (longer) paths win: distances are
        upper bounds, never underestimates."""
        graph = erdos_renyi_graph(20, 0.25, seed=3, ensure_connected=True)
        exact = bfs_distances(graph, 0)
        result = Simulator(
            graph, make_bfs_factory(0), seed=3, drop_rate=0.3
        ).run()
        for node in graph.nodes():
            got = result.program(node).distance
            if got is not None:
                assert got >= exact[node]


class TestLossyRWBCProtocol:
    def test_fails_detectably_not_silently(self):
        """Without the reliable layer, loss breaks the protocol
        *loudly*: either a dropped control message trips a protocol
        invariant, or dropped walk tokens starve the termination
        detector until the round limit - never a silent wrong answer."""
        graph = cycle_graph(8)
        config = ProtocolConfig(length=40, walks_per_source=10)
        simulator = Simulator(
            graph,
            make_protocol_factory(config),
            seed=2,
            drop_rate=0.2,
            max_rounds=2000,
        )
        with pytest.raises((ProtocolError, RoundLimitExceeded)):
            simulator.run()

    def test_reproducible_drops(self):
        graph = path_graph(6)
        runs = []
        for _ in range(2):
            result = Simulator(
                graph, make_bfs_factory(0), seed=9, drop_rate=0.5
            ).run()
            runs.append(
                tuple(result.program(v).distance for v in graph.nodes())
            )
        assert runs[0] == runs[1]


def _run_both_loops(graph, plan, seed=3, parameters=None):
    """Run the reliable protocol on both scheduler loops; return
    (slow, fast) results."""
    slow = estimate_rwbc_distributed(
        graph, parameters, seed=seed, faults=plan, vectorized=False
    )
    fast = estimate_rwbc_distributed(
        graph, parameters, seed=seed, faults=plan, vectorized=True
    )
    return slow, fast


def _assert_identical(slow, fast):
    assert slow.betweenness == fast.betweenness
    assert slow.total_rounds == fast.total_rounds
    assert slow.phase_rounds == fast.phase_rounds
    assert slow.metrics.faults == fast.metrics.faults
    assert slow.recovery == fast.recovery
    for node in slow.counts:
        assert (slow.counts[node] == fast.counts[node]).all()


class TestReliableProtocol:
    """The fault-tolerant mode: completion and cross-loop equivalence."""

    PARAMS = WalkParameters(length=20, walks_per_source=6)

    def test_completes_under_drops_both_loops_identical(self):
        graph = cycle_graph(8)
        plan = FaultPlan(seed=7, drop_rate=0.1)
        slow, fast = _run_both_loops(graph, plan, parameters=self.PARAMS)
        _assert_identical(slow, fast)
        assert fast.fallback_reasons == ()  # drops did not force fallback
        assert slow.metrics.faults["dropped"] > 0
        assert slow.recovery["retransmissions"] > 0

    def test_duplicates_and_delays_both_loops_identical(self):
        graph = erdos_renyi_graph(10, 0.4, seed=1, ensure_connected=True)
        plan = FaultPlan(
            seed=11, drop_rate=0.08, duplicate_rate=0.05, delay_rate=0.05
        )
        slow, fast = _run_both_loops(graph, plan, parameters=self.PARAMS)
        _assert_identical(slow, fast)
        faults = slow.metrics.faults
        assert faults["duplicated"] > 0
        assert faults["delayed"] > 0
        assert slow.recovery["duplicates_rejected"] > 0

    def test_crash_recover_both_loops_identical(self):
        graph = erdos_renyi_graph(10, 0.4, seed=1, ensure_connected=True)
        # One crash in setup, one during counting; the launch round
        # (2 * setup_slack * n = 120) stays uncovered.
        plan = FaultPlan(
            seed=11,
            drop_rate=0.1,
            crashes=(
                CrashWindow(node=2, start=10, end=25),
                CrashWindow(node=5, start=130, end=145),
            ),
        )
        slow, fast = _run_both_loops(graph, plan, parameters=self.PARAMS)
        _assert_identical(slow, fast)
        assert slow.metrics.faults["crash_node_rounds"] == 30

    def test_zero_rate_plan_is_a_noop(self):
        """A trivial plan must not change a single byte of the run."""
        graph = cycle_graph(8)
        free = estimate_rwbc_distributed(
            graph, self.PARAMS, seed=3
        )
        trivial = estimate_rwbc_distributed(
            graph, self.PARAMS, seed=3, faults=FaultPlan()
        )
        assert trivial.betweenness == free.betweenness
        assert trivial.total_rounds == free.total_rounds
        assert trivial.recovery is None  # trivial plan stays non-reliable

    def test_fault_schedule_independent_of_protocol_seed(self):
        """The same plan injects the same schedule under different
        protocol seeds (stateless-hash contract, end to end)."""
        graph = cycle_graph(8)
        plan = FaultPlan(seed=7, drop_rate=0.1)
        runs = [
            estimate_rwbc_distributed(
                graph, self.PARAMS, seed=s, faults=plan
            )
            for s in (3, 4)
        ]
        assert runs[0].betweenness != runs[1].betweenness
        # Setup traffic (seed-independent deterministic flood) faces the
        # identical fault schedule, so the stretched setup length agrees.
        assert (
            runs[0].phase_rounds["setup"] == runs[1].phase_rounds["setup"]
        )


class TestChaosSmoke:
    """End-to-end: heavy faults, the answer stays an honest estimate."""

    def test_estimates_survive_chaos(self):
        graph = erdos_renyi_graph(12, 0.4, seed=1, ensure_connected=True)
        parameters = WalkParameters(length=24, walks_per_source=10)
        plan = FaultPlan(
            seed=11,
            drop_rate=0.15,
            crashes=(CrashWindow(node=2, start=150, end=170),),
        )
        free = estimate_rwbc_distributed(graph, parameters, seed=5)
        chaos = estimate_rwbc_distributed(
            graph, parameters, seed=5, faults=plan
        )
        assert chaos.fallback_reasons == ()
        nodes = sorted(graph.nodes())
        f = np.array([free.betweenness[v] for v in nodes])
        c = np.array([chaos.betweenness[v] for v in nodes])
        e = np.array([rwbc_exact(graph)[v] for v in nodes])
        # Faults perturb walk timing (hence trajectories), but the
        # chaos run must stay an unbiased estimate: as close to the
        # exact values as ordinary sampling noise allows.
        free_error = np.abs(f - e).max()
        chaos_error = np.abs(c - e).max()
        assert chaos_error <= max(2.5 * free_error, 0.15)
        assert np.corrcoef(c, e)[0, 1] > 0.9
