"""Failure-injection tests: what breaks when channels are lossy.

The CONGEST model assumes reliable synchronous channels.  These tests
document exactly how the protocols depend on that: lost walk tokens stall
the monotone death counter, so the RWBC protocol fails *detectably*
(round-limit exceeded) instead of returning silently corrupted values.
"""

import pytest

from repro.congest.errors import ConfigError, RoundLimitExceeded
from repro.congest.primitives.bfs import make_bfs_factory
from repro.congest.scheduler import Simulator
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, path_graph
from repro.graphs.properties import bfs_distances


class TestDropRateConfig:
    def test_invalid_rates(self):
        with pytest.raises(ConfigError):
            Simulator(path_graph(3), make_bfs_factory(0), drop_rate=1.0)
        with pytest.raises(ConfigError):
            Simulator(path_graph(3), make_bfs_factory(0), drop_rate=-0.1)

    def test_zero_rate_is_default_behaviour(self):
        graph = cycle_graph(6)
        lossless = Simulator(
            graph, make_bfs_factory(0), seed=1, drop_rate=0.0
        ).run()
        default = Simulator(graph, make_bfs_factory(0), seed=1).run()
        for node in graph.nodes():
            assert (
                lossless.program(node).distance
                == default.program(node).distance
            )


class TestLossyBFS:
    def test_total_loss_leaves_nodes_unreached(self):
        """With every message dropped, only the root knows anything."""
        graph = path_graph(5)
        result = Simulator(
            graph, make_bfs_factory(0), seed=0, drop_rate=0.999999
        ).run()
        # Statistically all messages are gone; distance None downstream.
        unreached = [
            v for v in graph.nodes() if result.program(v).distance is None
        ]
        assert len(unreached) >= 3

    def test_light_loss_can_inflate_distances(self):
        """Lost wave fronts mean later (longer) paths win: distances are
        upper bounds, never underestimates."""
        graph = erdos_renyi_graph(20, 0.25, seed=3, ensure_connected=True)
        exact = bfs_distances(graph, 0)
        result = Simulator(
            graph, make_bfs_factory(0), seed=3, drop_rate=0.3
        ).run()
        for node in graph.nodes():
            got = result.program(node).distance
            if got is not None:
                assert got >= exact[node]


class TestLossyRWBCProtocol:
    def test_fails_detectably_not_silently(self):
        """Dropped walk tokens are never counted as deaths, so the
        termination detector cannot fire and the run hits the round
        limit - a loud failure instead of a wrong answer."""
        graph = cycle_graph(8)
        config = ProtocolConfig(length=40, walks_per_source=10)
        simulator = Simulator(
            graph,
            make_protocol_factory(config),
            seed=2,
            drop_rate=0.2,
            max_rounds=2000,
        )
        with pytest.raises(RoundLimitExceeded):
            simulator.run()

    def test_reproducible_drops(self):
        graph = path_graph(6)
        runs = []
        for _ in range(2):
            result = Simulator(
                graph, make_bfs_factory(0), seed=9, drop_rate=0.5
            ).run()
            runs.append(
                tuple(result.program(v).distance for v in graph.nodes())
            )
        assert runs[0] == runs[1]
