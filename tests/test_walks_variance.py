"""Tests for the visit-count variance identities."""

import numpy as np
import pytest

from repro.graphs.generators import (
    barbell_graph,
    complete_graph,
    erdos_renyi_graph,
    path_graph,
    random_tree,
)
from repro.graphs.graph import GraphError
from repro.walks.simulate import simulate_walk_counts
from repro.walks.variance import (
    relative_visit_dispersion,
    visit_count_variance,
    walks_needed_for_dispersion,
)


class TestVarianceIdentity:
    def test_path2_deterministic(self):
        """On 0-1 with target 1, the walk visits 0 exactly once: Var = 0."""
        variance = visit_count_variance(path_graph(2), 1)
        assert variance[0, 0] == pytest.approx(0.0)

    def test_complete_graph_geometric(self):
        """On K_n with absorption, returns to the start are geometric:
        visits ~ Geometric(p_absorbed-before-return); closed-form check
        against the identity on n = 3 (visits to own source)."""
        graph = complete_graph(3)
        variance = visit_count_variance(graph, 0)
        # Walk from 1 (target 0): N_11 = expected visits to 1.
        from repro.walks.absorbing import expected_visits

        visits = expected_visits(graph, 0)
        n11 = visits[1, 1]
        expected = n11 * (2 * n11 - 1) - n11**2
        assert variance[1, 1] == pytest.approx(expected)
        # Geometric distribution: Var = (1 - p) / p^2 with mean 1/p.
        p = 1.0 / n11
        assert variance[1, 1] == pytest.approx((1 - p) / p**2)

    @pytest.mark.parametrize(
        "graph,target",
        [
            (path_graph(4), 3),
            (complete_graph(5), 0),
            (erdos_renyi_graph(8, 0.5, seed=1, ensure_connected=True), 2),
        ],
        ids=["path", "complete", "er"],
    )
    def test_matches_simulation(self, graph, target):
        """The closed form agrees with empirical per-walk variance."""
        k = 30_000
        simulate_walk_counts(
            graph, target, length=600, walks_per_source=k, seed=0
        )
        predicted = visit_count_variance(graph, target)
        # Empirical variance needs per-walk samples; reconstruct via the
        # batch: simulate in B batches of k/B and use batch means...
        # Simpler: E[X^2] = Var + mean^2 checked via many small batches.
        batches = 200
        per_batch = 150
        samples = np.zeros((batches, graph.num_nodes, graph.num_nodes))
        for b in range(batches):
            batch = simulate_walk_counts(
                graph, target, length=600, walks_per_source=per_batch,
                seed=1000 + b,
            )
            samples[b] = batch.counts / per_batch
        # Var of the batch mean = Var_single / per_batch.
        empirical_single = samples.var(axis=0, ddof=1) * per_batch
        mask = predicted > 0.05
        ratio = empirical_single[mask] / predicted[mask]
        assert np.all(ratio > 0.6)
        assert np.all(ratio < 1.5)

    def test_nonnegative(self):
        graph = erdos_renyi_graph(10, 0.4, seed=2, ensure_connected=True)
        assert np.all(visit_count_variance(graph, 0) >= 0)


class TestDispersion:
    def test_heavy_tail_ordering(self):
        """Trees/barbells disperse far more than expanders - the E4/E10
        heavy-tail finding, predicted from the matrix."""
        expander = erdos_renyi_graph(16, 0.5, seed=3, ensure_connected=True)
        tree = random_tree(16, seed=3)
        barbell = barbell_graph(6, 4)
        d_exp = relative_visit_dispersion(expander, 0)
        d_tree = relative_visit_dispersion(tree, 0)
        d_bar = relative_visit_dispersion(barbell, 0)
        assert d_tree > 1.5 * d_exp
        assert d_bar > 3 * d_exp

    def test_walks_needed_scales_with_dispersion(self):
        expander = erdos_renyi_graph(16, 0.5, seed=4, ensure_connected=True)
        barbell = barbell_graph(6, 4)
        assert walks_needed_for_dispersion(
            barbell, 0
        ) > walks_needed_for_dispersion(expander, 0)

    def test_parameter_validation(self):
        graph = path_graph(4)
        with pytest.raises(GraphError):
            walks_needed_for_dispersion(graph, 0, delta=0.0)
        with pytest.raises(GraphError):
            walks_needed_for_dispersion(graph, 0, failure=1.0)
