"""Tests for error metrics, ranking, and complexity fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.error import (
    compare_centrality,
    max_absolute_error,
    max_relative_error,
    mean_absolute_error,
    mean_relative_error,
)
from repro.analysis.fitting import fit_nlogn, fit_power_law
from repro.analysis.ranking import kendall_tau, spearman_rho, top_k_overlap
from repro.graphs.graph import GraphError


class TestErrors:
    def test_identical_zero_error(self):
        values = {0: 1.0, 1: 2.0}
        summary = compare_centrality(values, values)
        assert summary.max_absolute == 0.0
        assert summary.mean_relative == 0.0

    def test_known_values(self):
        estimate = {0: 1.1, 1: 1.8}
        exact = {0: 1.0, 1: 2.0}
        assert max_absolute_error(estimate, exact) == pytest.approx(0.2)
        assert mean_absolute_error(estimate, exact) == pytest.approx(0.15)
        assert max_relative_error(estimate, exact) == pytest.approx(0.1)
        assert mean_relative_error(estimate, exact) == pytest.approx(0.1)

    def test_zero_reference_skipped(self):
        estimate = {0: 0.5, 1: 1.5}
        exact = {0: 0.0, 1: 1.0}
        assert max_relative_error(estimate, exact) == pytest.approx(0.5)

    def test_all_zero_reference_rejected(self):
        with pytest.raises(GraphError):
            max_relative_error({0: 1.0}, {0: 0.0})

    def test_mismatched_keys(self):
        with pytest.raises(GraphError):
            max_absolute_error({0: 1.0}, {1: 1.0})

    def test_empty(self):
        with pytest.raises(GraphError):
            max_absolute_error({}, {})

    def test_as_dict(self):
        summary = compare_centrality({0: 1.0}, {0: 2.0})
        assert set(summary.as_dict()) == {
            "max_abs",
            "mean_abs",
            "max_rel",
            "mean_rel",
        }


class TestRanking:
    def test_perfect_agreement(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0}
        assert kendall_tau(a, a) == pytest.approx(1.0)
        assert spearman_rho(a, a) == pytest.approx(1.0)

    def test_perfect_disagreement(self):
        a = {0: 1.0, 1: 2.0, 2: 3.0}
        b = {0: 3.0, 1: 2.0, 2: 1.0}
        assert kendall_tau(a, b) == pytest.approx(-1.0)
        assert spearman_rho(a, b) == pytest.approx(-1.0)

    def test_top_k(self):
        a = {0: 5.0, 1: 4.0, 2: 1.0, 3: 0.5}
        b = {0: 5.0, 1: 0.1, 2: 4.0, 3: 0.5}
        assert top_k_overlap(a, b, 1) == 1.0
        assert top_k_overlap(a, b, 2) == 0.5

    def test_top_k_bounds(self):
        a = {0: 1.0, 1: 2.0}
        with pytest.raises(GraphError):
            top_k_overlap(a, a, 0)
        with pytest.raises(GraphError):
            top_k_overlap(a, a, 3)

    def test_too_few_nodes(self):
        with pytest.raises(GraphError):
            kendall_tau({0: 1.0}, {0: 1.0})


class TestFitting:
    def test_exact_power_law_recovered(self):
        xs = np.array([10.0, 20.0, 40.0, 80.0])
        ys = 3.0 * xs**1.7
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.7, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_power_law([1.0, 2.0, 4.0], [2.0, 4.0, 8.0])
        assert fit.predict(8.0) == pytest.approx(16.0, rel=1e-6)

    def test_nlogn_recovered(self):
        xs = np.array([16.0, 64.0, 256.0, 1024.0])
        ys = 2.5 * xs * np.log2(xs)
        fit = fit_nlogn(xs, ys)
        assert fit.coefficient == pytest.approx(2.5, rel=1e-9)
        assert fit.max_relative_residual < 1e-9

    def test_nlogn_rejects_linear(self):
        """Purely linear data shows visible residuals against n log n."""
        xs = np.array([16.0, 64.0, 256.0, 1024.0])
        ys = 5.0 * xs
        fit = fit_nlogn(xs, ys)
        assert fit.max_relative_residual > 0.2

    def test_validation(self):
        with pytest.raises(GraphError):
            fit_power_law([1.0], [1.0])
        with pytest.raises(GraphError):
            fit_power_law([1.0, -1.0], [1.0, 1.0])
        with pytest.raises(GraphError):
            fit_power_law([1.0, 2.0], [1.0])


@settings(max_examples=20, deadline=None)
@given(
    values=st.lists(
        st.floats(0.1, 100.0), min_size=2, max_size=20, unique=True
    )
)
def test_rank_metrics_bounded(values):
    a = {i: v for i, v in enumerate(values)}
    shuffled = list(values)
    np.random.default_rng(0).shuffle(shuffled)
    b = {i: v for i, v in enumerate(shuffled)}
    assert -1.0 - 1e-9 <= kendall_tau(a, b) <= 1.0 + 1e-9
    assert -1.0 - 1e-9 <= spearman_rho(a, b) <= 1.0 + 1e-9
