"""Tests for the Theorem 7 cut-traffic measurement (E8)."""

import math

import pytest

from repro.congest.scheduler import Simulator
from repro.congest.transport import BandwidthPolicy
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.graphs.graph import GraphError
from repro.lowerbound.construction import instance_to_graph
from repro.lowerbound.disjointness import random_instance
from repro.lowerbound.twoparty import analyze_cut_traffic


@pytest.fixture(scope="module")
def recorded_run():
    instance = random_instance(3, seed=1)
    construction = instance_to_graph(instance)
    graph, mapping = construction.graph.relabeled()
    # Labels are already 0..n-1 in the construction, so the relabeling is
    # the identity; assert that to keep cut-node sets valid.
    assert all(node == index for node, index in mapping.items())
    config = ProtocolConfig(length=60, walks_per_source=8)
    policy = BandwidthPolicy(n=graph.num_nodes, messages_per_edge=4)
    simulator = Simulator(
        graph,
        make_protocol_factory(config),
        policy=policy,
        seed=1,
        record_messages=True,
    )
    return construction, policy, simulator.run()


class TestCutAnalysis:
    def test_simulation_inequality(self, recorded_run):
        """bits over the cut <= rounds * 2 * c_k * B (Theorem 7's channel)."""
        construction, policy, result = recorded_run
        analysis = analyze_cut_traffic(result, construction, policy)
        assert analysis.simulation_inequality_holds
        assert analysis.bits_crossed > 0
        assert analysis.rounds == result.metrics.rounds

    def test_cut_edges_counted(self, recorded_run):
        construction, policy, result = recorded_run
        analysis = analyze_cut_traffic(result, construction, policy)
        assert analysis.cut_edges == len(construction.cut_edges())

    def test_implied_round_bound(self, recorded_run):
        """Rearranged Theorem 7: the implied round bound for the DISJ
        communication volume is consistent with the run."""
        construction, policy, result = recorded_run
        analysis = analyze_cut_traffic(result, construction, policy)
        n_vals = construction.n_subsets
        cc_bits = n_vals * max(1, math.ceil(math.log2(n_vals * n_vals)))
        bound = analysis.implied_round_lower_bound(cc_bits)
        assert bound > 0
        # Our protocol is approximate, so it may run fewer rounds than the
        # exact-problem bound would demand; both orderings are legal.
        assert math.isfinite(bound)

    def test_probe_side_switch(self, recorded_run):
        construction, policy, result = recorded_run
        with_alice = analyze_cut_traffic(
            result, construction, policy, probe_with_alice=True
        )
        with_bob = analyze_cut_traffic(
            result, construction, policy, probe_with_alice=False
        )
        # P has N edges to each side; moving it across the cut keeps the
        # cut size identical (N swaps for N) but changes traffic.
        assert with_alice.cut_edges == with_bob.cut_edges

    def test_unrecorded_run_rejected(self):
        instance = random_instance(2, seed=0)
        construction = instance_to_graph(instance)
        config = ProtocolConfig(length=30, walks_per_source=4)
        policy = BandwidthPolicy(
            n=construction.graph.num_nodes, messages_per_edge=4
        )
        result = Simulator(
            construction.graph,
            make_protocol_factory(config),
            policy=policy,
            seed=0,
            record_messages=False,
        ).run()
        with pytest.raises(GraphError):
            analyze_cut_traffic(result, construction, policy)
