"""Unit tests for the core Graph data structure."""

import numpy as np
import pytest

from repro.graphs.graph import Graph, GraphError


class TestConstruction:
    def test_empty_graph(self):
        graph = Graph()
        assert graph.num_nodes == 0
        assert graph.num_edges == 0
        assert list(graph.nodes()) == []
        assert list(graph.edges()) == []

    def test_nodes_only(self):
        graph = Graph(nodes=[3, 1, 2])
        assert graph.num_nodes == 3
        assert graph.num_edges == 0

    def test_edges_imply_nodes(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        assert graph.num_nodes == 3
        assert graph.num_edges == 2

    def test_duplicate_edge_ignored(self):
        graph = Graph(edges=[(0, 1), (1, 0), (0, 1)])
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(edges=[(0, 0)])

    def test_add_existing_node_noop(self):
        graph = Graph(nodes=[0])
        graph.add_node(0)
        assert graph.num_nodes == 1


class TestQueries:
    def test_neighbors(self):
        graph = Graph(edges=[(0, 1), (0, 2)])
        assert graph.neighbors(0) == frozenset({1, 2})
        assert graph.neighbors(1) == frozenset({0})

    def test_neighbors_missing_node(self):
        with pytest.raises(GraphError):
            Graph().neighbors(0)

    def test_degree(self):
        graph = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert graph.degree(0) == 3
        assert graph.degree(3) == 1

    def test_degree_missing_node(self):
        with pytest.raises(GraphError):
            Graph().degree(9)

    def test_has_edge_symmetric(self):
        graph = Graph(edges=[(0, 1)])
        assert graph.has_edge(0, 1)
        assert graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)

    def test_contains_and_len(self):
        graph = Graph(edges=[(0, 1)])
        assert 0 in graph
        assert 5 not in graph
        assert len(graph) == 2

    def test_edges_emitted_once(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        edges = list(graph.edges())
        assert len(edges) == 3
        assert len({frozenset(e) for e in edges}) == 3


class TestMutation:
    def test_remove_edge(self):
        graph = Graph(edges=[(0, 1), (1, 2)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 1
        assert graph.num_nodes == 3

    def test_remove_missing_edge(self):
        with pytest.raises(GraphError):
            Graph(edges=[(0, 1)]).remove_edge(1, 2)

    def test_remove_node(self):
        graph = Graph(edges=[(0, 1), (1, 2), (0, 2)])
        graph.remove_node(1)
        assert graph.num_nodes == 2
        assert graph.num_edges == 1
        assert graph.has_edge(0, 2)

    def test_remove_missing_node(self):
        with pytest.raises(GraphError):
            Graph().remove_node(0)


class TestCanonicalOrder:
    def test_sorted_order(self):
        graph = Graph(nodes=[5, 2, 9])
        assert graph.canonical_order() == (2, 5, 9)

    def test_index_roundtrip(self):
        graph = Graph(nodes=[5, 2, 9])
        for i, node in enumerate(graph.canonical_order()):
            assert graph.index_of(node) == i

    def test_index_missing_node(self):
        with pytest.raises(GraphError):
            Graph(nodes=[1]).index_of(2)

    def test_cache_invalidated_on_mutation(self):
        graph = Graph(nodes=[1, 3])
        assert graph.canonical_order() == (1, 3)
        graph.add_node(2)
        assert graph.canonical_order() == (1, 2, 3)
        assert graph.index_of(2) == 1


class TestMatrices:
    def test_adjacency_matrix_triangle(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0)])
        expected = np.array(
            [[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float
        )
        np.testing.assert_array_equal(graph.adjacency_matrix(), expected)

    def test_adjacency_symmetric(self):
        graph = Graph(edges=[(0, 1), (1, 2), (3, 0)])
        matrix = graph.adjacency_matrix()
        np.testing.assert_array_equal(matrix, matrix.T)

    def test_degree_vector_matches_row_sums(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        np.testing.assert_array_equal(
            graph.degree_vector(), graph.adjacency_matrix().sum(axis=1)
        )

    def test_laplacian_rows_sum_to_zero(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)])
        np.testing.assert_allclose(
            graph.laplacian_matrix().sum(axis=1), np.zeros(4)
        )


class TestDerivedGraphs:
    def test_copy_is_independent(self):
        graph = Graph(edges=[(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_nodes == 2
        assert clone.num_nodes == 3

    def test_subgraph(self):
        graph = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = graph.subgraph([0, 1, 2])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2

    def test_subgraph_missing_node(self):
        with pytest.raises(GraphError):
            Graph(nodes=[0]).subgraph([0, 7])

    def test_relabeled(self):
        graph = Graph(edges=[(10, 20), (20, 30)])
        relabeled, mapping = graph.relabeled()
        assert sorted(relabeled.nodes()) == [0, 1, 2]
        assert relabeled.has_edge(mapping[10], mapping[20])
        assert relabeled.has_edge(mapping[20], mapping[30])

    def test_equality(self):
        a = Graph(edges=[(0, 1), (1, 2)])
        b = Graph(edges=[(1, 2), (0, 1)])
        assert a == b
        b.add_edge(0, 2)
        assert a != b
