"""Tests for information / current-flow closeness centrality."""

import networkx as nx
import pytest

from repro.analysis.ranking import kendall_tau
from repro.baselines.information import (
    current_flow_closeness,
    information_centrality,
)
from repro.graphs.convert import to_networkx
from repro.graphs.generators import (
    complete_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, GraphError


class TestInformationCentrality:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_networkx(self, seed):
        """networkx drops the Stephenson-Zelen ``n`` numerator; the exact
        relation is ``ours = n * networkx``."""
        graph = erdos_renyi_graph(12, 0.35, seed=seed, ensure_connected=True)
        n = graph.num_nodes
        mine = information_centrality(graph)
        oracle = nx.information_centrality(to_networkx(graph))
        for node in graph.nodes():
            assert mine[node] == pytest.approx(n * oracle[node], rel=1e-8)

    def test_star_hub_dominates(self):
        values = information_centrality(star_graph(8))
        assert values[0] == max(values.values())

    def test_complete_graph_uniform(self):
        values = information_centrality(complete_graph(6))
        assert len({round(v, 10) for v in values.values()}) == 1

    def test_path_center_dominates(self):
        values = information_centrality(path_graph(7))
        assert values[3] == max(values.values())

    def test_validation(self):
        with pytest.raises(GraphError):
            information_centrality(Graph(nodes=[0]))
        with pytest.raises(GraphError):
            information_centrality(Graph(edges=[(0, 1), (2, 3)]))


class TestCurrentFlowCloseness:
    def test_same_ranking_as_information(self):
        graph = erdos_renyi_graph(14, 0.3, seed=3, ensure_connected=True)
        info = information_centrality(graph)
        closeness = current_flow_closeness(graph)
        assert kendall_tau(info, closeness) == pytest.approx(1.0)

    def test_path_values_by_hand(self):
        """P3: R(1, .) = 1 + 1 = 2 -> closeness 2/2 = 1; ends: 1 + 2 = 3."""
        values = current_flow_closeness(path_graph(3))
        assert values[1] == pytest.approx(1.0)
        assert values[0] == pytest.approx(2.0 / 3.0)

    def test_matches_networkx_cfcc(self):
        graph = erdos_renyi_graph(10, 0.4, seed=4, ensure_connected=True)
        mine = current_flow_closeness(graph)
        oracle = nx.current_flow_closeness_centrality(to_networkx(graph))
        # networkx omits the (n-1) numerator scaling; ranking identical
        # and values proportional.
        n = graph.num_nodes
        for node in graph.nodes():
            assert mine[node] == pytest.approx(
                oracle[node] * (n - 1), rel=1e-8
            )
