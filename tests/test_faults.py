"""Unit tests for the fault-injection subsystem (congest.faults).

The load-bearing property is the determinism contract: fault decisions
are a stateless hash of ``(seed, round, edge, kind, index)``, so the
per-message and bulk code paths - fed the same traffic in different
containers - must reach identical decisions.
"""

import numpy as np
import pytest

from repro.congest.errors import FaultInjectionError
from repro.congest.faults import (
    CrashWindow,
    EdgeFaultRates,
    FaultPlan,
    FaultRuntime,
)
from repro.congest.message import Message


def _msg(sender, receiver, kind="walk", fields=(1, 2)):
    return Message(sender=sender, receiver=receiver, kind=kind, fields=fields)


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(drop_rate=1.0)
        with pytest.raises(FaultInjectionError):
            FaultPlan(duplicate_rate=-0.1)
        with pytest.raises(FaultInjectionError):
            FaultPlan(delay_rate=2.0)

    def test_max_delay_positive(self):
        with pytest.raises(FaultInjectionError):
            FaultPlan(max_delay=0)

    def test_crash_window_shape(self):
        with pytest.raises(FaultInjectionError):
            CrashWindow(node=0, start=0)  # round 0 has no deliveries
        with pytest.raises(FaultInjectionError):
            CrashWindow(node=0, start=5, end=5)
        with pytest.raises(FaultInjectionError):
            CrashWindow(node=-1, start=1)

    def test_crash_window_coverage(self):
        window = CrashWindow(node=3, start=4, end=7)
        assert [window.covers(r) for r in range(3, 8)] == [
            False, True, True, True, False,
        ]
        forever = CrashWindow(node=3, start=4)
        assert forever.covers(10**9)

    def test_is_trivial(self):
        assert FaultPlan().is_trivial
        assert not FaultPlan(drop_rate=0.1).is_trivial
        assert not FaultPlan(crashes=(CrashWindow(node=0, start=1),)).is_trivial
        assert not FaultPlan(
            edge_overrides={(0, 1): EdgeFaultRates(drop=0.5)}
        ).is_trivial
        assert FaultPlan(
            edge_overrides={(0, 1): EdgeFaultRates()}
        ).is_trivial

    def test_from_drop_rate_matches_legacy_knob(self):
        plan = FaultPlan.from_drop_rate(0.25, seed=7)
        assert plan.drop_rate == 0.25
        assert plan.seed == 7
        assert plan.rates_for(0, 1) == (0.25, 0.0, 0.0)

    def test_edge_overrides_take_precedence(self):
        plan = FaultPlan(
            drop_rate=0.1,
            edge_overrides={(2, 3): EdgeFaultRates(drop=0.9, delay=0.05)},
        )
        assert plan.rates_for(0, 1) == (0.1, 0.0, 0.0)
        assert plan.rates_for(2, 3) == (0.9, 0.0, 0.05)
        # Directed: the reverse edge keeps the global rates.
        assert plan.rates_for(3, 2) == (0.1, 0.0, 0.0)


class TestDeterminism:
    def test_same_plan_same_fates(self):
        plan = FaultPlan(seed=42, drop_rate=0.3, duplicate_rate=0.1)
        traffic = [_msg(0, 1) for _ in range(50)] + [
            _msg(1, 0, kind="term") for _ in range(20)
        ]
        outcomes = []
        for _ in range(2):
            runtime = FaultRuntime(plan)
            runtime.begin_round(5)
            delivered = runtime.filter_messages(5, list(traffic))
            outcomes.append(
                ([(m.sender, m.receiver, m.kind) for m in delivered],
                 runtime.counters.summary())
            )
        assert outcomes[0] == outcomes[1]

    def test_different_seeds_differ(self):
        traffic = [_msg(0, 1) for _ in range(200)]
        counts = set()
        for seed in (1, 2, 3):
            runtime = FaultRuntime(FaultPlan(seed=seed, drop_rate=0.5))
            runtime.begin_round(1)
            counts.add(len(runtime.filter_messages(1, list(traffic))))
        assert len(counts) > 1

    def test_rounds_are_independent(self):
        plan = FaultPlan(seed=9, drop_rate=0.5)
        runtime = FaultRuntime(plan)
        survivors = []
        for round_number in (1, 2):
            runtime.begin_round(round_number)
            delivered = runtime.filter_messages(
                round_number, [_msg(0, 1, fields=(i,)) for i in range(100)]
            )
            survivors.append(tuple(m.fields[0] for m in delivered))
        assert survivors[0] != survivors[1]

    def test_bulk_matches_per_message(self):
        """The same traffic expressed as bulk rows and as individual
        messages must face identical per-index decisions."""
        plan = FaultPlan(seed=13, drop_rate=0.3, duplicate_rate=0.1)
        count = 40

        as_messages = FaultRuntime(plan)
        as_messages.begin_round(3)
        delivered = as_messages.filter_messages(
            3, [_msg(0, 1, fields=(7, 7)) for _ in range(count)]
        )

        as_bulk = FaultRuntime(plan)
        as_bulk.begin_round(3)
        new_mult = as_bulk.filter_bulk(
            3,
            "walk",
            senders=np.array([0]),
            receivers=np.array([1]),
            fields=np.array([[7, 7]]),
            multiplicity=np.array([count]),
        )
        assert int(new_mult[0]) == len(delivered)
        assert (
            as_messages.counters.summary() == as_bulk.counters.summary()
        )

    def test_control_then_bulk_index_composition(self):
        """Bulk rows occupy the indices *after* the round's control
        messages of the same (edge, kind) - and zero-rate fate calls
        still advance the shared counter."""
        plan = FaultPlan(seed=21, drop_rate=0.4)
        total = 30
        split = 10

        whole = FaultRuntime(plan)
        whole.begin_round(2)
        whole.filter_messages(
            2, [_msg(0, 1) for _ in range(total)]
        )

        composed = FaultRuntime(plan)
        composed.begin_round(2)
        composed.filter_messages(2, [_msg(0, 1) for _ in range(split)])
        composed.filter_bulk(
            2,
            "walk",
            senders=np.array([0]),
            receivers=np.array([1]),
            fields=np.array([[1, 2]]),
            multiplicity=np.array([total - split]),
        )
        assert (
            whole.counters.summary() == composed.counters.summary()
        )


class TestFilterSemantics:
    def test_zero_rate_plan_is_identity(self):
        runtime = FaultRuntime(FaultPlan())
        runtime.begin_round(1)
        traffic = [_msg(0, 1, fields=(i,)) for i in range(10)]
        assert runtime.filter_messages(1, traffic) == traffic
        assert runtime.counters.summary()["dropped"] == 0

    def test_duplicates_arrive_adjacent(self):
        runtime = FaultRuntime(FaultPlan(seed=5, duplicate_rate=0.5))
        runtime.begin_round(1)
        delivered = runtime.filter_messages(
            1, [_msg(0, 1, fields=(i,)) for i in range(40)]
        )
        dup_count = runtime.counters.duplicated
        assert dup_count > 0
        assert len(delivered) == 40 + dup_count
        # Every repeated payload is directly after its original.
        payloads = [m.fields[0] for m in delivered]
        for i in range(1, len(payloads)):
            assert payloads[i] >= payloads[i - 1]

    def test_delay_redelivers_later(self):
        runtime = FaultRuntime(
            FaultPlan(seed=3, delay_rate=0.5, max_delay=2)
        )
        runtime.begin_round(1)
        delivered = runtime.filter_messages(
            1, [_msg(0, 1, fields=(i,)) for i in range(40)]
        )
        delayed = runtime.counters.delayed
        assert delayed > 0
        assert len(delivered) == 40 - delayed
        assert runtime.has_pending_delayed
        recovered = []
        for later in (2, 3):
            messages, bulk = runtime.take_delayed(later)
            recovered.extend(messages)
            assert not bulk
        assert len(recovered) == delayed
        assert not runtime.has_pending_delayed

    def test_crash_drops_inbound(self):
        plan = FaultPlan(crashes=(CrashWindow(node=1, start=2, end=4),))
        runtime = FaultRuntime(plan)
        assert runtime.crashed(1) == frozenset()
        assert runtime.crashed(2) == frozenset({1})
        runtime.begin_round(2)
        delivered = runtime.filter_messages(
            2, [_msg(0, 1), _msg(0, 2), _msg(2, 1)]
        )
        assert [(m.sender, m.receiver) for m in delivered] == [(0, 2)]
        assert runtime.counters.crash_dropped == 2

    def test_delayed_message_lost_to_crash(self):
        plan = FaultPlan(
            seed=3,
            delay_rate=0.9,
            max_delay=1,
            crashes=(CrashWindow(node=1, start=2, end=3),),
        )
        runtime = FaultRuntime(plan)
        runtime.begin_round(1)
        runtime.filter_messages(1, [_msg(0, 1) for _ in range(20)])
        delayed = runtime.counters.delayed
        assert delayed > 0
        messages, _ = runtime.take_delayed(2)  # node 1 is down in round 2
        assert messages == []
        assert runtime.counters.crash_dropped == delayed

    def test_latest_crash_end(self):
        runtime = FaultRuntime(
            FaultPlan(
                crashes=(
                    CrashWindow(node=0, start=1, end=5),
                    CrashWindow(node=1, start=2, end=9),
                )
            )
        )
        assert runtime.latest_crash_end() == 9
        forever = FaultRuntime(
            FaultPlan(crashes=(CrashWindow(node=0, start=1),))
        )
        assert forever.latest_crash_end() is None
