"""Tests for structural graph properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, GraphError
from repro.graphs.properties import (
    average_degree,
    bfs_distances,
    connected_components,
    degree_histogram,
    density,
    diameter,
    eccentricities,
    is_bipartite,
    is_connected,
    radius,
    triangles,
)


class TestConnectivity:
    def test_single_component(self):
        assert len(connected_components(path_graph(5))) == 1

    def test_two_components(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        components = connected_components(graph)
        assert len(components) == 2
        assert {frozenset(c) for c in components} == {
            frozenset({0, 1}),
            frozenset({2, 3}),
        }

    def test_isolated_nodes(self):
        graph = Graph(nodes=[0, 1, 2])
        assert len(connected_components(graph)) == 3
        assert not is_connected(graph)

    def test_empty_and_singleton_connected(self):
        assert is_connected(Graph())
        assert is_connected(Graph(nodes=[0]))


class TestDistances:
    def test_bfs_distances_path(self):
        distances = bfs_distances(path_graph(4), 0)
        assert distances == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_bfs_missing_source(self):
        with pytest.raises(GraphError):
            bfs_distances(Graph(), 0)

    def test_bfs_unreachable_omitted(self):
        graph = Graph(edges=[(0, 1), (2, 3)])
        assert 2 not in bfs_distances(graph, 0)

    def test_diameter_known_values(self):
        assert diameter(path_graph(7)) == 6
        assert diameter(cycle_graph(8)) == 4
        assert diameter(complete_graph(5)) == 1
        assert diameter(star_graph(9)) == 2
        assert diameter(grid_graph(4, 6)) == 8

    def test_diameter_disconnected(self):
        with pytest.raises(GraphError):
            diameter(Graph(edges=[(0, 1), (2, 3)]))

    def test_diameter_empty(self):
        with pytest.raises(GraphError):
            diameter(Graph())

    def test_radius_le_diameter(self):
        graph = grid_graph(3, 5)
        assert radius(graph) <= diameter(graph) <= 2 * radius(graph)

    def test_eccentricities_path(self):
        ecc = eccentricities(path_graph(5))
        assert ecc[0] == 4
        assert ecc[2] == 2


class TestDegreeStats:
    def test_degree_histogram(self):
        assert degree_histogram(star_graph(5)) == {4: 1, 1: 4}

    def test_average_degree(self):
        assert average_degree(cycle_graph(10)) == pytest.approx(2.0)

    def test_average_degree_empty(self):
        with pytest.raises(GraphError):
            average_degree(Graph())

    def test_density(self):
        assert density(complete_graph(6)) == pytest.approx(1.0)
        assert density(Graph(nodes=[0])) == 0.0


class TestStructure:
    def test_bipartite(self):
        assert is_bipartite(path_graph(6))
        assert is_bipartite(cycle_graph(8))
        assert not is_bipartite(cycle_graph(7))
        assert not is_bipartite(complete_graph(4))

    def test_triangles(self):
        assert triangles(complete_graph(4)) == 4
        assert triangles(cycle_graph(5)) == 0
        assert triangles(star_graph(6)) == 0


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=25),
    seed=st.integers(0, 500),
)
def test_components_partition_nodes(n, seed):
    graph = erdos_renyi_graph(n, 0.15, seed=seed)
    components = connected_components(graph)
    all_nodes = [node for component in components for node in component]
    assert sorted(all_nodes) == sorted(graph.nodes())


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=3, max_value=20), seed=st.integers(0, 500))
def test_bfs_triangle_inequality(n, seed):
    graph = erdos_renyi_graph(n, 0.5, seed=seed, ensure_connected=True)
    source = 0
    distances = bfs_distances(graph, source)
    for u, v in graph.edges():
        assert abs(distances[u] - distances[v]) <= 1
