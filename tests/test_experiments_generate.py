"""Tests for the standalone experiment-table generator."""

import pytest

from repro.experiments.generate import (
    REGISTRY,
    load_collector,
    main,
    run_experiment,
)
from repro.graphs.graph import GraphError


class TestRegistry:
    def test_registered_files_exist(self):
        from repro.experiments.generate import BENCH_DIR

        for filename, attribute in REGISTRY.values():
            assert (BENCH_DIR / filename).exists(), filename

    def test_all_collectors_loadable(self):
        for experiment_id in REGISTRY:
            assert callable(load_collector(experiment_id))

    def test_unknown_experiment(self):
        with pytest.raises(GraphError):
            load_collector("E999")


class TestRun:
    def test_e1_renders_table(self):
        output = run_experiment("E1")
        assert "spbc" in output
        assert "rwbc" in output

    def test_e5_renders_table(self):
        output = run_experiment("E5")
        assert "max_msg_bits" in output

    def test_main_lists_registry(self, capsys):
        assert main([]) == 0
        out = capsys.readouterr().out
        assert "E17" in out

    def test_main_runs_experiment(self, capsys):
        assert main(["E1"]) == 0
        assert "rwbc" in capsys.readouterr().out

    def test_main_unknown(self, capsys):
        assert main(["E999"]) == 2
        assert "error" in capsys.readouterr().err
