"""Tests for the split-sample bias diagnostic (the E15 finding)."""

import numpy as np
import pytest

from repro.analysis.ranking import kendall_tau
from repro.core.bias import split_estimate_rwbc
from repro.core.exact import rwbc_exact
from repro.graphs.generators import erdos_renyi_graph, grid_graph
from repro.graphs.graph import GraphError


@pytest.fixture(scope="module")
def setup():
    graph = erdos_renyi_graph(24, 0.25, seed=15, ensure_connected=True)
    exact = rwbc_exact(graph, target=0)
    return graph, exact


def signed_bias(estimate, exact):
    return float(
        np.mean([(estimate[v] - exact[v]) / exact[v] for v in exact])
    )


class TestSplitEstimate:
    def test_plain_is_positively_biased_at_small_k(self, setup):
        """The E15 finding itself: the Algorithm 2 estimator overestimates
        systematically at log-scale K."""
        graph, exact = setup
        result = split_estimate_rwbc(graph, 0, length=80, walks_per_source=16, seed=0)
        assert signed_bias(result.plain, exact) > 0.2

    def test_noise_floor_positive(self, setup):
        graph, exact = setup
        result = split_estimate_rwbc(graph, 0, length=80, walks_per_source=16, seed=0)
        assert all(value > 0 for value in result.noise_floor.values())

    def test_debiasing_reduces_signed_error(self, setup):
        """Subtracting the measured noise floor cuts the magnitude of the
        systematic error by at least 2x (averaged over seeds)."""
        graph, exact = setup
        plain_biases, debiased_biases = [], []
        for seed in range(4):
            result = split_estimate_rwbc(
                graph, 0, length=80, walks_per_source=16, seed=seed
            )
            plain_biases.append(abs(signed_bias(result.plain, exact)))
            debiased_biases.append(abs(signed_bias(result.debiased, exact)))
        assert np.mean(debiased_biases) < 0.5 * np.mean(plain_biases)

    def test_debiased_equals_plain_minus_floor(self, setup):
        graph, _ = setup
        result = split_estimate_rwbc(graph, 0, length=80, walks_per_source=16, seed=1)
        for node in graph.nodes():
            assert result.debiased[node] == pytest.approx(
                result.plain[node] - result.noise_floor[node]
            )

    def test_bias_vanishes_at_large_k(self, setup):
        graph, exact = setup
        small = split_estimate_rwbc(graph, 0, length=80, walks_per_source=8, seed=2)
        large = split_estimate_rwbc(graph, 0, length=80, walks_per_source=512, seed=2)
        assert signed_bias(large.plain, exact) < 0.3 * signed_bias(
            small.plain, exact
        )

    def test_plain_ranking_remains_strong(self, setup):
        """The bias is nearly uniform, so rankings survive it - the
        practical saving grace of the paper's K schedule."""
        graph, exact = setup
        result = split_estimate_rwbc(graph, 0, length=80, walks_per_source=16, seed=3)
        assert kendall_tau(result.plain, exact) > 0.6

    def test_validation(self):
        graph = grid_graph(3, 3)
        with pytest.raises(GraphError):
            split_estimate_rwbc(graph, 0, length=20, walks_per_source=1)
