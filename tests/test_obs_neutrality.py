"""Telemetry neutrality: observing a run must never change it.

The observability layer (span profiler + instruments) must be a pure
read-side tap: attaching a :class:`~repro.obs.Telemetry` may not touch
the protocol's RNG streams, transport decisions, round counts, or
estimates - on either execution loop, with or without fault injection.
These tests pin byte-identity between observed and unobserved runs
across that whole matrix.
"""

import numpy as np
import pytest

from repro.congest.faults import FaultPlan
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.parameters import WalkParameters
from repro.experiments.workloads import make_workload
from repro.obs import Telemetry

GRAPH = make_workload("er", 20, seed=2).graph
PARAMETERS = WalkParameters(length=15, walks_per_source=4)
SEED = 5


def _run(telemetry=None, vectorized=None, faults=None):
    return estimate_rwbc_distributed(
        GRAPH,
        PARAMETERS,
        seed=SEED,
        telemetry=telemetry,
        vectorized=vectorized,
        faults=faults,
    )


def _fault_plan():
    return FaultPlan(seed=11, drop_rate=0.08, duplicate_rate=0.02)


def _assert_same_run(a, b):
    assert a.betweenness == b.betweenness
    assert a.metrics.rounds == b.metrics.rounds
    assert a.metrics.total_messages == b.metrics.total_messages
    assert a.metrics.total_bits == b.metrics.total_bits
    assert a.metrics.messages_per_round == b.metrics.messages_per_round
    assert a.metrics.bits_per_round == b.metrics.bits_per_round
    assert a.phase_rounds == b.phase_rounds
    assert a.metrics.faults == b.metrics.faults
    assert a.recovery == b.recovery


@pytest.mark.parametrize(
    "vectorized", [None, False], ids=["fast", "slow"]
)
@pytest.mark.parametrize("faulty", [False, True], ids=["clean", "faults"])
class TestTelemetryNeutrality:
    def test_observed_matches_unobserved(self, vectorized, faulty):
        faults = _fault_plan() if faulty else None
        bare = _run(vectorized=vectorized, faults=faults)
        faults = _fault_plan() if faulty else None
        observed = _run(
            telemetry=Telemetry(), vectorized=vectorized, faults=faults
        )
        _assert_same_run(bare, observed)

    def test_telemetry_populated(self, vectorized, faulty):
        faults = _fault_plan() if faulty else None
        telemetry = Telemetry()
        result = _run(
            telemetry=telemetry, vectorized=vectorized, faults=faults
        )
        assert result.telemetry is telemetry
        assert telemetry.profiler.summary()
        assert len(telemetry.profiler.round_wall) == result.metrics.rounds
        assert "bits_per_edge_round" in telemetry.instruments.histograms
        totals = telemetry.instruments.totals()
        assert totals.get("walk_sends", 0) > 0
        if faulty:
            assert totals.get("retransmissions", 0) > 0
            assert totals.get("faults_dropped", 0) > 0
            hists = telemetry.instruments.histograms
            assert "arq_window" in hists
            assert "recovery_latency_rounds" in hists


class TestCrossLoopWithTelemetry:
    def test_loops_agree_while_observed(self):
        fast = _run(telemetry=Telemetry(), vectorized=None)
        slow = _run(telemetry=Telemetry(), vectorized=False)
        assert not fast.fallback_reasons
        _assert_same_run(fast, slow)

    def test_loops_agree_observed_under_faults(self):
        fast = _run(
            telemetry=Telemetry(), vectorized=None, faults=_fault_plan()
        )
        slow = _run(
            telemetry=Telemetry(), vectorized=False, faults=_fault_plan()
        )
        _assert_same_run(fast, slow)

    def test_loop_instrument_histograms_agree(self):
        # The per-edge load distributions are loop-independent facts of
        # the run, so both loops must fold the same values in.
        fast_t, slow_t = Telemetry(), Telemetry()
        _run(telemetry=fast_t, vectorized=None)
        _run(telemetry=slow_t, vectorized=False)
        for name in ("bits_per_edge_round", "messages_per_edge_round"):
            fast_h = fast_t.instruments.hist(name)
            slow_h = slow_t.instruments.hist(name)
            assert np.array_equal(fast_h.buckets, slow_h.buckets)
            assert fast_h.total == slow_h.total

    def test_walk_send_totals_agree(self):
        fast_t, slow_t = Telemetry(), Telemetry()
        _run(telemetry=fast_t, vectorized=None)
        _run(telemetry=slow_t, vectorized=False)
        assert (
            fast_t.instruments.totals()["walk_sends"]
            == slow_t.instruments.totals()["walk_sends"]
        )
