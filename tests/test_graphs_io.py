"""Tests for edge-list I/O and networkx conversion."""

import networkx as nx
import pytest

from repro.graphs.convert import from_networkx, to_networkx
from repro.graphs.generators import erdos_renyi_graph, path_graph
from repro.graphs.graph import Graph, GraphError
from repro.graphs.io import read_edge_list, write_edge_list


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        graph = erdos_renyi_graph(15, 0.3, seed=0)
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_roundtrip_with_isolated_nodes(self, tmp_path):
        graph = Graph(nodes=[0, 1, 2, 9], edges=[(0, 1)])
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph
        assert loaded.has_node(9)

    def test_string_labels(self, tmp_path):
        graph = Graph(edges=[("alice", "bob"), ("bob", "carol")])
        path = tmp_path / "graph.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph

    def test_comments_and_blanks_ignored(self, tmp_path):
        path = tmp_path / "graph.edges"
        path.write_text("# comment\n\n0 1\n\n# more\n1 2\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 2

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.edges"
        path.write_text("0 1 2\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_self_loop_rejected(self, tmp_path):
        path = tmp_path / "loop.edges"
        path.write_text("3 3\n")
        with pytest.raises(GraphError):
            read_edge_list(path)

    def test_empty_graph(self, tmp_path):
        path = tmp_path / "empty.edges"
        write_edge_list(Graph(), path)
        assert read_edge_list(path).num_nodes == 0


class TestNetworkxConversion:
    def test_roundtrip(self):
        graph = erdos_renyi_graph(12, 0.4, seed=1)
        assert from_networkx(to_networkx(graph)) == graph

    def test_to_networkx_preserves_structure(self):
        graph = path_graph(5)
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == 4

    def test_isolated_nodes_preserved(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        nx_graph = to_networkx(graph)
        assert nx_graph.number_of_nodes() == 3

    def test_directed_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.DiGraph([(0, 1)]))

    def test_multigraph_rejected(self):
        with pytest.raises(GraphError):
            from_networkx(nx.MultiGraph([(0, 1), (0, 1)]))

    def test_self_loop_rejected(self):
        nx_graph = nx.Graph()
        nx_graph.add_edge(0, 0)
        with pytest.raises(GraphError):
            from_networkx(nx_graph)
