"""Integration: the full RWBC protocol on an asynchronous network.

The strongest end-to-end statement the synchronizer layer supports: the
paper's algorithm - leader election, walk transport, termination
detection, exchange, all of it - runs unmodified under arbitrary FIFO
message delays and still estimates betweenness correctly.
"""

import numpy as np
import pytest

from repro.congest.asynchronous import run_async
from repro.core.exact import rwbc_exact
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.graphs.generators import cycle_graph, erdos_renyi_graph


class TestAsyncProtocol:
    def test_estimates_near_exact(self):
        graph = cycle_graph(8)
        config = ProtocolConfig(length=60, walks_per_source=60)
        result = run_async(
            graph, make_protocol_factory(config), seed=5, max_delay=6.0
        )
        exact = rwbc_exact(graph)
        for node in graph.nodes():
            estimate = result.program(node).betweenness
            assert estimate == pytest.approx(exact[node], rel=0.3, abs=0.05)

    def test_all_nodes_agree_on_target(self):
        graph = erdos_renyi_graph(10, 0.35, seed=6, ensure_connected=True)
        config = ProtocolConfig(length=40, walks_per_source=8)
        result = run_async(
            graph, make_protocol_factory(config), seed=6, max_delay=4.0
        )
        targets = {result.program(v).target for v in graph.nodes()}
        assert len(targets) == 1

    def test_counts_invariants_hold(self):
        graph = cycle_graph(7)
        config = ProtocolConfig(length=30, walks_per_source=6)
        result = run_async(
            graph, make_protocol_factory(config), seed=7, max_delay=10.0
        )
        target = result.program(0).target
        for node in graph.nodes():
            counts = np.asarray(result.program(node).counts)
            assert counts.min() >= 0
            assert counts[target] == 0

    def test_delay_insensitive_distribution(self):
        """Different delay regimes give *identical* estimates: the
        synchronizer buffers each round's arrivals and sorts them into
        the synchronous scheduler's canonical inbox order, so the
        protocol consumes the same randomness no matter how messages
        interleave on the wire."""
        graph = cycle_graph(8)
        config = ProtocolConfig(length=60, walks_per_source=40)
        results = [
            run_async(
                graph, make_protocol_factory(config), seed=8, max_delay=delay
            )
            for delay in (2.0, 20.0)
        ]
        exact = rwbc_exact(graph)
        for node in graph.nodes():
            estimates = {r.program(node).betweenness for r in results}
            assert len(estimates) == 1
            assert estimates.pop() == pytest.approx(
                exact[node], rel=0.3, abs=0.05
            )
