"""End-to-end integration tests crossing subsystem boundaries."""

import numpy as np
import pytest

from repro.cli import main
from repro.congest.transport import BandwidthPolicy
from repro.congest.validation import audit_message_log
from repro.core.estimator import estimate_rwbc_distributed
from repro.core.exact import rwbc_exact
from repro.core.parameters import WalkParameters
from repro.graphs.datasets import florentine_families
from repro.graphs.generators import erdos_renyi_graph
from repro.graphs.io import read_edge_list, write_edge_list


class TestFilePipelineCLI:
    def test_generate_save_estimate_parse(self, tmp_path, capsys):
        """Full user workflow: build a graph, save it, estimate via the
        CLI from the file, parse the output, compare against the exact
        values computed in-process."""
        graph = erdos_renyi_graph(12, 0.4, seed=20, ensure_connected=True)
        path = tmp_path / "net.edges"
        write_edge_list(graph, path)

        code = main(
            [
                "estimate",
                "--edge-list",
                str(path),
                "--engine",
                "montecarlo",
                "--length",
                "200",
                "--walks",
                "600",
                "--seed",
                "20",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        parsed = {}
        for line in out.splitlines():
            if line.startswith("#"):
                continue
            node, value = line.split()
            parsed[int(node)] = float(value)

        exact = rwbc_exact(graph)
        assert set(parsed) == set(graph.nodes())
        errors = [
            abs(parsed[v] - exact[v]) / exact[v] for v in graph.nodes()
        ]
        assert np.mean(errors) < 0.25

    def test_roundtrip_preserves_results(self, tmp_path):
        graph = florentine_families()
        path = tmp_path / "florentine.edges"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert loaded == graph
        original = rwbc_exact(graph)
        reloaded = rwbc_exact(loaded)
        for node in graph.nodes():
            # Not bit-equality: two separate LAPACK inversions may differ
            # in the last ulp depending on threading/alignment.
            assert reloaded[node] == pytest.approx(original[node], abs=1e-12)


class TestProtocolAudit:
    def test_distributed_run_passes_offline_audit(self):
        """The protocol's recorded message log passes the independent
        compliance auditor.  (Log ids are in the relabeled 0..n-1 space;
        with integer labels the relabeling is the identity.)"""
        graph = erdos_renyi_graph(10, 0.35, seed=21, ensure_connected=True)
        params = WalkParameters(length=40, walks_per_source=8)
        result = estimate_rwbc_distributed(
            graph, params, seed=21, record_messages=True
        )
        assert result.message_log, "recording was requested"
        policy = BandwidthPolicy(n=graph.num_nodes, messages_per_edge=4)
        report = audit_message_log(result.message_log, graph, policy)
        assert report.compliant
        assert report.messages == result.metrics.total_messages

    def test_log_absent_by_default(self):
        graph = erdos_renyi_graph(8, 0.4, seed=22, ensure_connected=True)
        result = estimate_rwbc_distributed(
            graph, WalkParameters(length=20, walks_per_source=4), seed=22
        )
        assert not result.message_log
