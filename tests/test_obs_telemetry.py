"""Unit tests for the observability primitives (repro.obs)."""

import numpy as np
import pytest

from repro.obs import NULL_PROFILER, InstrumentSet, Log2Histogram, Telemetry
from repro.obs.spans import SpanProfiler


class TestSpanProfiler:
    def test_span_records_count_and_wall(self):
        profiler = SpanProfiler()
        for _ in range(3):
            with profiler.span("work"):
                pass
        summary = profiler.summary()
        assert summary["work"]["count"] == 3
        assert summary["work"]["wall_s"] >= 0.0

    def test_nested_spans_use_slash_paths(self):
        profiler = SpanProfiler()
        with profiler.span("outer"):
            with profiler.span("inner"):
                pass
        with profiler.span("inner"):
            pass
        summary = profiler.summary()
        assert set(summary) == {"outer", "outer/inner", "inner"}
        assert summary["outer/inner"]["count"] == 1
        assert summary["inner"]["count"] == 1

    def test_same_handle_under_different_parents(self):
        # span() caches one handle per name; the path must still be
        # resolved at exit from the live stack.
        profiler = SpanProfiler()
        handle = profiler.span("kernel")
        assert profiler.span("kernel") is handle
        with profiler.span("a"):
            with handle:
                pass
        with profiler.span("b"):
            with handle:
                pass
        summary = profiler.summary()
        assert summary["a/kernel"]["count"] == 1
        assert summary["b/kernel"]["count"] == 1

    def test_round_series(self):
        profiler = SpanProfiler()
        assert profiler.round_wall == []
        profiler.round_tick(1)
        profiler.round_tick(2)
        profiler.round_tick(3)
        profiler.run_finished()
        assert len(profiler.round_wall) == 3
        assert all(wall >= 0.0 for wall in profiler.round_wall)
        assert profiler.total_round_wall == sum(profiler.round_wall)
        # run_finished is idempotent.
        profiler.run_finished()
        assert len(profiler.round_wall) == 3

    def test_null_profiler_is_inert(self):
        with NULL_PROFILER.span("anything"):
            pass
        NULL_PROFILER.round_tick(1)
        NULL_PROFILER.run_finished()
        assert NULL_PROFILER.summary() == {}
        assert NULL_PROFILER.round_wall == []
        assert len(NULL_PROFILER) == 0


class TestLog2Histogram:
    def test_bucketing(self):
        hist = Log2Histogram()
        for value in (0, 1, 2, 3, 4, 7, 8, 1023, 1024):
            hist.observe(value)
        assert hist.count == 9
        assert hist.max == 1024
        assert hist.total == sum((0, 1, 2, 3, 4, 7, 8, 1023, 1024))
        digest = hist.summary()
        buckets = dict(digest["buckets"])
        assert buckets[1] == 2  # 0 and 1
        assert buckets[2] == 2  # 2 and 3
        assert buckets[4] == 2  # 4 and 7
        assert buckets[8] == 1
        assert buckets[512] == 1  # 1023
        assert buckets[1024] == 1

    def test_scalar_and_array_paths_agree(self):
        values = np.array([0, 1, 2, 3, 5, 8, 13, 21, 1000, 65536])
        scalar = Log2Histogram()
        for value in values:
            scalar.observe(int(value))
        vectorized = Log2Histogram()
        vectorized.observe_array(values)
        assert np.array_equal(scalar.buckets, vectorized.buckets)
        assert scalar.count == vectorized.count
        assert scalar.total == vectorized.total
        assert scalar.max == vectorized.max
        assert scalar.mean == pytest.approx(vectorized.mean)

    def test_empty_array_is_noop(self):
        hist = Log2Histogram()
        hist.observe_array(np.array([], dtype=np.int64))
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.summary()["buckets"] == []


class TestInstrumentSet:
    def test_round_counters(self):
        instruments = InstrumentSet()
        instruments.bump_round("walk_sends", 3, 5)
        instruments.bump_round("walk_sends", 3, 2)
        instruments.bump_round("walk_sends", 5, 1)
        assert instruments.round_series("walk_sends", 6) == [0, 0, 7, 0, 1, 0]
        assert instruments.totals() == {"walk_sends": 8}
        # Out-of-range rounds are dropped, not crashed on.
        assert instruments.round_series("walk_sends", 2) == [0, 0]

    def test_fault_counter_deltas(self):
        instruments = InstrumentSet()
        instruments.record_fault_counters(1, {"dropped": 2, "delayed": 0})
        instruments.record_fault_counters(2, {"dropped": 2, "delayed": 1})
        instruments.record_fault_counters(3, {"dropped": 5, "delayed": 1})
        assert instruments.round_series("faults_dropped", 3) == [2, 0, 3]
        assert instruments.round_series("faults_delayed", 3) == [0, 1, 0]

    def test_observe_values_matches_observe(self):
        a = InstrumentSet()
        b = InstrumentSet()
        for value in (1, 2, 3):
            a.observe("x", value)
        b.observe_values("x", [1, 2, 3])
        assert np.array_equal(a.hist("x").buckets, b.hist("x").buckets)


class TestTelemetry:
    def test_default_construction(self):
        telemetry = Telemetry()
        assert isinstance(telemetry.profiler, SpanProfiler)
        assert isinstance(telemetry.instruments, InstrumentSet)
        assert telemetry.meta == {}

    def test_explicit_parts(self):
        profiler = SpanProfiler()
        instruments = InstrumentSet()
        telemetry = Telemetry(profiler=profiler, instruments=instruments)
        assert telemetry.profiler is profiler
        assert telemetry.instruments is instruments
