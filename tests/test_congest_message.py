"""Tests for message envelopes and bit accounting."""

import pytest

from repro.congest.errors import ProtocolError
from repro.congest.message import TAG_BITS, Message, int_bits, payload_bits


class TestIntBits:
    def test_zero(self):
        assert int_bits(0) == 2

    def test_one(self):
        assert int_bits(1) == 2

    def test_powers_of_two(self):
        assert int_bits(255) == 9
        assert int_bits(256) == 10

    def test_negative_costs_same_as_positive(self):
        assert int_bits(-7) == int_bits(7)

    def test_monotone(self):
        costs = [int_bits(v) for v in range(0, 2000, 37)]
        assert costs == sorted(costs)


class TestPayloadBits:
    def test_empty(self):
        assert payload_bits(()) == 0

    def test_sum(self):
        assert payload_bits((1, 255)) == int_bits(1) + int_bits(255)


class TestMessage:
    def test_bits_include_tag(self):
        message = Message(0, 1, "walk", (5,))
        assert message.bits == TAG_BITS + int_bits(5)

    def test_empty_payload(self):
        assert Message(0, 1, "ping").bits == TAG_BITS

    def test_rejects_float_fields(self):
        with pytest.raises(ProtocolError):
            Message(0, 1, "bad", (0.5,))

    def test_rejects_bool_fields(self):
        with pytest.raises(ProtocolError):
            Message(0, 1, "bad", (True,))

    def test_rejects_string_fields(self):
        with pytest.raises(ProtocolError):
            Message(0, 1, "bad", ("x",))

    def test_frozen(self):
        message = Message(0, 1, "walk", (5,))
        with pytest.raises(AttributeError):
            message.kind = "other"
