"""Tests for the Sherman-Morrison incremental exact solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.exact import rwbc_exact
from repro.core.incremental import IncrementalRWBC
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
)
from repro.graphs.graph import GraphError
from repro.walks.absorbing import grounded_inverse
from repro.walks.resistance import effective_resistance


def assert_matches_fresh(tracker: IncrementalRWBC):
    graph = tracker.graph
    fresh_t = grounded_inverse(graph, graph.canonical_order()[0])
    np.testing.assert_allclose(tracker.potentials(), fresh_t, atol=1e-8)
    fresh_b = rwbc_exact(graph)
    incremental_b = tracker.betweenness()
    for node in graph.nodes():
        assert incremental_b[node] == pytest.approx(fresh_b[node], abs=1e-8)


class TestUpdates:
    def test_initial_state_matches_exact(self):
        graph = erdos_renyi_graph(10, 0.4, seed=0, ensure_connected=True)
        assert_matches_fresh(IncrementalRWBC(graph))

    def test_single_insertion(self):
        graph = cycle_graph(8)
        tracker = IncrementalRWBC(graph)
        tracker.add_edge(0, 4)
        assert_matches_fresh(tracker)

    def test_single_removal(self):
        graph = erdos_renyi_graph(10, 0.5, seed=1, ensure_connected=True)
        tracker = IncrementalRWBC(graph)
        # Remove a non-bridge edge (dense graph: cycle edges abound).
        edge = next(iter(graph.edges()))
        tracker.remove_edge(*edge)
        assert_matches_fresh(tracker)

    def test_insert_then_remove_is_identity(self):
        graph = cycle_graph(7)
        before = IncrementalRWBC(graph).betweenness()
        tracker = IncrementalRWBC(graph)
        tracker.add_edge(0, 3)
        tracker.remove_edge(0, 3)
        after = tracker.betweenness()
        for node in graph.nodes():
            assert after[node] == pytest.approx(before[node], abs=1e-8)

    def test_update_sequence(self):
        graph = erdos_renyi_graph(12, 0.4, seed=2, ensure_connected=True)
        tracker = IncrementalRWBC(graph)
        tracker.add_edge(0, 11) if not graph.has_edge(0, 11) else None
        tracker.add_edge(1, 10) if not graph.has_edge(1, 10) else None
        removable = next(iter(tracker.graph.edges()))
        try:
            tracker.remove_edge(*removable)
        except GraphError:
            pass  # happened to pick a bridge; fine
        assert_matches_fresh(tracker)

    def test_bridge_removal_rejected(self):
        graph = path_graph(5)
        tracker = IncrementalRWBC(graph)
        with pytest.raises(GraphError, match="bridge"):
            tracker.remove_edge(2, 3)

    def test_missing_edge_removal(self):
        tracker = IncrementalRWBC(cycle_graph(5))
        with pytest.raises(GraphError):
            tracker.remove_edge(0, 2)

    def test_duplicate_insertion(self):
        tracker = IncrementalRWBC(cycle_graph(5))
        with pytest.raises(GraphError):
            tracker.add_edge(0, 1)

    def test_self_loop_rejected(self):
        tracker = IncrementalRWBC(cycle_graph(5))
        with pytest.raises(GraphError):
            tracker.add_edge(2, 2)


class TestEffectiveResistance:
    def test_matches_resistance_module(self):
        graph = erdos_renyi_graph(9, 0.5, seed=3, ensure_connected=True)
        tracker = IncrementalRWBC(graph)
        for u, v in list(graph.edges())[:4]:
            assert tracker.effective_resistance(u, v) == pytest.approx(
                effective_resistance(graph, u, v), abs=1e-9
            )

    def test_bridge_has_unit_resistance(self):
        tracker = IncrementalRWBC(path_graph(4))
        assert tracker.effective_resistance(1, 2) == pytest.approx(1.0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 300))
def test_random_update_walks(seed):
    """Random insert/remove sequences stay consistent with recomputation."""
    rng = np.random.default_rng(seed)
    graph = erdos_renyi_graph(8, 0.5, seed=seed, ensure_connected=True)
    tracker = IncrementalRWBC(graph)
    for _ in range(5):
        u, v = rng.choice(8, size=2, replace=False)
        u, v = int(u), int(v)
        if tracker.graph.has_edge(u, v):
            try:
                tracker.remove_edge(u, v)
            except GraphError:
                continue  # bridge
        else:
            tracker.add_edge(u, v)
    assert_matches_fresh(tracker)
