"""Tests for exact absorbing-chain quantities (paper section IV)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    path_graph,
    star_graph,
)
from repro.graphs.graph import Graph, GraphError
from repro.walks.absorbing import (
    absorbing_transition_matrix,
    absorption_probability_by_round,
    expected_visits,
    grounded_inverse,
    surviving_mass,
    transition_matrix,
    visit_counts_truncated,
)


class TestTransitionMatrix:
    def test_columns_sum_to_one(self):
        graph = erdos_renyi_graph(12, 0.4, seed=0, ensure_connected=True)
        m = transition_matrix(graph)
        np.testing.assert_allclose(m.sum(axis=0), np.ones(12))

    def test_entries_match_eq2(self):
        graph = path_graph(3)
        m = transition_matrix(graph)
        # M[i, j] = A[i, j] / d(j).
        assert m[1, 0] == 1.0  # from endpoint 0, always to 1
        assert m[0, 1] == 0.5
        assert m[2, 1] == 0.5

    def test_isolated_node_rejected(self):
        graph = Graph(nodes=[0, 1, 2], edges=[(0, 1)])
        with pytest.raises(GraphError):
            transition_matrix(graph)

    def test_absorbing_removes_target(self):
        graph = cycle_graph(5)
        m_t = absorbing_transition_matrix(graph, 2)
        assert m_t.shape == (4, 4)
        # Substochastic: columns of nodes adjacent to target sum < 1.
        sums = m_t.sum(axis=0)
        assert np.all(sums <= 1.0 + 1e-12)
        assert np.any(sums < 1.0)

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            absorbing_transition_matrix(Graph(edges=[(0, 1), (2, 3)]), 0)

    def test_too_small_rejected(self):
        with pytest.raises(GraphError):
            expected_visits(Graph(nodes=[0]), 0)


class TestExpectedVisits:
    def test_target_row_and_column_zero(self):
        graph = cycle_graph(6)
        visits = expected_visits(graph, 3)
        t = graph.index_of(3)
        np.testing.assert_array_equal(visits[t, :], np.zeros(6))
        np.testing.assert_array_equal(visits[:, t], np.zeros(6))

    def test_diagonal_at_least_one(self):
        """A walk visits its own source at least once (the r=0 term)."""
        graph = erdos_renyi_graph(10, 0.5, seed=1, ensure_connected=True)
        visits = expected_visits(graph, 0)
        diagonal = np.diag(visits)[1:]  # skip the target
        assert np.all(diagonal >= 1.0 - 1e-12)

    def test_path2_by_hand(self):
        """On 0-1 with target 1: the walk from 0 visits 0 once, then is
        absorbed."""
        graph = path_graph(2)
        visits = expected_visits(graph, 1)
        assert visits[0, 0] == pytest.approx(1.0)

    def test_star_by_hand(self):
        """Star with target = hub: every leaf walk visits its leaf once."""
        graph = star_graph(5)
        visits = expected_visits(graph, 0)
        for leaf in range(1, 5):
            assert visits[leaf, leaf] == pytest.approx(1.0)
            # Leaf walks never visit other leaves.
            for other in range(1, 5):
                if other != leaf:
                    assert visits[other, leaf] == pytest.approx(0.0)

    def test_grounded_inverse_is_visits_over_degree(self):
        graph = erdos_renyi_graph(14, 0.35, seed=2, ensure_connected=True)
        target = 5
        t_matrix = grounded_inverse(graph, target)
        visits = expected_visits(graph, target)
        degrees = graph.degree_vector()
        np.testing.assert_allclose(
            t_matrix, visits / degrees[:, np.newaxis], atol=1e-12
        )

    def test_grounded_inverse_symmetric(self):
        """T is the inverse of a symmetric matrix, hence symmetric."""
        graph = erdos_renyi_graph(10, 0.4, seed=3, ensure_connected=True)
        t_matrix = grounded_inverse(graph, 0)
        np.testing.assert_allclose(t_matrix, t_matrix.T, atol=1e-12)

    def test_truncated_converges_to_full(self):
        graph = cycle_graph(7)
        full = expected_visits(graph, 0)
        truncated = visit_counts_truncated(graph, 0, length=2000)
        np.testing.assert_allclose(truncated, full, atol=1e-8)

    def test_truncated_monotone_in_length(self):
        graph = cycle_graph(6)
        short = visit_counts_truncated(graph, 0, length=5)
        long = visit_counts_truncated(graph, 0, length=10)
        assert np.all(long >= short - 1e-12)

    def test_truncated_zero_length(self):
        """l = 0 leaves only the r = 0 identity term."""
        graph = path_graph(4)
        counts = visit_counts_truncated(graph, 3, length=0)
        expected = np.diag([1.0, 1.0, 1.0, 0.0])
        np.testing.assert_allclose(counts, expected)

    def test_negative_length_rejected(self):
        with pytest.raises(GraphError):
            visit_counts_truncated(path_graph(3), 0, length=-1)


class TestSurvival:
    def test_initial_mass(self):
        graph = cycle_graph(5)
        mass = surviving_mass(graph, 2, rounds=0)
        t = graph.index_of(2)
        assert mass[0, t] == 0.0
        assert np.all(np.delete(mass[0], t) == 1.0)

    def test_mass_decreases(self):
        graph = erdos_renyi_graph(10, 0.4, seed=4, ensure_connected=True)
        mass = surviving_mass(graph, 0, rounds=60).max(axis=1)
        assert np.all(np.diff(mass) <= 1e-12)
        assert mass[-1] < 0.2

    def test_lemma1_after_diameter_rounds(self):
        """Lemma 1: after D rounds, all survival probabilities < 1."""
        from repro.graphs.properties import diameter

        for seed in range(3):
            graph = erdos_renyi_graph(
                12, 0.3, seed=seed, ensure_connected=True
            )
            d = diameter(graph)
            mass = surviving_mass(graph, 0, rounds=d)
            assert np.all(mass[d] < 1.0)

    def test_absorption_complements_survival(self):
        graph = path_graph(5)
        mass = surviving_mass(graph, 4, rounds=20)
        absorbed = absorption_probability_by_round(graph, 4, rounds=20)
        np.testing.assert_allclose(mass + absorbed, np.ones_like(mass))

    def test_complete_graph_geometric(self):
        """On K_n, survival decays exactly like (1 - 1/(n-1))^r."""
        n = 6
        graph = complete_graph(n)
        rounds = 10
        mass = surviving_mass(graph, 0, rounds=rounds)
        rate = 1.0 - 1.0 / (n - 1)
        for r in range(rounds + 1):
            expected = rate**r
            assert mass[r, 1] == pytest.approx(expected)


@settings(max_examples=15, deadline=None)
@given(n=st.integers(4, 14), seed=st.integers(0, 300))
def test_fundamental_matrix_identity(n, seed):
    """(I - M_t) @ visits == I on the non-target block."""
    graph = erdos_renyi_graph(n, 0.5, seed=seed, ensure_connected=True)
    target = seed % n
    m_t = absorbing_transition_matrix(graph, target)
    visits = expected_visits(graph, target)
    keep = np.arange(n) != graph.index_of(target)
    block = visits[np.ix_(keep, keep)]
    np.testing.assert_allclose(
        (np.eye(n - 1) - m_t) @ block, np.eye(n - 1), atol=1e-9
    )
