"""Tests for the post-hoc message-log auditor and tracer wiring."""

from repro.congest.message import Message
from repro.congest.scheduler import Simulator, run_program
from repro.congest.trace import Tracer
from repro.congest.transport import BandwidthPolicy
from repro.congest.validation import audit_message_log
from repro.core.protocol import ProtocolConfig, make_protocol_factory
from repro.graphs.generators import cycle_graph, path_graph


class TestAuditor:
    def test_protocol_run_is_compliant(self):
        graph = cycle_graph(8)
        config = ProtocolConfig(length=30, walks_per_source=6)
        policy = BandwidthPolicy(n=8, messages_per_edge=4)
        result = Simulator(
            graph,
            make_protocol_factory(config),
            policy=policy,
            seed=0,
            record_messages=True,
        ).run()
        report = audit_message_log(result.message_log, graph, policy)
        assert report.compliant
        assert report.messages == result.metrics.total_messages
        assert report.rounds == result.metrics.rounds

    def test_detects_non_edge(self):
        graph = path_graph(3)
        log = [[Message(0, 2, "bad")]]  # 0-2 is not an edge of P3
        report = audit_message_log(log, graph, BandwidthPolicy(n=3))
        assert not report.compliant
        assert "non-edge" in report.violations[0]

    def test_detects_oversized_message(self):
        graph = path_graph(3)
        log = [[Message(0, 1, "wide", (2**200,))]]
        report = audit_message_log(log, graph, BandwidthPolicy(n=3))
        assert any("exceeds budget" in v for v in report.violations)

    def test_detects_edge_overload(self):
        graph = path_graph(3)
        policy = BandwidthPolicy(n=3, messages_per_edge=2)
        log = [[Message(0, 1, "x") for _ in range(5)]]
        report = audit_message_log(log, graph, policy)
        assert any("5 messages on edge" in v for v in report.violations)

    def test_violation_cap(self):
        graph = path_graph(3)
        log = [[Message(0, 2, "bad") for _ in range(100)]]
        report = audit_message_log(
            log, graph, BandwidthPolicy(n=3), max_violations=5
        )
        assert len(report.violations) == 5

    def test_empty_log(self):
        report = audit_message_log([], path_graph(3), BandwidthPolicy(n=3))
        assert report.compliant
        assert report.messages == 0


class TestTracerWiring:
    def test_deliveries_recorded(self):
        from repro.congest.node import NodeProgram

        class Ping(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast("ping")

            def on_round(self, ctx, inbox):
                self.halt()

        graph = path_graph(3)
        tracer = Tracer()
        run_program(graph, Ping, tracer=tracer)
        deliveries = tracer.of_kind("deliver")
        assert len(deliveries) == 4  # P3 has 2 edges x 2 directions
        rounds = {event.round_number for event in deliveries}
        assert rounds == {1}

    def test_kind_filter(self):
        from repro.congest.node import NodeProgram

        class Ping(NodeProgram):
            def on_start(self, ctx):
                ctx.broadcast("ping")

            def on_round(self, ctx, inbox):
                self.halt()

        tracer = Tracer(kinds=frozenset({"nothing"}))
        run_program(path_graph(3), Ping, tracer=tracer)
        assert len(tracer) == 0

    def test_bounded(self):
        tracer = Tracer(max_events=2)
        tracer.record(1, 0, "a")
        tracer.record(1, 0, "b")
        tracer.record(1, 0, "c")
        assert len(tracer) == 2
        assert tracer.dropped == 1

    def test_for_node(self):
        tracer = Tracer()
        tracer.record(1, 5, "x")
        tracer.record(2, 6, "x")
        assert len(tracer.for_node(5)) == 1
